#!/usr/bin/env bash
# The CI gate: hermetic build + full test suite + dependency policy.
#
# The workspace has a zero-external-dependency policy (DESIGN.md §6):
# everything must build and test with --offline, and no manifest may
# declare a dependency that is not a `path` dependency on a sibling
# crate. Clippy runs as a best-effort final step (it needs the clippy
# component; the gate does not fail on its absence).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> dependency policy: path-only manifests"
# Flag any dependency specification that is not a pure path dependency:
# a `version`/`git` key, or a bare `name = "x.y"` string, inside a
# [dependencies]/[dev-dependencies]/[build-dependencies] table of any
# manifest (the workspace.dependencies table is checked too).
violations=0
while IFS= read -r manifest; do
  bad=$(awk '
    /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
    in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
      if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) print
    }
  ' "$manifest")
  if [ -n "$bad" ]; then
    echo "non-path dependency in $manifest:"
    echo "$bad"
    violations=1
  fi
done < <(find . -name Cargo.toml -not -path "./target/*")
if [ "$violations" -ne 0 ]; then
  echo "FAIL: external dependencies are not allowed (see CONTRIBUTING.md)"
  exit 1
fi
echo "ok: all manifests are path-only"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> prepared-kernel conformance suite (256 cases per property)"
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test prepared_vs_direct

echo "==> weighted metric family suite (256 cases per property)"
# The weighted-footrule / top-difference property suite: unit-weight
# collapse to fprof_x2 (bit-exact), Theorem-7-style bounds, metric
# axioms and monotonicity under degenerate weight classes, the F^(l)
# oracle on top-k embeddings, typed rejection, and the loopback
# byte-parity differential for the WeightedDist/TopDiff opcodes.
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test weighted_equivalence

echo "==> topk vs top-difference differential (256 cases per property)"
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test topk_vs_topdiff

echo "==> tally conformance suite (256 cases per property)"
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test tally_conformance

echo "==> dynamic update-oracle suite (256 cases per property)"
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test dynamic_vs_rebuild

echo "==> wire-protocol fuzz suite, v1 + v2 batch frames (256 cases per property)"
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test proto_fuzz

echo "==> server loopback smoke (per-request-type round trips + graceful shutdown)"
# The loopback suite binds an ephemeral port, exercises every request
# type over a real socket (byte-compared against the in-process
# engine) and requires a fully drained shutdown.
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test server_loopback

echo "==> protocol v2 pipelining conformance (256 cases per property)"
# Differential suite: pipelined and batched replays of the loopback
# edit scripts must be byte-identical to the in-process mirror, in
# order, at every tested depth.
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test server_pipeline

echo "==> minmax conformance suite (256 cases per property)"
# The minmax-objective differential suite: exact branch-and-bound vs
# brute-force enumeration (with and without class constraints),
# heuristic max-cost sandwiched between 1× and 2× exact, typed
# rejection of malformed/infeasible constraints, and the MinMaxAgg
# loopback byte-parity differential.
BUCKETRANK_PT_CASES=256 cargo test -q --offline -p bucketrank --test minmax_conformance

echo "==> crash-recovery differential suite (128 cases per property)"
# Random edit scripts against a durable server, hard-dropped at random
# edit boundaries and torn mid-record WAL offsets, restarted from
# --data-dir: replies must be byte-identical to an in-process mirror
# holding exactly the acknowledged prefix. (WAL-record fuzzing runs at
# 256 cases inside the proto_fuzz suite above.)
BUCKETRANK_PT_CASES=128 cargo test -q --offline -p bucketrank --test server_recovery

echo "==> session LRU + per-shard counter aggregation suite"
# The LRU property (cap never exceeded, exact-LRU victims, fault-back
# state identity) plus the concurrent counter regression test.
cargo test -q --offline -p bucketrank --test service_lru

# The soak (thousands of mostly-idle connections against the readiness
# loop, bounded-thread and clean-drain assertions) is ignored by
# default; opt in with BUCKETRANK_CI_HEAVY=1. Size it with
# BUCKETRANK_SOAK_CONNS (default 5000 — needs `ulimit -n` headroom).
if [ "${BUCKETRANK_CI_HEAVY:-0}" = "1" ]; then
  echo "==> readiness-loop soak (heavy lane, BUCKETRANK_SOAK_CONNS=${BUCKETRANK_SOAK_CONNS:-5000})"
  cargo test -q --release --offline -p bucketrank --test server_soak -- --ignored
  echo "==> crash-at-torn-offset matrix (heavy lane: every byte offset of every WAL)"
  cargo test -q --release --offline -p bucketrank --test server_recovery -- --ignored
else
  echo "==> readiness-loop soak + torn-offset matrix: skipped (set BUCKETRANK_CI_HEAVY=1 to run)"
fi

echo "==> bench_batch_prepared smoke gate"
# Fast pass proves the prepared batch engine runs end to end and writes
# its JSON report (with effective-bytes/s rows and a measured memcpy
# roofline). The smoke numbers land in target/ so they never clobber a
# committed full-size baseline; if no baseline exists yet, the smoke
# report seeds one. The pass ends with two lane gates: the dispatched
# Kprof matrix (counting lane) must hold ≥ 1.5× single-thread over the
# forced Fenwick sort lane, and the prepared weighted matrix must hold
# ≥ 1× over the naive per-pair weighted kernels, exiting nonzero
# otherwise.
smoke_out="target/BENCH_metrics.smoke.json"
BUCKETRANK_BENCH_FAST=1 BUCKETRANK_BENCH_OUT="$smoke_out" \
  cargo run --release --offline -p bucketrank-bench --bin bench_batch_prepared
if [ ! -f BENCH_metrics.json ]; then
  cp "$smoke_out" BENCH_metrics.json
  echo "seeded BENCH_metrics.json baseline from smoke run"
fi

echo "==> bench_aggregate_tally smoke gate"
# Same pattern for the aggregation tally engine: the fast pass proves
# the tally-vs-direct bench runs end to end (its worst-aggregator line
# is the regression canary, and it reports bytes/s + roofline like the
# batch bench) and seeds the aggregate baseline if absent. The pass
# ends with two hard gates at 256×512: the single-thread tiled build
# must hold ≥ 4× over the naive scan (always asserted — the
# anti-regression floor on the kernel, never below the seed's ratio),
# and par8 ≥ 1.5× seq, asserted only on machines with ≥ 8 cores (SKIP
# otherwise).
agg_smoke_out="target/BENCH_aggregate.smoke.json"
BUCKETRANK_BENCH_FAST=1 BUCKETRANK_BENCH_OUT="$agg_smoke_out" \
  cargo run --release --offline -p bucketrank-bench --bin bench_aggregate_tally
if [ ! -f BENCH_aggregate.json ]; then
  cp "$agg_smoke_out" BENCH_aggregate.json
  echo "seeded BENCH_aggregate.json baseline from smoke run"
fi

echo "==> bench_dynamic smoke gate"
# Same pattern for the streaming engine: the fast pass proves the
# update-then-query-vs-rebuild bench runs end to end (its worst
# update+kemeny line is the regression canary) and seeds the dynamic
# baseline if absent.
dyn_smoke_out="target/BENCH_dynamic.smoke.json"
BUCKETRANK_BENCH_FAST=1 BUCKETRANK_BENCH_OUT="$dyn_smoke_out" \
  cargo run --release --offline -p bucketrank-bench --bin bench_dynamic
if [ ! -f BENCH_dynamic.json ]; then
  cp "$dyn_smoke_out" BENCH_dynamic.json
  echo "seeded BENCH_dynamic.json baseline from smoke run"
fi

echo "==> bench_server smoke gate"
# Same pattern for the TCP service: the fast pass proves the server,
# client and both request mixes run end to end over loopback (its
# read-heavy throughput line is the acceptance canary) and seeds the
# server baseline if absent. The fast pass also runs the protocol v2
# mixes and exits nonzero unless pipelined/batched read-heavy
# throughput is ≥ 2× the single-outstanding rate from the same run.
srv_smoke_out="target/BENCH_server.smoke.json"
BUCKETRANK_BENCH_FAST=1 BUCKETRANK_BENCH_OUT="$srv_smoke_out" \
  cargo run --release --offline -p bucketrank-bench --bin bench_server
if [ ! -f BENCH_server.json ]; then
  cp "$srv_smoke_out" BENCH_server.json
  echo "seeded BENCH_server.json baseline from smoke run"
fi

echo "==> exp_minmax smoke gate"
# Fast pass proves the minmax experiment runs end to end: the pinned
# outlier regression (sum-opt max 30 vs minmax 16 on 9×identity +
# 1×reversal at n=6) is hard-asserted, and the run exits nonzero
# unless the tally-delta scorer holds ≥ 1× over the naive per-swap
# rescan.
BUCKETRANK_BENCH_FAST=1 \
  cargo run --release --offline -p bucketrank-bench --bin exp_minmax

echo "==> cargo clippy (best effort)"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets --offline -- -D warnings ||
    echo "WARN: clippy reported issues (non-fatal in this gate)"
else
  echo "skipped: clippy not installed"
fi

echo "CI gate passed."
