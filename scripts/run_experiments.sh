#!/usr/bin/env bash
# Regenerates every experiment table from EXPERIMENTS.md (E1–E11).
# Usage: scripts/run_experiments.sh [> experiments_output.txt]
set -euo pipefail
cd "$(dirname "$0")/.."
for exp in equivalence kp_metric approx_ratio metric_scaling dp access \
           topk_compat quality hausdorff strong measures; do
  echo "==================== exp_${exp} ===================="
  cargo run --release -q -p bucketrank-bench --bin "exp_${exp}"
  echo
done
