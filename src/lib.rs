//! **bucketrank** — comparing and aggregating rankings with ties.
//!
//! A Rust implementation of Fagin, Kumar, Mahdian, Sivakumar and Vee,
//! *"Comparing and Aggregating Rankings with Ties"* (PODS 2004): metrics
//! between partial rankings (bucket orders), constant-factor rank
//! aggregation built on median ranks, and a database-friendly
//! sorted-access algorithm (MEDRANK) that reads as little of each input
//! as the instance allows.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! * [`core`] — bucket orders, positions, refinements, types.
//! * [`metrics`] — `Kprof`, `Fprof`, `KHaus`, `FHaus` and friends.
//! * [`aggregate`] — median aggregation, the optimal-bucketing DP, exact
//!   optima and classical baselines.
//! * [`access`] — sorted-access cursors, MEDRANK, the Threshold
//!   Algorithm, and an in-memory fielded-search substrate.
//! * [`workloads`] — random/Mallows generators and synthetic catalogs.
//! * [`server`] — a dependency-free TCP service hosting streaming
//!   profile sessions behind a framed binary protocol.
//!
//! The most common items are also re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use bucketrank::{BucketOrder, MedianPolicy};
//! use bucketrank::aggregate::median::aggregate_top_k;
//! use bucketrank::metrics::{footrule, kendall};
//!
//! // Rankings with ties, e.g. produced by sorting on few-valued fields.
//! let by_price = BucketOrder::from_keys(&[2, 1, 2, 3]);
//! let by_stars = BucketOrder::from_keys_desc(&[4, 5, 4, 3]);
//!
//! // Compare them with the paper's profile metrics (exact, scaled ×2).
//! let k2 = kendall::kprof_x2(&by_price, &by_stars).unwrap();
//! let f2 = footrule::fprof_x2(&by_price, &by_stars).unwrap();
//! assert!(k2 <= f2 && f2 <= 2 * k2); // Theorem 7, inequality (5)
//!
//! // Aggregate them into a provably near-optimal top-2 list.
//! let top2 = aggregate_top_k(&[by_price, by_stars], 2, MedianPolicy::Lower).unwrap();
//! assert_eq!(top2.top_k_len(), Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bucketrank_access as access;
pub use bucketrank_aggregate as aggregate;
pub use bucketrank_core as core;
pub use bucketrank_metrics as metrics;
pub use bucketrank_server as server;
pub use bucketrank_workloads as workloads;

pub use bucketrank_aggregate::cost::AggMetric;
pub use bucketrank_aggregate::MedianPolicy;
pub use bucketrank_core::{BucketOrder, BucketOrderBuilder, Domain, ElementId, Pos, TypeSeq};
