//! Quickstart: build partial rankings, compare them with all four of the
//! paper's metrics, and aggregate them three ways.
//!
//! Run with: `cargo run --example quickstart`

use bucketrank::aggregate::dp::aggregate_optimal_bucketing;
use bucketrank::aggregate::median::{aggregate_full, aggregate_top_k};
use bucketrank::aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank::metrics::{footrule, hausdorff, kendall};
use bucketrank::{BucketOrder, Domain, MedianPolicy};

fn main() {
    // A small product catalog; the domain interns names to dense ids.
    let mut domain = Domain::new();
    for name in ["Aster", "Basil", "Clove", "Dill", "Elder"] {
        domain.intern(name);
    }
    let n = domain.len();

    // Three rankings with ties, as produced by sorting on few-valued
    // attributes (price band, star rating, shipping speed).
    let by_price = BucketOrder::from_keys(&[1, 1, 2, 2, 3]);
    let by_stars = BucketOrder::from_keys_desc(&[4, 5, 5, 3, 4]);
    let by_shipping = BucketOrder::from_keys(&[2, 1, 1, 1, 2]);
    let inputs = [by_price, by_stars, by_shipping];

    println!("input rankings (buckets separated by '|'):");
    for (name, s) in ["price", "stars", "shipping"].iter().zip(&inputs) {
        println!("  {name:>9}: {}", s.display());
    }

    // --- metrics -------------------------------------------------------
    println!("\npairwise distances (paper units):");
    println!("  {:>14} {:>8} {:>8} {:>8} {:>8}", "pair", "Kprof", "Fprof", "KHaus", "FHaus");
    let names = ["price", "stars", "shipping"];
    for i in 0..inputs.len() {
        for j in i + 1..inputs.len() {
            let a = &inputs[i];
            let b = &inputs[j];
            println!(
                "  {:>14} {:>8.1} {:>8.1} {:>8} {:>8}",
                format!("{}/{}", names[i], names[j]),
                kendall::kprof(a, b).unwrap(),
                footrule::fprof(a, b).unwrap(),
                hausdorff::khaus(a, b).unwrap(),
                hausdorff::fhaus(a, b).unwrap(),
            );
        }
    }

    // --- aggregation ---------------------------------------------------
    let top2 = aggregate_top_k(&inputs, 2, MedianPolicy::Lower).unwrap();
    let full = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
    let fdagger = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();

    let pretty = |o: &BucketOrder| -> String {
        let mut out = String::new();
        for (bi, b) in o.buckets().iter().enumerate() {
            if bi > 0 {
                out.push_str(" | ");
            }
            let names: Vec<&str> = b.iter().map(|&e| domain.label(e).unwrap()).collect();
            out.push_str(&names.join(" "));
        }
        out
    };

    println!("\nmedian aggregation:");
    println!("  top-2 list (Thm 9, ≤3× optimal):   [{}]", pretty(&top2));
    println!("  full ranking (Thm 11):             [{}]", pretty(&full));
    println!("  optimal bucketing f† (Thm 10):     [{}]", pretty(&fdagger.order));

    println!("\naggregate Fprof cost of each output over the {n}-item domain:");
    for (label, cand) in [("top-2", &top2), ("full", &full), ("f†", &fdagger.order)] {
        let c = total_cost_x2(AggMetric::FProf, cand, &inputs).unwrap();
        println!("  {label:>6}: {:.1}", c as f64 / 2.0);
    }
}
