//! Median-rank judging, as in Olympic figure skating (the paper's
//! footnote 2: "rank aggregation based on median rank, along with
//! complicated tie-breaking rules, is used in judging Olympic figure
//! skating"). Each judge scores the skaters; equal scores produce ties;
//! the final placement is the median rank, with residual ties resolved by
//! the paper's optimal-bucketing dynamic program.
//!
//! Run with: `cargo run --example figure_skating`

use bucketrank::aggregate::dp::optimal_bucketing;
use bucketrank::aggregate::median::{median_positions, MedianPolicy};
use bucketrank::{BucketOrder, Domain};

fn main() {
    let mut domain = Domain::new();
    let skaters = ["Akiyama", "Brandt", "Costa", "Dmitrieva", "Eklund", "Fontaine"];
    for s in skaters {
        domain.intern(s);
    }

    // Seven judges, 6.0-style scores; ties within a judge are real ties.
    let scores: [[i64; 6]; 7] = [
        // Aki  Brandt Costa Dmitr Eklund Fontaine
        [58, 57, 58, 55, 54, 53],
        [59, 58, 56, 56, 53, 54],
        [57, 57, 57, 54, 55, 52],
        [58, 59, 55, 56, 54, 53],
        [56, 58, 57, 55, 53, 54],
        [59, 56, 58, 54, 55, 53],
        [57, 58, 56, 55, 54, 54],
    ];

    let rankings: Vec<BucketOrder> = scores
        .iter()
        .map(|row| BucketOrder::from_keys_desc(row))
        .collect();

    println!("per-judge placements (buckets = tied skaters):");
    for (j, r) in rankings.iter().enumerate() {
        let pretty: Vec<String> = r
            .buckets()
            .iter()
            .map(|b| {
                b.iter()
                    .map(|&e| domain.label(e).unwrap().to_owned())
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect();
        println!("  judge {:>2}: {}", j + 1, pretty.join(" > "));
    }

    // Median rank per skater (the "majority placement").
    let medians = median_positions(&rankings, MedianPolicy::Lower).unwrap();
    println!("\nmedian placements:");
    let mut by_median: Vec<usize> = (0..skaters.len()).collect();
    by_median.sort_by_key(|&i| medians[i]);
    for &i in &by_median {
        println!("  {:>10}: median rank {}", skaters[i], medians[i]);
    }

    // Final placement: the paper's f† — the partial ranking closest (L1)
    // to the median vector, computed by the O(n²) dynamic program.
    let placement = optimal_bucketing(&medians);
    println!("\nfinal placement (optimal bucketing of the medians, Theorem 10):");
    for (place, bucket) in placement.order.buckets().iter().enumerate() {
        let names: Vec<&str> = bucket.iter().map(|&e| domain.label(e).unwrap()).collect();
        println!("  {}. {}", place + 1, names.join(" (tie) "));
    }
    println!(
        "\nL1 distance from medians: {:.1} (provably minimal over all placements)",
        placement.cost_x2 as f64 / 2.0
    );
}
