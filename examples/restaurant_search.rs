//! The paper's dine.com scenario: fielded restaurant search over a
//! synthetic catalog. Each preference attribute induces a partial ranking
//! (few-valued or user-coarsened), and MEDRANK aggregates them reading as
//! few index entries as the instance allows.
//!
//! Run with: `cargo run --example restaurant_search`

use bucketrank::access::db::AttrValue;
use bucketrank::access::query::PreferenceQuery;
use bucketrank::workloads::datasets::{restaurant_query_specs, restaurants};
use bucketrank::workloads::rng::Pcg32;
use bucketrank::workloads::rng::SeedableRng;

fn main() {
    let mut rng = Pcg32::seed_from_u64(2004);
    let n = 5000;
    let table = restaurants(&mut rng, n);

    let specs = restaurant_query_specs();
    println!("catalog: {n} restaurants");
    println!("preferences:");
    for s in &specs {
        println!("  - {:?}", s);
    }

    let query = PreferenceQuery::new(specs).with_k(5);
    let result = query.run(&table).unwrap();

    println!("\nper-attribute partial rankings (bucket counts over {n} rows):");
    for (spec, ranking) in query.specs().iter().zip(&result.rankings) {
        println!(
            "  {:>10}: {} buckets (largest {})",
            spec.attribute,
            ranking.num_buckets(),
            ranking.buckets().iter().map(Vec::len).max().unwrap_or(0),
        );
    }

    println!("\ntop-5 restaurants by median rank:");
    for (rank, &id) in result.top.iter().enumerate() {
        let cuisine = match table.value(id as usize, "cuisine") {
            Some(AttrValue::Text(s)) => s.clone(),
            _ => unreachable!("schema declares cuisine as text"),
        };
        let distance = match table.value(id as usize, "distance") {
            Some(&AttrValue::Float(d)) => d,
            _ => unreachable!(),
        };
        let price = match table.value(id as usize, "price") {
            Some(&AttrValue::Int(p)) => p,
            _ => unreachable!(),
        };
        let stars = match table.value(id as usize, "stars") {
            Some(&AttrValue::Int(s)) => s,
            _ => unreachable!(),
        };
        println!(
            "  #{:<2} record {:>5}  {:>8}  {:>5.1} mi  {}  {}",
            rank + 1,
            id,
            cuisine,
            distance,
            "$".repeat(price as usize),
            "*".repeat(stars as usize),
        );
    }

    let total = result.stats.total_accesses();
    let full_scan = (query.specs().len() * n) as u64;
    println!("\naccess cost (sorted accesses):");
    for (spec, depth) in query.specs().iter().zip(&result.stats.sorted_depth) {
        println!("  {:>10}: read {depth} of {n} entries", spec.attribute);
    }
    println!(
        "  total {total} vs full-scan {full_scan} ({:.1}% of a Borda-style scan)",
        100.0 * total as f64 / full_scan as f64
    );
}
