//! Metasearch: aggregating noisy top-k lists from several simulated
//! search engines, comparing the paper's median algorithm against
//! classical baselines (Borda, Markov chain MC4, best-input) and — on a
//! small instance — the exact optimum.
//!
//! Run with: `cargo run --example metasearch`

use bucketrank::aggregate::borda::{average_rank_full, best_input};
use bucketrank::aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank::aggregate::dp::aggregate_optimal_bucketing;
use bucketrank::aggregate::exact::optimal_partial_ranking;
use bucketrank::aggregate::markov::{markov_aggregate, MarkovChain, MarkovOptions};
use bucketrank::aggregate::median::aggregate_top_k;
use bucketrank::workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank::{BucketOrder, ElementId, MedianPolicy, TypeSeq};
use bucketrank::workloads::rng::Pcg32;
use bucketrank::workloads::rng::SeedableRng;
use std::collections::HashSet;

/// Fraction of `truth`'s top-k that `cand`'s top-k recovers.
fn precision_at_k(cand: &BucketOrder, truth: &BucketOrder, k: usize) -> f64 {
    let tops = |o: &BucketOrder| -> HashSet<ElementId> {
        o.buckets().iter().take(k).flatten().copied().collect()
    };
    let c = tops(cand);
    let t = tops(truth);
    c.intersection(&t).count() as f64 / k as f64
}

/// The top-k prefix of a full ranking, as a top-k list.
fn take_top_k(full: &BucketOrder, k: usize) -> BucketOrder {
    let perm = full.as_permutation().expect("needs a full ranking");
    BucketOrder::top_k(full.len(), &perm[..k]).expect("prefix is distinct")
}

fn main() {
    let mut rng = Pcg32::seed_from_u64(47);

    // --- large instance: 60 URLs, 7 engines returning top-10 lists ----
    let n = 60;
    let k = 10;
    let m = 7;
    let model = MallowsWithTies::new(Mallows::new(n, 0.25), TypeSeq::top_k(n, k).unwrap());
    let engines: Vec<BucketOrder> = model.sample_profile(&mut rng, m);
    let truth = model.reference();

    println!("metasearch: {m} engines, {n} urls, top-{k} lists, Mallows θ = 0.25");
    println!("\nall methods emit a top-{k} list; Σ Fprof is the aggregation");
    println!("objective, precision@{k} measures recovery of the hidden truth:");
    println!("  {:>12} {:>12} {:>14}", "method", "Σ Fprof", "precision@10");

    let report = |name: &str, cand: &BucketOrder| {
        let cost = total_cost_x2(AggMetric::FProf, cand, &engines).unwrap() as f64 / 2.0;
        let prec = precision_at_k(cand, &truth, k);
        println!("  {name:>12} {cost:>12.1} {prec:>14.2}");
    };

    let median = aggregate_top_k(&engines, k, MedianPolicy::Lower).unwrap();
    report("median", &median);

    let borda = take_top_k(&average_rank_full(&engines).unwrap(), k);
    report("borda", &borda);

    let mc4 = take_top_k(
        &markov_aggregate(&engines, MarkovChain::Mc4, MarkovOptions::default()).unwrap(),
        k,
    );
    report("MC4", &mc4);

    let (best_idx, best_cost) = best_input(&engines, AggMetric::FProf).unwrap();
    println!(
        "  {:>12} {:>12.1} {:>14.2}   (engine #{best_idx})",
        "best input",
        best_cost as f64 / 2.0,
        precision_at_k(&engines[best_idx], &truth, k)
    );

    // The DP bucketing discovers the "everything else" bottom bucket on
    // its own — no k needs to be supplied.
    let fdagger = aggregate_optimal_bucketing(&engines, MedianPolicy::Lower).unwrap();
    report("f† (DP)", &fdagger.order);
    println!(
        "  (f† found {} buckets; bottom bucket holds {} urls)",
        fdagger.order.num_buckets(),
        fdagger.order.buckets().last().map_or(0, Vec::len)
    );

    // --- small instance: verify the factor-2 guarantee exactly --------
    let n2 = 7;
    let model2 = MallowsWithTies::new(Mallows::new(n2, 0.4), TypeSeq::top_k(n2, 3).unwrap());
    let small: Vec<BucketOrder> = model2.sample_profile(&mut rng, 5);
    let fd2 = aggregate_optimal_bucketing(&small, MedianPolicy::Lower).unwrap();
    let fd2_cost = total_cost_x2(AggMetric::FProf, &fd2.order, &small).unwrap();
    let (opt, opt_cost) = optimal_partial_ranking(&small, AggMetric::FProf).unwrap();

    println!("\nsmall instance (n = {n2}): exact check of the Theorem 10 bound");
    println!("  f† aggregation : Σ Fprof = {:.1}  ({})", fd2_cost as f64 / 2.0, fd2.order.display());
    println!("  exact optimum  : Σ Fprof = {:.1}  ({})", opt_cost as f64 / 2.0, opt.display());
    println!(
        "  ratio = {:.3} (guarantee for partial-ranking inputs: ≤ 2)",
        fd2_cost as f64 / opt_cost.max(1) as f64
    );
}
