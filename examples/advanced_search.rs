//! "Advanced search": filter + rank + aggregate, the full pipeline of the
//! paper's Section 1 — with a side-by-side of the three access-model
//! algorithms (MEDRANK in both delivery modes, TA, NRA) on the same
//! preference query.
//!
//! Run with: `cargo run --example advanced_search`

use bucketrank::access::db::{AttrValue, Direction, OrderSpec};
use bucketrank::access::filter::{Predicate, Selection, View};
use bucketrank::access::medrank::{medrank_top_k, medrank_top_k_buckets};
use bucketrank::access::nra::nra_top_k;
use bucketrank::access::query::PreferenceQuery;
use bucketrank::access::ta::{ta_top_k, ScoreList};
use bucketrank::workloads::datasets::flights;
use bucketrank::workloads::rng::Pcg32;
use bucketrank::workloads::rng::SeedableRng;

fn main() {
    let mut rng = Pcg32::seed_from_u64(77);
    let n = 20_000;
    let table = flights(&mut rng, n);
    println!("catalog: {n} flights");

    // --- filter: the "advanced search" form --------------------------
    let selection = Selection::new()
        .and(Predicate::IntRange {
            attribute: "price".into(),
            min: 0,
            max: 400,
        })
        .and(Predicate::IntRange {
            attribute: "stops".into(),
            min: 0,
            max: 1,
        });
    let view = View::filter(&table, &selection).unwrap();
    let (sub, mapping) = view.materialize();
    println!(
        "filter: price ≤ $400 and ≤ 1 stop — {} of {n} flights remain",
        sub.len()
    );

    // --- rank + aggregate over the filtered view ----------------------
    let query = PreferenceQuery::new(vec![
        OrderSpec::numeric("price", Direction::Asc)
            .with_binning(bucketrank::access::db::Binning::Width(50.0))
            .expect("price ranks numerically"),
        OrderSpec::numeric("stops", Direction::Asc),
        OrderSpec::numeric("duration", Direction::Asc)
            .with_binning(bucketrank::access::db::Binning::Width(45.0))
            .expect("duration ranks numerically"),
    ])
    .with_k(3);
    let rankings = query.plan(&sub).unwrap();

    println!("\nMEDRANK, element-at-a-time vs bucket-atomic delivery:");
    let elem = medrank_top_k(&rankings, 3).unwrap();
    let bucket = medrank_top_k_buckets(&rankings, 3).unwrap();
    println!(
        "  element mode: top = {:?}, accesses = {}",
        elem.top,
        elem.stats.total_accesses()
    );
    println!(
        "  bucket mode : top = {:?}, accesses = {} (whole ties paid at once)",
        bucket.top,
        bucket.stats.total_accesses()
    );

    for (label, r) in [("element", &elem)] {
        for &id in &r.top {
            let base = mapping[id as usize];
            let price = match table.value(base, "price") {
                Some(&AttrValue::Int(p)) => p,
                _ => unreachable!(),
            };
            let stops = match table.value(base, "stops") {
                Some(&AttrValue::Int(s)) => s,
                _ => unreachable!(),
            };
            println!("    [{label}] flight {base}: ${price}, {stops} stop(s)");
        }
    }

    // --- score-based alternatives on the same view --------------------
    // Turn each attribute into a [0, 1] "goodness" score.
    let to_scores = |attr: &str, best_low: bool, scale: f64| -> ScoreList {
        let scores: Vec<f64> = (0..sub.len())
            .map(|row| {
                let v = match sub.value(row, attr) {
                    Some(&AttrValue::Int(x)) => x as f64,
                    Some(&AttrValue::Float(x)) => x,
                    _ => unreachable!("numeric attributes only"),
                };
                if best_low {
                    1.0 - (v / scale).min(1.0)
                } else {
                    (v / scale).min(1.0)
                }
            })
            .collect();
        ScoreList::from_scores(&scores).unwrap()
    };
    let lists = vec![
        to_scores("price", true, 400.0),
        to_scores("stops", true, 3.0),
        to_scores("duration", true, 400.0),
    ];
    let ta = ta_top_k(&lists, 3).unwrap();
    let nra = nra_top_k(&lists, 3).unwrap();
    println!("\nscore-based algorithms on the same filtered data:");
    println!(
        "  TA : top = {:?}, {} sorted + {} random accesses",
        ta.top.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
        ta.stats.sorted_depth.iter().sum::<u64>(),
        ta.stats.random_accesses.iter().sum::<u64>()
    );
    println!(
        "  NRA: top = {:?}, {} sorted accesses, zero random",
        nra.top.iter().map(|&(e, _, _)| e).collect::<Vec<_>>(),
        nra.stats.sorted_depth.iter().sum::<u64>()
    );
    println!("\nMEDRANK needs neither numeric scores nor random access —");
    println!("exactly the regime (opaque, few-valued sort orders) the paper");
    println!("argues databases are actually in.");

    // --- similarity search: the two-cursor scheme of [11] --------------
    use bucketrank::access::similarity::SimilarityIndex;
    let sim = SimilarityIndex::build(&sub, &["price", "stops", "duration"]).unwrap();
    let query = [250.0, 0.0, 150.0]; // "around $250, nonstop, ~2.5h"
    let near = sim.nearest(&query, 3).unwrap();
    println!("\nsimilarity search (two cursors per attribute, paper §6 / [11]):");
    println!("  query: ${:.0}, {:.0} stops, {:.0} min", query[0], query[1], query[2]);
    for &id in &near.top {
        let base = mapping[id as usize];
        let price = match table.value(base, "price") {
            Some(&AttrValue::Int(p)) => p,
            _ => unreachable!(),
        };
        let duration = match table.value(base, "duration") {
            Some(&AttrValue::Int(d)) => d,
            _ => unreachable!(),
        };
        println!("    flight {base}: ${price}, {duration} min");
    }
    println!(
        "  accesses: {} of {} index entries — no per-query sort",
        near.stats.total_accesses(),
        3 * sub.len()
    );
}
