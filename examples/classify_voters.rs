//! Classification via partial-ranking metrics (the abstract's
//! "similarity search and classification" application): voters drawn from
//! a mixture of two Mallows populations are clustered by k-medoids under
//! `Kprof`, each cluster is aggregated with the median pipeline, and the
//! recovered references are compared to the hidden ones.
//!
//! Run with: `cargo run --example classify_voters`

use bucketrank::aggregate::cluster::k_medoids;
use bucketrank::aggregate::cost::AggMetric;
use bucketrank::aggregate::dp::aggregate_optimal_bucketing;
use bucketrank::metrics::kendall;
use bucketrank::workloads::mallows::Mallows;
use bucketrank::workloads::random::random_full_ranking;
use bucketrank::{BucketOrder, MedianPolicy};
use bucketrank::workloads::rng::Pcg32;
use bucketrank::workloads::rng::SeedableRng;

fn main() {
    let mut rng = Pcg32::seed_from_u64(2004);
    let n = 12;

    // Two hidden voter populations with distinct references.
    let ref_a = random_full_ranking(&mut rng, n);
    let ref_b = ref_a.reverse();
    let pop_a = Mallows::with_reference(ref_a.as_permutation().unwrap(), 0.8);
    let pop_b = Mallows::with_reference(ref_b.as_permutation().unwrap(), 0.8);

    let mut voters: Vec<BucketOrder> = Vec::new();
    let mut truth: Vec<usize> = Vec::new();
    for i in 0..30 {
        if i % 2 == 0 {
            voters.push(pop_a.sample(&mut rng));
            truth.push(0);
        } else {
            voters.push(pop_b.sample(&mut rng));
            truth.push(1);
        }
    }

    println!("30 voters over {n} candidates, hidden 2-component Mallows mixture (θ = 0.8)\n");

    let clustering = k_medoids(&voters, 2, AggMetric::KProf).unwrap();
    println!(
        "k-medoids under Kprof: converged in {} iterations, objective {:.1}",
        clustering.iterations,
        clustering.cost_x2 as f64 / 2.0
    );

    // Cluster-vs-truth agreement (up to label swap).
    let agree: usize = clustering
        .assignment
        .iter()
        .zip(&truth)
        .filter(|&(&a, &t)| a == t)
        .count();
    let accuracy = agree.max(30 - agree) as f64 / 30.0;
    println!("classification accuracy vs hidden mixture: {:.1}%", 100.0 * accuracy);

    // Aggregate each cluster with the paper's pipeline and compare to the
    // hidden references.
    for c in 0..2 {
        let members: Vec<BucketOrder> = clustering
            .members(c)
            .into_iter()
            .map(|i| voters[i].clone())
            .collect();
        let agg = aggregate_optimal_bucketing(&members, MedianPolicy::Lower).unwrap();
        let da = kendall::kprof(&agg.order, &ref_a).unwrap();
        let db = kendall::kprof(&agg.order, &ref_b).unwrap();
        let (closest, d) = if da <= db { ("A", da) } else { ("B", db) };
        println!(
            "cluster {c} ({} voters): median aggregate at Kprof {d:.1} from hidden reference {closest}",
            members.len()
        );
    }
    println!("\n(Kendall diameter at n = {n} is {}; both aggregates should sit", n * (n - 1) / 2);
    println!(" far below it from their own reference and far above from the other.)");
}
