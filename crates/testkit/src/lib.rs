//! `bucketrank-testkit` — the repo's hermetic testing harness.
//!
//! Three pieces, zero external dependencies:
//!
//! * [`rng`] — deterministic PRNGs ([`rng::SplitMix64`],
//!   [`rng::Pcg32`]) behind a `rand`-shaped trait surface
//!   ([`rng::Rng`], [`rng::SeedableRng`], [`rng::SliceRandom`]), so
//!   workload samplers and tests stay generic over the source.
//! * [`gen`] — generator combinators with generator-owned shrinking,
//!   including `BucketOrder` domain generators with remove-item and
//!   merge-bucket shrink moves.
//! * [`runner`] — a property runner: `runner::check(name, gen, |v| …)`
//!   draws ≥ 64 cases, shrinks failures, and prints the seed plus a
//!   `BUCKETRANK_PT_SEED=…` reproduction line.
//!
//! Determinism contract: case streams are a pure function of
//! `(seed, property name, case index)`. `BUCKETRANK_PT_SEED` and
//! `BUCKETRANK_PT_CASES` override the defaults process-wide.

pub mod gen;
pub mod rng;
pub mod runner;

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::gen::{self, Gen};
    pub use crate::rng::{Pcg32, Rng, SeedableRng, SliceRandom, SplitMix64};
    pub use crate::runner::{check, check_with, Config};
}
