//! Generator combinators for property tests.
//!
//! A [`Gen`] produces random values from a [`Pcg32`] stream and knows
//! how to *shrink* a failing value toward smaller counterexamples.
//! Shrinking lives on the generator — not the value — so that
//! generators with invariants (full rankings stay full, paired orders
//! stay on the same domain) only ever propose candidates inside their
//! own support.
//!
//! Domain generators for [`BucketOrder`] use two shrink moves:
//!
//! * **remove-item** — drop one element from the domain (coordinated
//!   across tuple components, so pairs keep comparable domains);
//! * **merge-bucket** — merge two adjacent buckets, increasing ties
//!   (skipped by the full-ranking generators, whose support has none).

use crate::rng::{Pcg32, Rng};
use bucketrank_core::BucketOrder;
use std::fmt::Debug;
use std::ops::RangeInclusive;

/// A reproducible random generator of test values with shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Produce one value from the stream.
    fn generate(&self, rng: &mut Pcg32) -> Self::Value;

    /// Propose strictly "smaller" variants of a failing value. Every
    /// candidate must lie in this generator's support. Order matters:
    /// the runner tries candidates front to back and greedily recurses
    /// on the first that still fails.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let _ = v;
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }
}

/// A generator from a closure, with no shrinking.
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut Pcg32) -> T,
{
    FromFn(f)
}

/// See [`from_fn`].
pub struct FromFn<F>(F);

impl<T, F> Gen for FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut Pcg32) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Pcg32) -> T {
        (self.0)(rng)
    }
}

/// Two independent generators; shrinks one component at a time.
pub fn pair<A: Gen, B: Gen>(a: A, b: B) -> Pair<A, B> {
    Pair(a, b)
}

/// See [`pair`].
pub struct Pair<A, B>(A, B);

impl<A: Gen, B: Gen> Gen for Pair<A, B> {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b));
        }
        out
    }
}

/// Three independent generators; shrinks one component at a time.
pub fn triple<A: Gen, B: Gen, C: Gen>(a: A, b: B, c: C) -> Triple<A, B, C> {
    Triple(a, b, c)
}

/// See [`triple`].
pub struct Triple<A, B, C>(A, B, C);

impl<A: Gen, B: Gen, C: Gen> Gen for Triple<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&v.0) {
            out.push((a, v.1.clone(), v.2.clone()));
        }
        for b in self.1.shrink(&v.1) {
            out.push((v.0.clone(), b, v.2.clone()));
        }
        for c in self.2.shrink(&v.2) {
            out.push((v.0.clone(), v.1.clone(), c));
        }
        out
    }
}

/// A vector of values from `elem` with a length drawn from `len`.
/// Shrinks by removing one element, then by shrinking each element.
pub fn vec_of<G: Gen>(elem: G, len: RangeInclusive<usize>) -> VecOf<G> {
    VecOf { elem, len }
}

/// See [`vec_of`].
pub struct VecOf<G> {
    elem: G,
    len: RangeInclusive<usize>,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if v.len() > *self.len.start() {
            for i in 0..v.len() {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        for (i, x) in v.iter().enumerate() {
            for sx in self.elem.shrink(x) {
                let mut copy = v.clone();
                copy[i] = sx;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! int_gen {
    ($fname:ident, $gname:ident, $t:ty) => {
        /// A uniform integer in the inclusive range, shrinking toward
        /// the lower bound by halving the distance.
        pub fn $fname(range: RangeInclusive<$t>) -> $gname {
            $gname(range)
        }

        #[doc = concat!("See [`", stringify!($fname), "`].")]
        pub struct $gname(RangeInclusive<$t>);

        impl Gen for $gname {
            type Value = $t;

            fn generate(&self, rng: &mut Pcg32) -> $t {
                rng.gen_range(self.0.clone())
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Candidates `v - delta` for halving deltas: the greedy
                // runner recursing on the first failure binary-searches
                // onto the smallest failing value.
                let lo = *self.0.start();
                let mut out = Vec::new();
                let mut delta = *v - lo;
                while delta > 0 {
                    out.push(*v - delta);
                    delta /= 2;
                }
                out
            }
        }
    };
}

int_gen!(usize_in, UsizeIn, usize);
int_gen!(u32_in, U32In, u32);
int_gen!(i64_in, I64In, i64);

/// Any `i32`, shrinking toward zero by halving.
pub fn i32_any() -> I32Any {
    I32Any
}

/// See [`i32_any`].
pub struct I32Any;

impl Gen for I32Any {
    type Value = i32;

    fn generate(&self, rng: &mut Pcg32) -> i32 {
        rng.next_u32() as i32
    }

    fn shrink(&self, v: &i32) -> Vec<i32> {
        let mut out = Vec::new();
        let mut cur = *v;
        while cur != 0 {
            let mid = cur / 2;
            out.push(mid);
            cur = mid;
        }
        out.dedup();
        out
    }
}

/// A string of length in `len` over `charset`, shrinking by removing
/// one character at a time.
pub fn string_from(charset: &'static [char], len: RangeInclusive<usize>) -> StringFrom {
    StringFrom { charset, len }
}

/// Printable characters (ASCII printable plus a few multibyte
/// codepoints), standing in for proptest's `\PC` class.
pub fn printable_string(len: RangeInclusive<usize>) -> StringFrom {
    const PRINTABLE: &[char] = &[
        ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0',
        '1', '5', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'M', 'Z', '[', '\\', ']',
        '^', '_', '`', 'a', 'b', 'k', 'z', '{', '|', '}', '~', 'é', 'ß', '中', '→', '🦀',
    ];
    StringFrom {
        charset: PRINTABLE,
        len,
    }
}

/// See [`string_from`].
pub struct StringFrom {
    charset: &'static [char],
    len: RangeInclusive<usize>,
}

impl Gen for StringFrom {
    type Value = String;

    fn generate(&self, rng: &mut Pcg32) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| self.charset[rng.gen_range(0..self.charset.len())])
            .collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        if v.chars().count() <= *self.len.start() {
            return Vec::new();
        }
        let chars: Vec<char> = v.chars().collect();
        (0..chars.len())
            .map(|i| {
                chars
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &c)| c)
                    .collect()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// BucketOrder shrink moves
// ---------------------------------------------------------------------

/// Drop element `e` from the domain of `o`, relabeling the survivors
/// to `0..n-1` while preserving their relative order and ties.
pub fn remove_element(o: &BucketOrder, e: u32) -> BucketOrder {
    let keep: Vec<u32> = (0..o.len() as u32).filter(|&x| x != e).collect();
    o.restrict(&keep).expect("keep is a valid sub-domain")
}

/// Merge buckets `i` and `i + 1` of `o` into one (coarsening the
/// order by adding ties).
pub fn merge_adjacent(o: &BucketOrder, i: usize) -> BucketOrder {
    let mut buckets: Vec<Vec<u32>> = o.buckets().to_vec();
    let upper = buckets.remove(i + 1);
    buckets[i].extend(upper);
    BucketOrder::from_buckets(o.len(), buckets).expect("merging buckets keeps a valid order")
}

fn all_removals_coordinated(orders: &[&BucketOrder]) -> Vec<Vec<BucketOrder>> {
    let n = orders[0].len();
    if n <= 1 {
        return Vec::new();
    }
    (0..n as u32)
        .map(|e| orders.iter().map(|o| remove_element(o, e)).collect())
        .collect()
}

// ---------------------------------------------------------------------
// Domain generators
// ---------------------------------------------------------------------

fn random_keys_order(rng: &mut Pcg32, n: usize, levels: u8) -> BucketOrder {
    let keys: Vec<u8> = (0..n).map(|_| rng.gen_range(0..levels)).collect();
    BucketOrder::from_keys(&keys)
}

fn random_permutation(rng: &mut Pcg32, n: usize) -> BucketOrder {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    BucketOrder::from_permutation(&ids).expect("shuffled permutation")
}

/// A bucket order on `n` elements built by assigning each element a
/// uniform key in `0..levels` — the same distribution as the old
/// proptest `bucket_order_strategy`. `levels` controls tie density:
/// small `levels` relative to `n` forces large buckets.
///
/// Shrinks by removing an element and by merging adjacent buckets.
pub fn bucket_order(n: usize, levels: u8) -> BucketOrderGen {
    assert!(n >= 1 && levels >= 1);
    BucketOrderGen { n, levels }
}

/// See [`bucket_order`].
pub struct BucketOrderGen {
    n: usize,
    levels: u8,
}

impl Gen for BucketOrderGen {
    type Value = BucketOrder;

    fn generate(&self, rng: &mut Pcg32) -> BucketOrder {
        random_keys_order(rng, self.n, self.levels)
    }

    fn shrink(&self, v: &BucketOrder) -> Vec<BucketOrder> {
        let mut out = Vec::new();
        if v.len() > 1 {
            for e in 0..v.len() as u32 {
                out.push(remove_element(v, e));
            }
        }
        for i in 0..v.num_buckets().saturating_sub(1) {
            out.push(merge_adjacent(v, i));
        }
        out
    }
}

/// A pair of independent bucket orders over the **same** `n`-element
/// domain. Shrinks coordinate element removal across both sides (so
/// the domains stay equal) and merge buckets on either side alone.
pub fn order_pair(n: usize, levels: u8) -> OrderPairGen {
    assert!(n >= 1 && levels >= 1);
    OrderPairGen { n, levels }
}

/// See [`order_pair`].
pub struct OrderPairGen {
    n: usize,
    levels: u8,
}

impl Gen for OrderPairGen {
    type Value = (BucketOrder, BucketOrder);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (
            random_keys_order(rng, self.n, self.levels),
            random_keys_order(rng, self.n, self.levels),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (a, b) = v;
        let mut out: Vec<Self::Value> = all_removals_coordinated(&[a, b])
            .into_iter()
            .map(|mut pair| {
                let second = pair.pop().expect("two orders");
                let first = pair.pop().expect("two orders");
                (first, second)
            })
            .collect();
        for i in 0..a.num_buckets().saturating_sub(1) {
            out.push((merge_adjacent(a, i), b.clone()));
        }
        for i in 0..b.num_buckets().saturating_sub(1) {
            out.push((a.clone(), merge_adjacent(b, i)));
        }
        out
    }
}

/// Like [`order_pair`], but with heavy weight on the degenerate cases
/// metric kernels must get right: singleton domains, all-tied (single
/// bucket) orders on one or both sides, and full rankings on both
/// sides. Roughly half the stream is degenerate; the rest is the plain
/// [`order_pair`] distribution.
///
/// Shrinking **preserves the degeneracy class of each side**: a side
/// that is all-tied stays all-tied, a side that is full stays full
/// (coordinated element removal preserves both; bucket merges are only
/// proposed on unconstrained sides). A counterexample found on, say, a
/// full×all-tied pair therefore shrinks to the *smallest* full×all-tied
/// pair that still fails, instead of drifting into a generic pair.
pub fn order_pair_with_degenerates(n: usize, levels: u8) -> OrderPairWithDegeneratesGen {
    assert!(n >= 1 && levels >= 1);
    OrderPairWithDegeneratesGen { n, levels }
}

/// See [`order_pair_with_degenerates`].
pub struct OrderPairWithDegeneratesGen {
    n: usize,
    levels: u8,
}

impl Gen for OrderPairWithDegeneratesGen {
    type Value = (BucketOrder, BucketOrder);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        match rng.gen_range(0..8u32) {
            // Singleton domain: the smallest nonempty instance.
            0 => (BucketOrder::trivial(1), BucketOrder::trivial(1)),
            // Both sides one bucket: every pair tied in both.
            1 => (BucketOrder::trivial(self.n), BucketOrder::trivial(self.n)),
            // One side all-tied, the other in the generic distribution.
            2 => (
                BucketOrder::trivial(self.n),
                random_keys_order(rng, self.n, self.levels),
            ),
            3 => (
                random_keys_order(rng, self.n, self.levels),
                BucketOrder::trivial(self.n),
            ),
            // Both sides full rankings: no ties anywhere.
            4 => (
                random_permutation(rng, self.n),
                random_permutation(rng, self.n),
            ),
            _ => (
                random_keys_order(rng, self.n, self.levels),
                random_keys_order(rng, self.n, self.levels),
            ),
        }
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (a, b) = v;
        let mut out: Vec<Self::Value> = all_removals_coordinated(&[a, b])
            .into_iter()
            .map(|mut pair| {
                let second = pair.pop().expect("two orders");
                let first = pair.pop().expect("two orders");
                (first, second)
            })
            .collect();
        // Merges would break a full side out of its class (and all-tied
        // sides have nothing to merge), so only unconstrained sides get
        // merge candidates.
        if !a.is_full() {
            for i in 0..a.num_buckets().saturating_sub(1) {
                out.push((merge_adjacent(a, i), b.clone()));
            }
        }
        if !b.is_full() {
            for i in 0..b.num_buckets().saturating_sub(1) {
                out.push((a.clone(), merge_adjacent(b, i)));
            }
        }
        out
    }
}

/// Per-position weight vectors (integer units, index `p` weighting
/// 1-based rank `p + 1`) with heavy weight on the degenerate classes
/// weighted metric kernels must get right: **uniform** (every position
/// the same), **geometric decay** (halving weights with a zero tail),
/// **top-k step** (a constant on the first `k` positions, zero after)
/// and a **single-position spike**. The rest of the stream is generic
/// small weights, zeros included.
///
/// Shrinking **preserves the class shape**: halving every nonzero
/// entry at once keeps uniform vectors uniform, steps steps, spikes
/// spikes and decays nonincreasing; zeroing the last nonzero entry
/// (proposed only when it cannot break a uniform vector or empty a
/// spike) shortens a step or decay tail. A counterexample found on a
/// spike therefore shrinks to the smallest-valued spike that still
/// fails instead of drifting into a generic vector.
pub fn weights_with_degenerates(n: usize) -> WeightsWithDegeneratesGen {
    assert!(n >= 1);
    WeightsWithDegeneratesGen { n }
}

/// See [`weights_with_degenerates`].
pub struct WeightsWithDegeneratesGen {
    n: usize,
}

impl Gen for WeightsWithDegeneratesGen {
    type Value = Vec<u64>;

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        let n = self.n;
        match rng.gen_range(0..8u32) {
            // Uniform: the class where the weighted kernels must
            // collapse to scaled unweighted ones.
            0 | 1 => vec![u64::from(rng.gen_range(1..=16u32)); n],
            // Geometric decay: halving weights, zero once the base
            // runs out of bits.
            2 | 3 => {
                let base: u64 = 1 << rng.gen_range(0..20u32);
                (0..n).map(|p| base >> p.min(63)).collect()
            }
            // Top-k step: a constant on the first k positions.
            4 | 5 => {
                let k = rng.gen_range(1..=n as u32) as usize;
                let c = u64::from(rng.gen_range(1..=4u32));
                (0..n).map(|p| if p < k { c } else { 0 }).collect()
            }
            // Single-position spike: all the mass on one rank.
            6 => {
                let mut w = vec![0u64; n];
                w[rng.gen_range(0..n as u32) as usize] = 1 << rng.gen_range(0..20u32);
                w
            }
            _ => (0..n).map(|_| u64::from(rng.gen_range(0..=16u32))).collect(),
        }
    }

    fn shrink(&self, w: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Halving every nonzero entry at once preserves every class
        // shape.
        if w.iter().any(|&x| x > 1) {
            out.push(w.iter().map(|&x| if x > 1 { x / 2 } else { x }).collect());
        }
        // Zeroing the last nonzero entry shortens a step or decay
        // tail. Skipped when the entries are all equal (it would break
        // a uniform vector) or only one is nonzero (it would empty a
        // spike).
        let nonzero = w.iter().filter(|&&x| x != 0).count();
        let all_equal = w.windows(2).all(|p| p[0] == p[1]);
        if nonzero >= 2 && !all_equal {
            let last = w.iter().rposition(|&x| x != 0).expect("nonzero >= 2");
            let mut z = w.clone();
            z[last] = 0;
            out.push(z);
        }
        out
    }
}

/// A multi-voter profile: `m` bucket orders (with `m` drawn from
/// `voters`) over one shared `n`-element domain, with heavy weight on
/// the degenerate profiles tally-style aggregation code must get
/// right: singleton domains, all-voters-tied profiles, unanimous full
/// profiles, and per-voter mixes of all-tied / full / generic voters.
/// Roughly a third of the stream is a profile-level degenerate class;
/// the rest draws each voter independently (with its own chance of
/// being all-tied or full).
///
/// Shrinking **preserves each voter's degeneracy class**: voter
/// removal (down to `voters.start()`), element removal coordinated
/// across all voters (both moves preserve every class), and bucket
/// merges only on voters that are neither full nor all-tied — so a
/// counterexample found on, say, a profile with an all-tied voter
/// shrinks to the smallest such profile instead of drifting into a
/// generic one.
pub fn profile_with_degenerates(
    voters: RangeInclusive<usize>,
    n: usize,
    levels: u8,
) -> ProfileWithDegeneratesGen {
    assert!(*voters.start() >= 1 && n >= 1 && levels >= 1);
    ProfileWithDegeneratesGen { voters, n, levels }
}

/// See [`profile_with_degenerates`].
pub struct ProfileWithDegeneratesGen {
    voters: RangeInclusive<usize>,
    n: usize,
    levels: u8,
}

impl Gen for ProfileWithDegeneratesGen {
    type Value = Vec<BucketOrder>;

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        let m = rng.gen_range(self.voters.clone());
        match rng.gen_range(0..9u32) {
            // Singleton domain: the smallest nonempty instance.
            0 => vec![BucketOrder::trivial(1); m],
            // Every voter all-tied: no pairwise information at all.
            1 => vec![BucketOrder::trivial(self.n); m],
            // Unanimous full profile: maximal agreement.
            2 => vec![random_permutation(rng, self.n); m],
            // Per-voter mix: each voter independently all-tied, full,
            // or generic.
            _ => (0..m)
                .map(|_| match rng.gen_range(0..6u32) {
                    0 => BucketOrder::trivial(self.n),
                    1 => random_permutation(rng, self.n),
                    _ => random_keys_order(rng, self.n, self.levels),
                })
                .collect(),
        }
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Drop one voter at a time (dropping never changes any
        // remaining voter's class).
        if v.len() > *self.voters.start() {
            for i in 0..v.len() {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Coordinated element removal keeps the domains equal and
        // preserves all-tied and full classes on every voter.
        let refs: Vec<&BucketOrder> = v.iter().collect();
        out.extend(all_removals_coordinated(&refs));
        // Merges only on unconstrained voters: a full voter would
        // leave its class, an all-tied voter has nothing to merge.
        for (i, voter) in v.iter().enumerate() {
            if voter.is_full() {
                continue;
            }
            for b in 0..voter.num_buckets().saturating_sub(1) {
                let mut copy = v.clone();
                copy[i] = merge_adjacent(voter, b);
                out.push(copy);
            }
        }
        out
    }
}

/// A class-labeled profile: a [`profile_with_degenerates`] profile
/// paired with per-candidate class labels (`labels[e]` for element
/// `e`, always `labels.len() == domain size`), for property-testing
/// class-constrained aggregation. Heavy weight on the degenerate
/// labelings constraint code must get right: a **single class**
/// covering every candidate (any prefix-window rule is then a pure
/// cardinality check), **one candidate per class** (every rule pins
/// individual candidates), and **sparse non-contiguous class ids**
/// (classes a rule set may leave unconstrained, and a trap for code
/// assuming labels are dense `0..k`).
///
/// Shrinking preserves the profile's voter classes exactly as
/// [`profile_with_degenerates`] does **and** the labeling's class:
/// voter drop leaves labels untouched, element removal coordinates
/// across every voter *and* the label vector (single-class stays
/// single-class, one-candidate-per-class stays distinct), bucket
/// merges leave labels alone, and a relabel-to-dense move
/// canonicalizes sparse ids without ever merging two classes.
pub fn classed_profile_with_degenerates(
    voters: RangeInclusive<usize>,
    n: usize,
    levels: u8,
) -> ClassedProfileGen {
    ClassedProfileGen {
        profile: profile_with_degenerates(voters, n, levels),
    }
}

/// See [`classed_profile_with_degenerates`].
pub struct ClassedProfileGen {
    profile: ProfileWithDegeneratesGen,
}

impl Gen for ClassedProfileGen {
    type Value = (Vec<BucketOrder>, Vec<u32>);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        let profile = self.profile.generate(rng);
        // The profile generator may pick a degenerate domain (e.g. the
        // singleton class), so the label length follows the profile,
        // not the requested `n`.
        let n = profile[0].len();
        let labels = match rng.gen_range(0..6u32) {
            // Single class covering every candidate.
            0 => vec![rng.gen_range(0..4u32); n],
            // One candidate per class, in shuffled order.
            1 => {
                let mut l: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..=i);
                    l.swap(i, j);
                }
                l
            }
            // Sparse non-contiguous ids drawn from {2, 9, 16}.
            2 => (0..n).map(|_| 7 * rng.gen_range(0..3u32) + 2).collect(),
            // Generic: a few dense classes.
            _ => {
                let k = rng.gen_range(1..=4u32.min(n as u32));
                (0..n).map(|_| rng.gen_range(0..k)).collect()
            }
        };
        (profile, labels)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (profile, labels) = v;
        let mut out = Vec::new();
        // Voter drop never touches the labeling.
        if profile.len() > *self.profile.voters.start() {
            for i in 0..profile.len() {
                let mut smaller = profile.clone();
                smaller.remove(i);
                out.push((smaller, labels.clone()));
            }
        }
        // Element removal drops the same element's label, so a
        // single-class labeling stays single-class and a
        // one-candidate-per-class labeling stays pairwise distinct.
        let refs: Vec<&BucketOrder> = profile.iter().collect();
        for (e, smaller) in all_removals_coordinated(&refs).into_iter().enumerate() {
            let mut l = labels.clone();
            l.remove(e);
            out.push((smaller, l));
        }
        // Merges only on unconstrained voters, as on the unlabeled
        // profile generator.
        for (i, voter) in profile.iter().enumerate() {
            if voter.is_full() {
                continue;
            }
            for b in 0..voter.num_buckets().saturating_sub(1) {
                let mut copy = profile.clone();
                copy[i] = merge_adjacent(voter, b);
                out.push((copy, labels.clone()));
            }
        }
        // Relabel to dense 0..k: order-preserving on class ids, so no
        // two classes ever merge and the class structure is unchanged.
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let dense: Vec<u32> = labels
            .iter()
            .map(|l| uniq.binary_search(l).expect("label is in uniq") as u32)
            .collect();
        if dense != *labels {
            out.push((profile.clone(), dense));
        }
        out
    }
}

/// One step of a streaming-profile edit script; see
/// [`edit_script_with_degenerates`]. The driver resolves the index of
/// `Remove` / `Replace` against its current live-voter list as
/// `live[i % live.len()]`, and when the list is empty the op instead
/// exercises the engine's typed unknown-voter error path — scripts
/// include that case on purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Push a new voter with this ranking.
    Push(BucketOrder),
    /// Remove the live voter at this wrapped index.
    Remove(usize),
    /// Replace the live voter at this wrapped index with this ranking.
    Replace(usize, BucketOrder),
}

/// A random insert/remove/replace edit script over one shared
/// `n`-element domain, for differential testing of incremental
/// engines against from-scratch rebuilds. Script length is guided by
/// `ops`; every script contains at least one `Push` (drivers read the
/// domain size off the first pushed ranking). Heavy weight on the
/// degenerate trajectories dynamic maintenance must get right:
/// edits against an **empty** profile (typed-error path), a
/// **single voter** churned in place by replaces, a profile drained to
/// **all voters removed** and refilled, and **duplicate voters**
/// (identical rankings pushed repeatedly, where a removal must retract
/// exactly one copy). Individual rankings carry the usual mix of
/// all-tied, full, and generic orders.
///
/// Shrinking **preserves the script's class**: dropping one op (never
/// the last `Push`), element removal coordinated across *every*
/// embedded ranking (domains stay equal, duplicates stay identical),
/// coarsening one distinct ranking *value* applied to all ops carrying
/// it (duplicates stay identical), and stepping target indices toward
/// zero.
pub fn edit_script_with_degenerates(
    ops: RangeInclusive<usize>,
    n: usize,
    levels: u8,
) -> EditScriptGen {
    assert!(*ops.start() >= 1 && n >= 1 && levels >= 1);
    EditScriptGen { ops, n, levels }
}

/// See [`edit_script_with_degenerates`].
pub struct EditScriptGen {
    ops: RangeInclusive<usize>,
    n: usize,
    levels: u8,
}

impl EditScriptGen {
    fn rand_ranking(&self, rng: &mut Pcg32) -> BucketOrder {
        match rng.gen_range(0..6u32) {
            0 => BucketOrder::trivial(self.n),
            1 => random_permutation(rng, self.n),
            _ => random_keys_order(rng, self.n, self.levels),
        }
    }
}

impl Gen for EditScriptGen {
    type Value = Vec<EditOp>;

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        let len = rng.gen_range(self.ops.clone());
        let mut script: Vec<EditOp> = Vec::new();
        match rng.gen_range(0..10u32) {
            // Empty-profile class: edits against an engine with no
            // voters first — the typed-error path — then a push so the
            // script grows state.
            0 => {
                script.push(EditOp::Remove(rng.gen_range(0..4)));
                script.push(EditOp::Push(self.rand_ranking(rng)));
            }
            // Single-voter class: one voter, churned in place.
            1 => {
                script.push(EditOp::Push(self.rand_ranking(rng)));
                for _ in 0..len {
                    script.push(EditOp::Replace(0, self.rand_ranking(rng)));
                }
            }
            // All-voters-removed class: fill, drain completely, remove
            // once more (typed error on empty), then repopulate.
            2 => {
                let k = rng.gen_range(1..=len.min(4));
                for _ in 0..k {
                    script.push(EditOp::Push(self.rand_ranking(rng)));
                }
                for _ in 0..k {
                    script.push(EditOp::Remove(rng.gen_range(0..4)));
                }
                script.push(EditOp::Remove(0));
                script.push(EditOp::Push(self.rand_ranking(rng)));
            }
            // Duplicate-voter class: identical rankings pushed
            // repeatedly — a removal must retract exactly one copy.
            3 => {
                let r = self.rand_ranking(rng);
                for _ in 0..rng.gen_range(2..=4u32) {
                    script.push(EditOp::Push(r.clone()));
                }
            }
            _ => {}
        }
        // Generic tail up to the drawn length, seeded with a push when
        // the class produced none.
        if script.is_empty() {
            script.push(EditOp::Push(self.rand_ranking(rng)));
        }
        while script.len() < len {
            script.push(match rng.gen_range(0..10u32) {
                0..=4 => EditOp::Push(self.rand_ranking(rng)),
                5..=7 => EditOp::Remove(rng.gen_range(0..8)),
                _ => EditOp::Replace(rng.gen_range(0..8), self.rand_ranking(rng)),
            });
        }
        script
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Drop one op at a time, keeping at least one push.
        let pushes = v
            .iter()
            .filter(|op| matches!(op, EditOp::Push(_)))
            .count();
        for i in 0..v.len() {
            if matches!(v[i], EditOp::Push(_)) && pushes <= 1 {
                continue;
            }
            let mut smaller = v.clone();
            smaller.remove(i);
            out.push(smaller);
        }
        // Coordinated element removal across every embedded ranking:
        // domains stay equal and duplicate rankings stay identical
        // (removal is deterministic). The current domain size is read
        // off the script itself — earlier shrinks may already have
        // reduced it below the generator's `n`.
        let n_cur = v.iter().find_map(|op| match op {
            EditOp::Push(r) | EditOp::Replace(_, r) => Some(r.len()),
            EditOp::Remove(_) => None,
        });
        if let Some(nc) = n_cur {
            if nc > 1 {
                for e in 0..nc as u32 {
                    out.push(
                        v.iter()
                            .map(|op| match op {
                                EditOp::Push(r) => EditOp::Push(remove_element(r, e)),
                                EditOp::Remove(i) => EditOp::Remove(*i),
                                EditOp::Replace(i, r) => {
                                    EditOp::Replace(*i, remove_element(r, e))
                                }
                            })
                            .collect(),
                    );
                }
            }
        }
        // Coarsen one distinct ranking VALUE, applied to every op that
        // carries it, so duplicate pushes stay identical (the
        // duplicate-voter class survives shrinking). Full rankings are
        // left alone, mirroring the class-preserving merge policy of
        // the other generators.
        let mut seen: Vec<&BucketOrder> = Vec::new();
        for op in v {
            let r = match op {
                EditOp::Push(r) | EditOp::Replace(_, r) => r,
                EditOp::Remove(_) => continue,
            };
            if seen.contains(&r) {
                continue;
            }
            seen.push(r);
            if r.is_full() {
                continue;
            }
            for b in 0..r.num_buckets().saturating_sub(1) {
                let merged = merge_adjacent(r, b);
                out.push(
                    v.iter()
                        .map(|op| match op {
                            EditOp::Push(x) if x == r => EditOp::Push(merged.clone()),
                            EditOp::Replace(i, x) if x == r => {
                                EditOp::Replace(*i, merged.clone())
                            }
                            other => other.clone(),
                        })
                        .collect(),
                );
            }
        }
        // Step target indices toward zero.
        for i in 0..v.len() {
            let stepped = match &v[i] {
                EditOp::Remove(k) if *k > 0 => Some(EditOp::Remove(k / 2)),
                EditOp::Replace(k, r) if *k > 0 => Some(EditOp::Replace(k / 2, r.clone())),
                _ => None,
            };
            if let Some(op) = stepped {
                let mut copy = v.clone();
                copy[i] = op;
                out.push(copy);
            }
        }
        out
    }
}

/// A triple of independent bucket orders over the same domain, with
/// the same coordinated shrinking as [`order_pair`].
pub fn order_triple(n: usize, levels: u8) -> OrderTripleGen {
    assert!(n >= 1 && levels >= 1);
    OrderTripleGen { n, levels }
}

/// See [`order_triple`].
pub struct OrderTripleGen {
    n: usize,
    levels: u8,
}

impl Gen for OrderTripleGen {
    type Value = (BucketOrder, BucketOrder, BucketOrder);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (
            random_keys_order(rng, self.n, self.levels),
            random_keys_order(rng, self.n, self.levels),
            random_keys_order(rng, self.n, self.levels),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c) = v;
        let mut out: Vec<Self::Value> = all_removals_coordinated(&[a, b, c])
            .into_iter()
            .map(|mut t| {
                let third = t.pop().expect("three orders");
                let second = t.pop().expect("three orders");
                let first = t.pop().expect("three orders");
                (first, second, third)
            })
            .collect();
        for i in 0..a.num_buckets().saturating_sub(1) {
            out.push((merge_adjacent(a, i), b.clone(), c.clone()));
        }
        for i in 0..b.num_buckets().saturating_sub(1) {
            out.push((a.clone(), merge_adjacent(b, i), c.clone()));
        }
        for i in 0..c.num_buckets().saturating_sub(1) {
            out.push((a.clone(), b.clone(), merge_adjacent(c, i)));
        }
        out
    }
}

/// A uniform full ranking (permutation) of `n` elements. Shrinks by
/// element removal only — merges would introduce ties and leave the
/// generator's support.
pub fn full_ranking(n: usize) -> FullRankingGen {
    assert!(n >= 1);
    FullRankingGen { n }
}

/// See [`full_ranking`].
pub struct FullRankingGen {
    n: usize,
}

impl Gen for FullRankingGen {
    type Value = BucketOrder;

    fn generate(&self, rng: &mut Pcg32) -> BucketOrder {
        random_permutation(rng, self.n)
    }

    fn shrink(&self, v: &BucketOrder) -> Vec<BucketOrder> {
        if v.len() <= 1 {
            return Vec::new();
        }
        (0..v.len() as u32).map(|e| remove_element(v, e)).collect()
    }
}

/// A pair of independent full rankings over the same domain, with
/// coordinated element-removal shrinking (no merges: both sides must
/// stay full).
pub fn full_pair(n: usize) -> FullPairGen {
    assert!(n >= 1);
    FullPairGen { n }
}

/// See [`full_pair`].
pub struct FullPairGen {
    n: usize,
}

impl Gen for FullPairGen {
    type Value = (BucketOrder, BucketOrder);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        (
            random_permutation(rng, self.n),
            random_permutation(rng, self.n),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (a, b) = v;
        all_removals_coordinated(&[a, b])
            .into_iter()
            .map(|mut pair| {
                let second = pair.pop().expect("two orders");
                let first = pair.pop().expect("two orders");
                (first, second)
            })
            .collect()
    }
}

/// Number of full refinements of `o`: the product of the factorials
/// of its bucket sizes (saturating).
pub fn refinement_count(o: &BucketOrder) -> u128 {
    let mut total: u128 = 1;
    for b in o.buckets() {
        for k in 2..=b.len() as u128 {
            total = total.saturating_mul(k);
        }
    }
    total
}

/// A pair of bucket orders on `n ≤ n_max` elements whose refinement
/// sets are small enough for brute-force Hausdorff enumeration:
/// `refinement_count(a) · refinement_count(b) ≤ cap`. Rejection-samples
/// (shrinking `levels` pressure upward, i.e. more buckets → fewer
/// refinements) until the budget holds, so generation always
/// terminates. Shrinks like [`order_pair`] — both moves shrink the
/// enumeration budget, never grow it past the cap... merges *grow*
/// refinement counts, so merge candidates violating `cap` are
/// filtered out.
pub fn bounded_refinement_pair(n: usize, levels: u8, cap: u128) -> BoundedRefinementPairGen {
    assert!(n >= 1 && levels >= 1 && cap >= 1);
    BoundedRefinementPairGen { n, levels, cap }
}

/// See [`bounded_refinement_pair`].
pub struct BoundedRefinementPairGen {
    n: usize,
    levels: u8,
    cap: u128,
}

impl BoundedRefinementPairGen {
    fn within_cap(&self, a: &BucketOrder, b: &BucketOrder) -> bool {
        refinement_count(a).saturating_mul(refinement_count(b)) <= self.cap
    }
}

impl Gen for BoundedRefinementPairGen {
    type Value = (BucketOrder, BucketOrder);

    fn generate(&self, rng: &mut Pcg32) -> Self::Value {
        // More levels ⇒ smaller buckets ⇒ fewer refinements, so push
        // the level count up if rejection keeps failing. With levels
        // ≥ n every order is full (1 refinement), so this terminates.
        let mut levels = self.levels;
        loop {
            for _ in 0..32 {
                let a = random_keys_order(rng, self.n, levels);
                let b = random_keys_order(rng, self.n, levels);
                if self.within_cap(&a, &b) {
                    return (a, b);
                }
            }
            levels = levels.saturating_add(1);
        }
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (a, b) = v;
        let mut out: Vec<Self::Value> = all_removals_coordinated(&[a, b])
            .into_iter()
            .map(|mut pair| {
                let second = pair.pop().expect("two orders");
                let first = pair.pop().expect("two orders");
                (first, second)
            })
            .collect();
        for i in 0..a.num_buckets().saturating_sub(1) {
            out.push((merge_adjacent(a, i), b.clone()));
        }
        for i in 0..b.num_buckets().saturating_sub(1) {
            out.push((a.clone(), merge_adjacent(b, i)));
        }
        out.retain(|(x, y)| self.within_cap(x, y));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn bucket_order_gen_is_valid_and_bounded() {
        let g = bucket_order(10, 4);
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..200 {
            let o = g.generate(&mut rng);
            assert_eq!(o.len(), 10);
            assert!(o.num_buckets() <= 4);
        }
    }

    #[test]
    fn full_ranking_gen_is_full() {
        let g = full_ranking(8);
        let mut rng = Pcg32::seed_from_u64(2);
        for _ in 0..100 {
            assert!(g.generate(&mut rng).is_full());
        }
    }

    #[test]
    fn shrinks_stay_in_support() {
        let g = full_pair(6);
        let mut rng = Pcg32::seed_from_u64(3);
        let v = g.generate(&mut rng);
        for (a, b) in g.shrink(&v) {
            assert!(a.is_full() && b.is_full());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), 5);
        }
    }

    #[test]
    fn order_pair_shrinks_are_coordinated() {
        let g = order_pair(7, 3);
        let mut rng = Pcg32::seed_from_u64(4);
        let v = g.generate(&mut rng);
        for (a, b) in g.shrink(&v) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn merge_adjacent_coarsens() {
        let o = BucketOrder::from_buckets(4, vec![vec![0], vec![1, 2], vec![3]]).unwrap();
        let m = merge_adjacent(&o, 1);
        assert_eq!(m.num_buckets(), 2);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn remove_element_relabels() {
        let o = BucketOrder::from_buckets(4, vec![vec![2], vec![0, 3], vec![1]]).unwrap();
        let r = remove_element(&o, 0);
        assert_eq!(r.len(), 3);
        // Old 2 → new 1, old 3 → new 2, old 1 → new 0.
        assert_eq!(r.buckets(), &[vec![1], vec![2], vec![0]]);
    }

    #[test]
    fn bounded_refinement_pair_respects_cap() {
        let g = bounded_refinement_pair(9, 2, 20_000);
        let mut rng = Pcg32::seed_from_u64(5);
        for _ in 0..50 {
            let (a, b) = g.generate(&mut rng);
            assert!(refinement_count(&a) * refinement_count(&b) <= 20_000);
        }
    }

    #[test]
    fn vec_of_shrink_removes_and_shrinks_elements() {
        let g = vec_of(u32_in(0..=100), 1..=5);
        let v = vec![10u32, 90];
        let shrinks = g.shrink(&v);
        assert!(shrinks.iter().any(|s| s.len() == 1));
        assert!(shrinks.iter().any(|s| s.len() == 2 && s[1] < 90));
    }

    #[test]
    fn refinement_count_is_product_of_factorials() {
        let o = BucketOrder::from_buckets(5, vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert_eq!(refinement_count(&o), 12);
    }

    #[test]
    fn degenerate_pair_gen_hits_every_class() {
        let g = order_pair_with_degenerates(8, 3);
        let mut rng = Pcg32::seed_from_u64(6);
        let (mut singleton, mut both_tied, mut one_tied, mut both_full, mut generic) =
            (0, 0, 0, 0, 0);
        for _ in 0..400 {
            let (a, b) = g.generate(&mut rng);
            assert_eq!(a.len(), b.len());
            if a.len() == 1 {
                singleton += 1;
            } else if a.num_buckets() == 1 && b.num_buckets() == 1 {
                both_tied += 1;
            } else if a.num_buckets() == 1 || b.num_buckets() == 1 {
                one_tied += 1;
            } else if a.is_full() && b.is_full() {
                both_full += 1;
            } else {
                generic += 1;
            }
        }
        assert!(
            singleton > 0 && both_tied > 0 && one_tied > 0 && both_full > 0 && generic > 0,
            "classes: {singleton} {both_tied} {one_tied} {both_full} {generic}"
        );
    }

    #[test]
    fn degenerate_pair_shrinks_preserve_class() {
        let g = order_pair_with_degenerates(6, 3);
        // All-tied × generic: the trivial side must stay one bucket.
        let v = (
            BucketOrder::trivial(6),
            BucketOrder::from_keys(&[2, 1, 3, 1, 2, 3]),
        );
        for (a, b) in g.shrink(&v) {
            assert_eq!(a.len(), b.len());
            assert_eq!(a.num_buckets(), 1, "all-tied side left its class");
        }
        // Full × full: both sides must stay full (no merge candidates).
        let v = (
            BucketOrder::from_permutation(&[2, 0, 1, 3]).unwrap(),
            BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap(),
        );
        let shrinks = g.shrink(&v);
        assert!(!shrinks.is_empty());
        for (a, b) in shrinks {
            assert!(a.is_full() && b.is_full(), "full side left its class");
        }
    }

    #[test]
    fn weights_gen_hits_every_class() {
        let g = weights_with_degenerates(8);
        let mut rng = Pcg32::seed_from_u64(9);
        let (mut uniform, mut decay, mut step, mut spike, mut generic) = (0, 0, 0, 0, 0);
        for _ in 0..400 {
            let w = g.generate(&mut rng);
            assert_eq!(w.len(), 8);
            let nonzero = w.iter().filter(|&&x| x != 0).count();
            let nonincreasing = w.windows(2).all(|p| p[0] >= p[1]);
            if w.windows(2).all(|p| p[0] == p[1]) {
                uniform += 1;
            } else if nonzero == 1 {
                spike += 1;
            } else if nonincreasing && w.iter().filter(|&&x| x != 0).all(|&x| x == w[0]) {
                step += 1;
            } else if nonincreasing {
                decay += 1;
            } else {
                generic += 1;
            }
        }
        assert!(
            uniform > 0 && decay > 0 && step > 0 && spike > 0 && generic > 0,
            "classes: {uniform} {decay} {step} {spike} {generic}"
        );
    }

    #[test]
    fn weights_shrinks_preserve_class() {
        let g = weights_with_degenerates(5);
        // Uniform stays uniform (no zero-last candidate).
        for s in g.shrink(&vec![8, 8, 8, 8, 8]) {
            assert!(s.windows(2).all(|p| p[0] == p[1]), "uniform left its class: {s:?}");
        }
        // A spike stays a spike — its single nonzero entry only halves.
        for s in g.shrink(&vec![0, 0, 16, 0, 0]) {
            assert_eq!(s.iter().filter(|&&x| x != 0).count(), 1, "spike emptied: {s:?}");
            assert_ne!(s[2], 0);
        }
        // A step stays a step: constant prefix, zero tail.
        for s in g.shrink(&vec![4, 4, 4, 0, 0]) {
            let k = s.iter().filter(|&&x| x != 0).count();
            assert!(s[..k].iter().all(|&x| x == s[0]) && s[k..].iter().all(|&x| x == 0));
        }
        // Nonincreasing (decay) vectors stay nonincreasing.
        for s in g.shrink(&vec![16, 8, 4, 2, 1]) {
            assert!(s.windows(2).all(|p| p[0] >= p[1]), "decay left its class: {s:?}");
        }
        // Every chain terminates: halving and zeroing strictly reduce.
        let mut cur = vec![1 << 19, 1 << 18, 7, 0, 3];
        let mut steps = 0;
        while let Some(next) = g.shrink(&cur).into_iter().next() {
            assert!(next.iter().sum::<u64>() < cur.iter().sum::<u64>());
            cur = next;
            steps += 1;
            assert!(steps < 200, "shrink chain did not terminate");
        }
    }

    #[test]
    fn profile_gen_hits_every_class_on_shared_domains() {
        let g = profile_with_degenerates(2..=5, 7, 3);
        let mut rng = Pcg32::seed_from_u64(7);
        let (mut singleton, mut all_tied, mut unanimous_full, mut mixed) = (0, 0, 0, 0);
        for _ in 0..400 {
            let profile = g.generate(&mut rng);
            assert!((2..=5).contains(&profile.len()));
            let n = profile[0].len();
            assert!(profile.iter().all(|v| v.len() == n), "domains must match");
            if n == 1 {
                singleton += 1;
            } else if profile.iter().all(|v| v.num_buckets() == 1) {
                all_tied += 1;
            } else if profile.iter().all(|v| v.is_full()) && profile.windows(2).all(|w| w[0] == w[1])
            {
                unanimous_full += 1;
            } else {
                mixed += 1;
            }
        }
        assert!(
            singleton > 0 && all_tied > 0 && unanimous_full > 0 && mixed > 0,
            "classes: {singleton} {all_tied} {unanimous_full} {mixed}"
        );
    }

    #[test]
    fn profile_shrinks_preserve_voter_classes_and_domains() {
        let g = profile_with_degenerates(2..=6, 6, 3);
        let v = vec![
            BucketOrder::trivial(6),
            BucketOrder::from_permutation(&[5, 0, 3, 1, 4, 2]).unwrap(),
            BucketOrder::from_keys(&[2, 1, 3, 1, 2, 3]),
        ];
        let shrinks = g.shrink(&v);
        assert!(!shrinks.is_empty());
        for s in shrinks {
            assert!(s.len() >= 2, "voter floor violated");
            let n = s[0].len();
            assert!(s.iter().all(|x| x.len() == n), "domains must stay equal");
            // Class preservation applies to surviving voters: whenever
            // the all-tied or full voter is still present (voter
            // removal keeps order), it must still be in its class.
            if s.len() == 3 {
                assert_eq!(s[0].num_buckets(), 1, "all-tied voter left its class");
                assert!(s[1].is_full(), "full voter left its class");
            }
        }
    }

    #[test]
    fn classed_profile_covers_degenerate_labelings() {
        let g = classed_profile_with_degenerates(2..=5, 6, 3);
        let mut rng = Pcg32::seed_from_u64(11);
        let (mut single, mut per_candidate, mut sparse, mut generic) = (0, 0, 0, 0);
        for _ in 0..400 {
            let (profile, labels) = g.generate(&mut rng);
            assert_eq!(labels.len(), profile[0].len(), "labels must cover the domain");
            assert!(profile.iter().all(|v| v.len() == labels.len()));
            let mut uniq = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            if uniq.len() == 1 {
                single += 1;
            } else if uniq.len() == labels.len() {
                per_candidate += 1;
            } else if uniq.iter().any(|&c| c as usize >= labels.len()) {
                sparse += 1;
            } else {
                generic += 1;
            }
        }
        assert!(
            single > 0 && per_candidate > 0 && sparse > 0 && generic > 0,
            "classes: {single} {per_candidate} {sparse} {generic}"
        );
    }

    #[test]
    fn classed_profile_shrinks_preserve_label_classes() {
        let g = classed_profile_with_degenerates(2..=6, 5, 3);
        let profile = vec![
            BucketOrder::trivial(5),
            BucketOrder::from_keys(&[2, 1, 3, 1, 2]),
        ];
        // Single-class labeling: every shrink stays single-class, and
        // labels always track the (possibly smaller) domain.
        for (p, l) in g.shrink(&(profile.clone(), vec![3; 5])) {
            assert_eq!(l.len(), p[0].len());
            assert!(p.iter().all(|v| v.len() == l.len()));
            let first = l[0];
            assert!(l.iter().all(|&x| x == first), "single-class split: {l:?}");
        }
        // One-candidate-per-class: labels stay pairwise distinct.
        for (p, l) in g.shrink(&(profile.clone(), vec![4, 0, 3, 1, 2])) {
            assert_eq!(l.len(), p[0].len());
            let mut uniq = l.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), l.len(), "classes merged: {l:?}");
        }
        // Sparse ids offer the dense relabeling, which keeps the same
        // number of classes.
        let sparse = vec![9u32, 2, 9, 16, 2];
        let shrinks = g.shrink(&(profile, sparse.clone()));
        let relabeled = shrinks
            .iter()
            .find(|(_, l)| l.len() == 5 && l.iter().max() < sparse.iter().max())
            .expect("dense relabeling proposed");
        assert_eq!(relabeled.1, vec![1, 0, 1, 2, 0]);
    }

    /// Simulates an edit script's live-voter count, reporting the
    /// degenerate trajectories it exercises.
    fn script_trajectory(script: &[EditOp]) -> (bool, bool, bool) {
        let (mut live, mut peak) = (0usize, 0usize);
        let (mut hits_empty_edit, mut drains_after_life) = (false, false);
        for op in script {
            match op {
                EditOp::Push(_) => live += 1,
                EditOp::Remove(_) => {
                    if live == 0 {
                        hits_empty_edit = true;
                    } else {
                        live -= 1;
                        if live == 0 && peak > 0 {
                            drains_after_life = true;
                        }
                    }
                }
                EditOp::Replace(_, _) => {
                    if live == 0 {
                        hits_empty_edit = true;
                    }
                }
            }
            peak = peak.max(live);
        }
        let has_duplicate_push = script.iter().enumerate().any(|(i, op)| match op {
            EditOp::Push(r) => script[..i].iter().any(|p| p == &EditOp::Push(r.clone())),
            _ => false,
        });
        (hits_empty_edit, drains_after_life, has_duplicate_push)
    }

    #[test]
    fn edit_script_gen_hits_every_class() {
        let g = edit_script_with_degenerates(3..=10, 6, 3);
        let mut rng = Pcg32::seed_from_u64(8);
        let (mut empty_edit, mut drained, mut duplicates, mut single_churn) = (0, 0, 0, 0);
        for _ in 0..400 {
            let script = g.generate(&mut rng);
            assert!(
                script.iter().any(|op| matches!(op, EditOp::Push(_))),
                "every script must push at least once"
            );
            for op in &script {
                if let EditOp::Push(r) | EditOp::Replace(_, r) = op {
                    assert_eq!(r.len(), 6, "rankings must share the domain");
                }
            }
            let (e, d, dup) = script_trajectory(&script);
            empty_edit += e as u32;
            drained += d as u32;
            duplicates += dup as u32;
            let pushes = script
                .iter()
                .filter(|op| matches!(op, EditOp::Push(_)))
                .count();
            let replaces = script
                .iter()
                .filter(|op| matches!(op, EditOp::Replace(_, _)))
                .count();
            single_churn += (pushes == 1 && replaces >= 2) as u32;
        }
        assert!(
            empty_edit > 0 && drained > 0 && duplicates > 0 && single_churn > 0,
            "classes: {empty_edit} {drained} {duplicates} {single_churn}"
        );
    }

    #[test]
    fn edit_script_shrinks_stay_in_support() {
        let g = edit_script_with_degenerates(3..=10, 5, 3);
        let dup = BucketOrder::from_keys(&[2, 1, 3, 1, 2]);
        let v = vec![
            EditOp::Push(dup.clone()),
            EditOp::Push(dup.clone()),
            EditOp::Remove(5),
            EditOp::Replace(3, BucketOrder::from_keys(&[1, 2, 2, 1, 3])),
        ];
        let distinct = |s: &[EditOp]| {
            let mut vals: Vec<&BucketOrder> = Vec::new();
            for op in s {
                if let EditOp::Push(r) | EditOp::Replace(_, r) = op {
                    if !vals.contains(&r) {
                        vals.push(r);
                    }
                }
            }
            vals.len()
        };
        let shrinks = g.shrink(&v);
        assert!(!shrinks.is_empty());
        for s in &shrinks {
            assert!(
                s.iter().any(|op| matches!(op, EditOp::Push(_))),
                "shrinking must keep at least one push"
            );
            let mut domain = None;
            for op in s {
                if let EditOp::Push(r) | EditOp::Replace(_, r) = op {
                    assert_eq!(*domain.get_or_insert(r.len()), r.len());
                }
            }
            // Class preservation: coordinated removals and value-wide
            // merges never split a duplicate pair into distinct values.
            assert!(distinct(s) <= distinct(&v), "duplicate pushes diverged");
        }
        // A lone push never disappears.
        let lone = vec![EditOp::Push(dup), EditOp::Remove(0)];
        for s in g.shrink(&lone) {
            assert!(s.iter().any(|op| matches!(op, EditOp::Push(_))));
        }
    }

    #[test]
    #[should_panic]
    fn edit_script_gen_rejects_empty_op_range() {
        let _ = edit_script_with_degenerates(0..=4, 5, 3);
    }

    #[test]
    #[should_panic]
    fn profile_gen_rejects_empty_voter_range() {
        let _ = profile_with_degenerates(0..=3, 5, 3);
    }

    #[test]
    #[should_panic]
    fn bucket_order_rejects_empty_domain() {
        let _ = bucket_order(0, 3);
    }

    #[test]
    #[should_panic]
    fn order_pair_rejects_empty_domain() {
        let _ = order_pair(0, 3);
    }

    #[test]
    #[should_panic]
    fn degenerate_pair_rejects_empty_domain() {
        let _ = order_pair_with_degenerates(0, 3);
    }

    #[test]
    #[should_panic]
    fn weights_gen_rejects_empty_domain() {
        weights_with_degenerates(0);
    }

    #[test]
    #[should_panic]
    fn full_ranking_rejects_empty_domain() {
        let _ = full_ranking(0);
    }
}
