//! A minimal deterministic property-test runner.
//!
//! [`check`] draws `cases` values from a [`Gen`], runs the property
//! (which signals failure by panicking — plain `assert!` works), and
//! on failure greedily shrinks the counterexample with the generator's
//! own shrink moves before reporting.
//!
//! Reproduction contract: every run of the same property with the same
//! seed generates the same cases. The failure report prints the seed
//! and the exact `BUCKETRANK_PT_SEED=<seed>` incantation, so a CI
//! failure can be replayed locally verbatim.
//!
//! Environment overrides:
//!
//! * `BUCKETRANK_PT_SEED`  — base seed (decimal or `0x…` hex).
//! * `BUCKETRANK_PT_CASES` — cases per property (default 128, min 64).

use crate::gen::Gen;
use crate::rng::{splitmix64_mix, Pcg32, SeedableRng};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Default base seed when `BUCKETRANK_PT_SEED` is unset. Frozen: CI
/// logs reference case indices under this seed.
pub const DEFAULT_SEED: u64 = 0xB0C4_E7DA_2004_0601;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 128;

/// Runner configuration; usually built by [`Config::from_env`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; combined with the property name per case.
    pub seed: u64,
    /// Cap on shrink candidate evaluations after a failure.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_steps: 4096,
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl Config {
    /// Configuration from the environment (see module docs).
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(s) = std::env::var("BUCKETRANK_PT_SEED") {
            match parse_u64(&s) {
                Some(seed) => cfg.seed = seed,
                None => panic!("BUCKETRANK_PT_SEED must be a u64, got {s:?}"),
            }
        }
        if let Ok(s) = std::env::var("BUCKETRANK_PT_CASES") {
            match s.trim().parse::<usize>() {
                // ≥ 64 cases per property is part of the testing
                // policy; the env var can raise but not gut coverage.
                Ok(c) => cfg.cases = c.max(64),
                Err(_) => panic!("BUCKETRANK_PT_CASES must be a usize, got {s:?}"),
            }
        }
        cfg
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The RNG for case `index` of property `name` under `seed`. Public
/// so a single case can be replayed in isolation while debugging.
pub fn case_rng(seed: u64, name: &str, index: usize) -> Pcg32 {
    let base = seed ^ fnv1a(name);
    Pcg32::seed_from_u64(splitmix64_mix(
        base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    ))
}

// Panic capture: property failures are ordinary panics, which we
// intercept to (a) silence the noise of shrink-candidate evaluations
// and (b) extract the assertion message for the final report. The
// hook is installed once, process-wide, and delegates to the previous
// hook unless the current thread is inside a `check` evaluation.
thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

fn install_capture_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(|c| c.get()) {
                let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                let at = info
                    .location()
                    .map(|l| format!(" [{}:{}]", l.file(), l.line()))
                    .unwrap_or_default();
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(format!("{msg}{at}")));
            } else {
                prev(info);
            }
        }));
    });
}

/// Run `prop` silently, returning the panic message if it failed.
fn probe<V, F: Fn(&V)>(prop: &F, value: &V) -> Option<String> {
    CAPTURING.with(|c| c.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(value)));
    CAPTURING.with(|c| c.set(false));
    match outcome {
        Ok(()) => None,
        Err(_) => Some(
            LAST_PANIC
                .with(|p| p.borrow_mut().take())
                .unwrap_or_else(|| "<panic>".to_string()),
        ),
    }
}

/// Check `prop` against [`Config::from_env`]-many cases from `gen`.
///
/// The property signals failure by panicking; `assert!`-family macros
/// are the expected style. On failure the counterexample is shrunk
/// and the runner panics with the property name, case index, seed,
/// shrunk input, and a reproduction command.
pub fn check<G: Gen, F: Fn(&G::Value)>(name: &str, gen: G, prop: F) {
    check_with(&Config::from_env(), name, gen, prop)
}

/// [`check`] with an explicit configuration.
pub fn check_with<G: Gen, F: Fn(&G::Value)>(cfg: &Config, name: &str, gen: G, prop: F) {
    install_capture_hook();
    for index in 0..cfg.cases {
        let mut rng = case_rng(cfg.seed, name, index);
        let value = gen.generate(&mut rng);
        let Some(first_failure) = probe(&prop, &value) else {
            continue;
        };

        // Greedy shrink: take the first failing candidate, repeat.
        let mut cur = value;
        let mut failure = first_failure;
        let mut steps = 0usize;
        let mut shrunk = 0usize;
        'shrinking: while steps < cfg.max_shrink_steps {
            for cand in gen.shrink(&cur) {
                steps += 1;
                if let Some(msg) = probe(&prop, &cand) {
                    cur = cand;
                    failure = msg;
                    shrunk += 1;
                    continue 'shrinking;
                }
                if steps >= cfg.max_shrink_steps {
                    break;
                }
            }
            break;
        }

        panic!(
            "property `{name}` failed (case {index} of {cases}, seed {seed:#x})\n\
             counterexample ({shrunk} shrink steps): {cur:?}\n\
             failure: {failure}\n\
             reproduce with: BUCKETRANK_PT_SEED={seed:#x} cargo test -q {name}",
            cases = cfg.cases,
            seed = cfg.seed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_passes() {
        check_with(
            &Config::default(),
            "tautology",
            gen::usize_in(0..=100),
            |&x| assert!(x <= 100),
        );
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let cfg = Config {
            cases: 64,
            seed: 42,
            max_shrink_steps: 4096,
        };
        let res = std::panic::catch_unwind(|| {
            check_with(&cfg, "find_big", gen::usize_in(0..=1000), |&x| {
                assert!(x < 500, "too big: {x}")
            });
        });
        let msg = *res
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("find_big"), "{msg}");
        assert!(msg.contains("seed 0x2a"), "{msg}");
        assert!(msg.contains("BUCKETRANK_PT_SEED=0x2a"), "{msg}");
        // Halving from the first failing x ≥ 500 must land exactly on
        // the boundary 500.
        assert!(msg.contains("counterexample"), "{msg}");
        assert!(msg.contains(": 500"), "{msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        let g = gen::bucket_order(8, 3);
        let a: Vec<_> = (0..10).map(|i| g.generate(&mut case_rng(9, "p", i))).collect();
        let b: Vec<_> = (0..10).map(|i| g.generate(&mut case_rng(9, "p", i))).collect();
        assert_eq!(a, b);
        let c: Vec<_> = (0..10).map(|i| g.generate(&mut case_rng(10, "p", i))).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn shrinking_respects_generator_support() {
        // A property that always fails on pairs; the shrunk value must
        // still be a same-domain pair (the coordinated-removal shrink).
        let cfg = Config {
            cases: 1,
            seed: 7,
            max_shrink_steps: 4096,
        };
        let res = std::panic::catch_unwind(|| {
            check_with(&cfg, "always_fails", gen::order_pair(6, 3), |(a, b)| {
                assert_ne!(a.len(), b.len(), "forced failure")
            });
        });
        let msg = *res
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        // Fully shrunk: both sides collapse to the single-element order.
        assert!(msg.contains("forced failure"), "{msg}");
    }

    #[test]
    fn probe_does_not_leak_between_checks() {
        // After a failing probe inside a passed check, later panics
        // behave normally.
        install_capture_hook();
        let noisy = std::panic::catch_unwind(|| panic!("visible"));
        assert!(noisy.is_err());
    }
}
