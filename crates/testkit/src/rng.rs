//! Deterministic pseudo-random number generation with no external
//! dependencies.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a 64-bit state mixer. Trivially seedable, used to
//!   expand seeds and to derive per-case streams in the property runner.
//! * [`Pcg32`] — PCG XSH RR 64/32 (O'Neill 2014). The workhorse
//!   generator: small state, fast, and statistically solid for
//!   workload generation and property testing.
//!
//! The trait surface intentionally mirrors the subset of `rand` 0.8 the
//! repo used (`Rng::gen_range`, `Rng::gen`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `SliceRandom::shuffle`) so call sites
//! port mechanically. Streams are **stable across releases**: changing
//! the output sequence of these generators invalidates recorded
//! failure seeds, so treat the constants below as frozen.

use core::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit words plus derived conveniences.
///
/// Only [`Rng::next_u64`] is required. None of the provided methods
/// have a `Self: Sized` bound, so generic samplers can keep the
/// familiar `R: Rng + ?Sized` signature.
pub trait Rng {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits (high half of [`Rng::next_u64`]
    /// by default; generators with a native 32-bit step override this).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive, integer or
    /// float). Panics on empty ranges, like `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The finalizer of SplitMix64 (Steele, Lea & Flood 2014). Also used
/// standalone to mix seeds.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64: one 64-bit word of state, an additive constant, and a
/// mixing finalizer. Every seed gives a full-period 2^64 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64_mix(self.state)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// PCG XSH RR 64/32: 64-bit LCG state, 32-bit output via
/// xorshift-high + random rotation. Period 2^64 per stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// A generator with explicit initial state and stream selector
    /// (the standard `pcg32_srandom_r` initialization).
    pub fn new(state: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        old
    }

    /// One native 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng for Pcg32 {
    fn next_u64(&mut self) -> u64 {
        let lo = Pcg32::next_u32(self) as u64;
        let hi = Pcg32::next_u32(self) as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        Pcg32::next_u32(self)
    }
}

impl SeedableRng for Pcg32 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Pcg32::new(state, stream)
    }
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.gen_f64()
    }
}

/// A range usable with [`Rng::gen_range`].
///
/// Implemented for `Range<T>` and `RangeInclusive<T>` via one blanket
/// impl each over [`UniformSample`], so type inference flows from the
/// use site into the range literal exactly as it does with `rand`
/// (e.g. `stops * rng.gen_range(0..=60)` infers `i64` from `stops`).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types uniformly samplable from an interval.
pub trait UniformSample: Sized + Copy {
    /// Uniform in `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform in `[low, high]`.
    fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// Uniform in `[0, span)` by Lemire's widening-multiply rejection
/// method — unbiased and division-free on the hot path.
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_uniform_sample {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64_below(rng, span) as i128) as $t
            }

            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = high as i128 - low as i128 + 1;
                if span > u64::MAX as i128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_uniform_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_sample {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let u = rng.gen_f64() as $t;
                let v = low + u * (high - low);
                // Guard the (measure-zero) rounding case v == high so
                // the half-open contract holds.
                if v < high { v } else { low }
            }

            fn sample_range_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let u = rng.gen_f64() as $t;
                low + u * (high - low)
            }
        }
    )*};
}

float_uniform_sample!(f32, f64);

/// Slice conveniences mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place (same visit order as `rand` 0.8:
    /// indices descending, each swapped with a uniform `j ≤ i`).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg32_reference_vector() {
        // Round 1 of the pcg32-global-demo output for the canonical
        // demo seeding (state 42, stream 54).
        let mut rng = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xa15c_02b7, 0x7b47_f409, 0xba1d_3330, 0x83d2_f293, 0xbfa4_784b, 0xcbed_606e,
        ];
        for e in expected {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn splitmix64_reference_vector() {
        // From the reference implementation seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Pcg32::seed_from_u64(99);
        for _ in 0..2000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..4.0f64);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Pcg32::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn unsized_rng_receivers_work() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.next_u64() as usize % 10
        }
        let mut rng = Pcg32::seed_from_u64(1);
        let _ = draw(&mut rng);
        let dyn_style: &mut Pcg32 = &mut rng;
        let _ = draw(dyn_style);
    }
}
