//! Measured memory-bandwidth reference for the `roofline` sections of
//! the `BENCH_*.json` trajectory files.
//!
//! The kernel benchmarks report *effective bytes per second* — cells
//! touched × cell width ÷ time — so "memory bandwidth" is a number in
//! the report, not a slogan. That number only means something next to
//! what the machine can actually stream, so each report also records a
//! measured memcpy probe from this module: a large out-of-cache copy,
//! best of several repetitions.
//!
//! Convention: bandwidth figures count bytes **single-sided** (a copied
//! byte counts once, even though it is one read plus one write of DRAM
//! traffic), matching how the kernels count their touched cells. A
//! kernel whose effective rate approaches the memcpy figure is
//! bandwidth-bound; headroom below it is compute or latency.

use crate::report::fast_mode;
use std::time::Instant;

/// One measured memcpy probe; render with [`RooflineProbe::json`].
#[derive(Debug, Clone, Copy)]
pub struct RooflineProbe {
    /// Best-case copied bytes per second (single-sided count).
    pub memcpy_bytes_per_sec: f64,
    /// Size of each of the two buffers.
    pub buffer_bytes: usize,
    /// Repetitions taken (the best is reported).
    pub reps: usize,
}

impl RooflineProbe {
    /// The probe as one JSON object for a report's `roofline` section.
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            "{{\"memcpy_bytes_per_sec\":{:.0},\"memcpy_gib_per_sec\":{:.3},\"buffer_bytes\":{},\"reps\":{}}}",
            self.memcpy_bytes_per_sec,
            self.memcpy_bytes_per_sec / f64::from(1u32 << 30),
            self.buffer_bytes,
            self.reps
        )
    }
}

/// Measures streaming copy bandwidth: `dst.copy_from_slice(&src)` over
/// buffers sized well past any last-level cache, best of several reps.
/// Fast mode shrinks the buffers so the smoke gate stays quick (the
/// number is then closer to an in-cache figure — the committed
/// baselines use the full probe).
#[must_use]
pub fn memcpy_bandwidth() -> RooflineProbe {
    let buffer_bytes: usize = if fast_mode() { 8 << 20 } else { 64 << 20 };
    let reps = 5;
    let src = vec![1u8; buffer_bytes];
    let mut dst = vec![0u8; buffer_bytes];
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
        best = best.min(t.elapsed().as_secs_f64());
    }
    RooflineProbe {
        memcpy_bytes_per_sec: buffer_bytes as f64 / best,
        buffer_bytes,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_positive_and_renders() {
        // Keep the test cheap: probe a small buffer directly.
        let src = vec![1u8; 1 << 16];
        let mut dst = vec![0u8; 1 << 16];
        let t = Instant::now();
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
        assert!(t.elapsed().as_secs_f64() >= 0.0);

        let p = RooflineProbe {
            memcpy_bytes_per_sec: 12.5e9,
            buffer_bytes: 64 << 20,
            reps: 5,
        };
        let j = p.json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"memcpy_bytes_per_sec\":12500000000"), "{j}");
        assert!(j.contains("\"buffer_bytes\":67108864"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
