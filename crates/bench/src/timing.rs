//! A small measurement loop for the `bench_*` binaries — the in-repo
//! replacement for criterion, keeping the workspace dependency-free.
//!
//! Method: warm up, calibrate an iteration count so one sample takes
//! roughly [`Sampler::sample_time`], then collect [`Sampler::samples`]
//! samples and report min / median / mean per-iteration time. Min is
//! the headline number (least noise on a shared machine); the
//! median–mean spread flags interference.
//!
//! Set `BUCKETRANK_BENCH_FAST=1` to run a smoke-test-speed pass (one
//! short sample per case) — used to keep the bench binaries testable.

use std::time::{Duration, Instant};

/// One benchmark's aggregated timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id, e.g. `pair_counts/fast/1024`.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

impl Measurement {
    /// One aligned report line.
    pub fn line(&self) -> String {
        format!(
            "{:<44} min {:>10}   median {:>10}   mean {:>10}   ({} iters/sample)",
            self.name,
            fmt_ns(self.min_ns),
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            self.iters,
        )
    }

    /// One JSON object (hand-rolled: the workspace has no serde), for
    /// the `BENCH_*.json` trajectory files. Bench names are plain
    /// `[a-z0-9_/]` identifiers, so no string escaping is needed.
    pub fn json(&self) -> String {
        debug_assert!(
            self.name.chars().all(|c| c != '"' && c != '\\'),
            "bench names must not need JSON escaping"
        );
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1}}}",
            self.name, self.iters, self.min_ns, self.median_ns, self.mean_ns
        )
    }
}

/// Benchmark configuration: warmup budget, per-sample time target, and
/// sample count.
#[derive(Debug, Clone)]
pub struct Sampler {
    /// Time spent running the closure before measuring.
    pub warmup: Duration,
    /// Target wall time per sample (calibrates the iteration count).
    pub sample_time: Duration,
    /// Number of samples collected.
    pub samples: usize,
}

impl Default for Sampler {
    fn default() -> Self {
        if std::env::var_os("BUCKETRANK_BENCH_FAST").is_some() {
            Sampler {
                warmup: Duration::from_millis(1),
                sample_time: Duration::from_millis(1),
                samples: 2,
            }
        } else {
            Sampler {
                warmup: Duration::from_millis(40),
                sample_time: Duration::from_millis(25),
                samples: 11,
            }
        }
    }
}

impl Sampler {
    /// Measure `f`, print the report line, and return the measurement.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warm up (also seeds caches/allocator) while estimating cost
        // with doubling batches, so sub-microsecond closures are not
        // swamped by timer overhead.
        let mut batch: u64 = 1;
        let per_iter_estimate;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let took = t.elapsed();
            if took >= Duration::from_millis(1) || warmup_start.elapsed() >= self.warmup {
                per_iter_estimate = took.as_secs_f64() / batch as f64;
                break;
            }
            batch = batch.saturating_mul(2);
        }
        while warmup_start.elapsed() < self.warmup {
            std::hint::black_box(f());
        }

        let iters = ((self.sample_time.as_secs_f64() / per_iter_estimate.max(1e-9)).ceil()
            as u64)
            .max(1);
        let mut per_iter_ns: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));

        let m = Measurement {
            name: name.to_string(),
            iters,
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        };
        println!("{}", m.line());
        m
    }
}

/// Prints a group header, mirroring criterion's benchmark groups.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let s = Sampler {
            warmup: Duration::from_millis(1),
            sample_time: Duration::from_millis(1),
            samples: 3,
        };
        let m = s.bench("smoke", || (0..100u64).sum::<u64>());
        assert!(m.iters >= 1);
        assert!(m.min_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns * 1.001);
    }

    #[test]
    fn json_is_well_formed() {
        let m = Measurement {
            name: "batch/prepared/seq/64x512".to_string(),
            iters: 7,
            min_ns: 1234.56,
            median_ns: 1300.0,
            mean_ns: 1400.25,
        };
        let j = m.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"batch/prepared/seq/64x512\""));
        assert!(j.contains("\"iters\":7"));
        assert!(j.contains("\"min_ns\":1234.6"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.3), "12.3ns");
        assert_eq!(fmt_ns(12_300.0), "12.30µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30ms");
        assert_eq!(fmt_ns(2.5e9), "2.500s");
    }
}
