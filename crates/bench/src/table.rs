//! Minimal aligned text tables for experiment output.

use std::fmt::Write as _;

/// An aligned text table with a header row.
///
/// ```
/// use bucketrank_bench::Table;
///
/// let mut t = Table::new(&["n", "ratio"]);
/// t.row(&["10", "1.87"]);
/// t.row(&["100", "1.99"]);
/// let s = t.render();
/// assert!(s.contains("ratio"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["metric", "value"]);
        t.row(&["Kprof", "3"]);
        t.row(&["FHaus", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All lines share one width.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }
}
