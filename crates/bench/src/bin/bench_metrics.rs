//! Timing benches for the four partial-ranking metrics (experiment
//! E4's microbenchmark counterpart): fast vs naive pair statistics,
//! each metric across domain sizes, and a tie-density ablation.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin bench_metrics`.

use bucketrank_bench::timing::{group, Sampler};
use bucketrank_metrics::pairs::{pair_counts, pair_counts_naive};
use bucketrank_metrics::{footrule, full, hausdorff, kendall};
use bucketrank_workloads::random::{random_few_valued, random_full_ranking};
use bucketrank_workloads::rng::{Pcg32, SeedableRng};

fn main() {
    let s = Sampler::default();

    group("pair_counts");
    let mut rng = Pcg32::seed_from_u64(41);
    for n in [64usize, 256, 1024, 4096] {
        let a = random_few_valued(&mut rng, n, 5);
        let b = random_few_valued(&mut rng, n, 5);
        s.bench(&format!("pair_counts/fast/{n}"), || {
            pair_counts(&a, &b).unwrap()
        });
        if n <= 1024 {
            s.bench(&format!("pair_counts/naive/{n}"), || {
                pair_counts_naive(&a, &b).unwrap()
            });
        }
    }

    group("metrics");
    let mut rng = Pcg32::seed_from_u64(42);
    for n in [256usize, 1024, 4096] {
        let a = random_few_valued(&mut rng, n, 5);
        let b = random_few_valued(&mut rng, n, 5);
        s.bench(&format!("metrics/kprof/{n}"), || {
            kendall::kprof_x2(&a, &b).unwrap()
        });
        s.bench(&format!("metrics/fprof/{n}"), || {
            footrule::fprof_x2(&a, &b).unwrap()
        });
        s.bench(&format!("metrics/khaus/{n}"), || {
            hausdorff::khaus(&a, &b).unwrap()
        });
        s.bench(&format!("metrics/fhaus/{n}"), || {
            hausdorff::fhaus(&a, &b).unwrap()
        });
    }

    group("full_rankings");
    let mut rng = Pcg32::seed_from_u64(43);
    for n in [1024usize, 8192] {
        let a = random_full_ranking(&mut rng, n);
        let b = random_full_ranking(&mut rng, n);
        s.bench(&format!("full_rankings/kendall/{n}"), || {
            full::kendall(&a, &b).unwrap()
        });
        s.bench(&format!("full_rankings/footrule/{n}"), || {
            full::footrule(&a, &b).unwrap()
        });
    }

    // Ablation: pair statistics cost vs tie structure at fixed n — from
    // two giant buckets (levels = 2) to a full permutation (levels ≫ n).
    group("tie_density (n = 4096)");
    let mut rng = Pcg32::seed_from_u64(44);
    let n = 4096;
    for levels in [2usize, 8, 64, 4096] {
        let a = random_few_valued(&mut rng, n, levels);
        let b = random_few_valued(&mut rng, n, levels);
        s.bench(&format!("tie_density/pair_counts/{levels}"), || {
            pair_counts(&a, &b).unwrap()
        });
        s.bench(&format!("tie_density/fhaus/{levels}"), || {
            hausdorff::fhaus(&a, &b).unwrap()
        });
    }
}
