//! Timing benches for the access layer (experiment E6 counterpart):
//! MEDRANK wall-clock vs a full Borda scan, the end-to-end fielded
//! search flow, and ranking construction from indexes vs per-query
//! sorts.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin bench_access`.

use bucketrank_access::index::IndexedTable;
use bucketrank_access::medrank::{medrank_top_k, medrank_top_k_buckets};
use bucketrank_access::query::PreferenceQuery;
use bucketrank_aggregate::borda::average_rank_full;
use bucketrank_bench::timing::{group, Sampler};
use bucketrank_core::BucketOrder;
use bucketrank_workloads::datasets::{restaurant_query_specs, restaurants};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, SeedableRng};

fn main() {
    let s = Sampler::default();

    group("medrank_vs_scan");
    let mut rng = Pcg32::seed_from_u64(71);
    for n in [1_000usize, 10_000, 100_000] {
        let inputs: Vec<BucketOrder> = (0..5)
            .map(|_| random_few_valued(&mut rng, n, 5))
            .collect();
        s.bench(&format!("medrank_vs_scan/medrank_top1/{n}"), || {
            medrank_top_k(&inputs, 1).unwrap()
        });
        s.bench(&format!("medrank_vs_scan/medrank_top10/{n}"), || {
            medrank_top_k(&inputs, 10).unwrap()
        });
        s.bench(&format!("medrank_vs_scan/medrank_buckets_top10/{n}"), || {
            medrank_top_k_buckets(&inputs, 10).unwrap()
        });
        s.bench(&format!("medrank_vs_scan/borda_full_scan/{n}"), || {
            average_rank_full(&inputs).unwrap()
        });
    }

    group("fielded_search");
    let mut rng = Pcg32::seed_from_u64(72);
    for n in [1_000usize, 10_000] {
        let table = restaurants(&mut rng, n);
        let query = PreferenceQuery::new(restaurant_query_specs()).with_k(5);
        // Planning (index scans) + aggregation, end to end.
        s.bench(&format!("fielded_search/plan_and_run/{n}"), || {
            query.run(&table).unwrap()
        });
        // Aggregation only, on pre-planned rankings.
        let rankings = query.plan(&table).unwrap();
        s.bench(&format!("fielded_search/aggregate_only/{n}"), || {
            medrank_top_k(&rankings, 5).unwrap()
        });
    }

    group("ranking_construction");
    let mut rng = Pcg32::seed_from_u64(73);
    for n in [1_000usize, 10_000, 100_000] {
        let table = restaurants(&mut rng, n);
        let specs = restaurant_query_specs();
        s.bench(&format!("ranking_construction/sort_per_query/{n}"), || {
            for spec in &specs {
                std::hint::black_box(table.ranking(spec).unwrap());
            }
        });
        let indexed = IndexedTable::build(restaurants(&mut rng, n)).unwrap();
        s.bench(&format!("ranking_construction/from_index/{n}"), || {
            for spec in &specs {
                std::hint::black_box(indexed.ranking(spec).unwrap());
            }
        });
    }
}
