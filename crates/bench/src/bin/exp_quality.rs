//! E8 — aggregation quality: the median algorithm vs the heavier
//! heuristics the paper positions itself against (Borda, MC1–MC4, local
//! Kemenization, best input) on Mallows noisy-voter profiles with ties.
//!
//! Predicted shape: median matches the quality of the Markov-chain
//! heuristics (and the exact optimum where computable) while being the
//! only contender that is database-friendly (sorted access, early stop).

use bucketrank_aggregate::borda::{average_rank_full, best_input};
use bucketrank_aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank_aggregate::dp::aggregate_optimal_bucketing;
use bucketrank_aggregate::exact::optimal_partial_ranking;
use bucketrank_aggregate::local::local_kemenize;
use bucketrank_aggregate::markov::{markov_aggregate, MarkovChain, MarkovOptions};
use bucketrank_aggregate::median::{aggregate_full, MedianPolicy};
use bucketrank_bench::Table;
use bucketrank_core::{BucketOrder, TypeSeq};
use bucketrank_metrics::kendall;
use bucketrank_workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank_workloads::stats::summarize;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E8 — aggregation quality on Mallows profiles with ties\n");
    let mut rng = Pcg32::seed_from_u64(8);

    // Small domain: everything vs the exact optimum.
    println!("small domain (n = 7, m = 5, 20 trials/θ): mean Σ Fprof / optimum");
    let mut t = Table::new(&[
        "θ", "median", "median+f†", "borda", "MC4", "MC4+local", "best input",
    ]);
    for &theta in &[0.1, 0.3, 0.7, 1.5] {
        let alpha = TypeSeq::new(vec![2, 2, 3]).unwrap();
        let model = MallowsWithTies::new(Mallows::new(7, theta), alpha);
        let mut ratios: [Vec<f64>; 6] = Default::default();
        for _ in 0..20 {
            let inputs = model.sample_profile(&mut rng, 5);
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
            if opt == 0 {
                continue;
            }
            let cost =
                |c: &BucketOrder| total_cost_x2(AggMetric::FProf, c, &inputs).unwrap() as f64;
            let median = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
            let fdag = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            let borda = average_rank_full(&inputs).unwrap();
            let mc4 =
                markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default()).unwrap();
            let mc4l = local_kemenize(&mc4, &inputs).unwrap();
            let (_, best) = best_input(&inputs, AggMetric::FProf).unwrap();
            let opt = opt as f64;
            ratios[0].push(cost(&median) / opt);
            ratios[1].push(cost(&fdag.order) / opt);
            ratios[2].push(cost(&borda) / opt);
            ratios[3].push(cost(&mc4) / opt);
            ratios[4].push(cost(&mc4l) / opt);
            ratios[5].push(best as f64 / opt);
        }
        let m = |i: usize| format!("{:.3}", summarize(&ratios[i]).mean);
        t.row(&[
            format!("{theta}"),
            m(0),
            m(1),
            m(2),
            m(3),
            m(4),
            m(5),
        ]);
    }
    t.print();

    // Larger domain: objective values and truth recovery (no exact optimum).
    println!("\nlarger domain (n = 40, m = 9, top-8 lists, 10 trials/θ):");
    println!("mean Σ Fprof (objective, lower better) / mean Kprof to hidden truth");
    let mut t2 = Table::new(&["θ", "median f†", "borda", "MC2", "MC4", "best input"]);
    for &theta in &[0.15, 0.4, 1.0] {
        let model = MallowsWithTies::new(
            Mallows::new(40, theta),
            TypeSeq::top_k(40, 8).unwrap(),
        );
        let truth = model.reference();
        let mut cells: [Vec<(f64, f64)>; 5] = Default::default();
        for _ in 0..10 {
            let inputs = model.sample_profile(&mut rng, 9);
            let eval = |c: &BucketOrder| -> (f64, f64) {
                (
                    total_cost_x2(AggMetric::FProf, c, &inputs).unwrap() as f64 / 2.0,
                    kendall::kprof(c, &truth).unwrap(),
                )
            };
            let fdag = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            cells[0].push(eval(&fdag.order));
            cells[1].push(eval(&average_rank_full(&inputs).unwrap()));
            cells[2].push(eval(
                &markov_aggregate(&inputs, MarkovChain::Mc2, MarkovOptions::default()).unwrap(),
            ));
            cells[3].push(eval(
                &markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default()).unwrap(),
            ));
            let (bi, _) = best_input(&inputs, AggMetric::FProf).unwrap();
            cells[4].push(eval(&inputs[bi]));
        }
        let fmt = |v: &[(f64, f64)]| {
            let c: Vec<f64> = v.iter().map(|x| x.0).collect();
            let d: Vec<f64> = v.iter().map(|x| x.1).collect();
            format!(
                "{:.0} / {:.1}",
                summarize(&c).mean,
                summarize(&d).mean
            )
        };
        t2.row(&[
            format!("{theta}"),
            fmt(&cells[0]),
            fmt(&cells[1]),
            fmt(&cells[2]),
            fmt(&cells[3]),
            fmt(&cells[4]),
        ]);
    }
    t2.print();

    // Kprof objective vs the pairwise lower bound: a sound optimality gap
    // at sizes where exact optimization is impossible.
    println!("\nKprof objective vs the pairwise lower bound (n = 40, m = 9):");
    let mut t3 = Table::new(&["θ", "lower bound", "median f†", "gap", "borda", "gap"]);
    for &theta in &[0.15, 0.4, 1.0] {
        let model = MallowsWithTies::new(
            Mallows::new(40, theta),
            TypeSeq::top_k(40, 8).unwrap(),
        );
        let mut lbs = Vec::new();
        let mut fds = Vec::new();
        let mut bds = Vec::new();
        for _ in 0..10 {
            let inputs = model.sample_profile(&mut rng, 9);
            let lb = bucketrank_aggregate::exact::kprof_lower_bound_x2(&inputs).unwrap();
            let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            let fdc = total_cost_x2(AggMetric::KProf, &fd.order, &inputs).unwrap();
            let bd = total_cost_x2(
                AggMetric::KProf,
                &average_rank_full(&inputs).unwrap(),
                &inputs,
            )
            .unwrap();
            assert!(lb <= fdc && lb <= bd, "lower bound exceeded a real cost");
            lbs.push(lb as f64 / 2.0);
            fds.push(fdc as f64 / 2.0);
            bds.push(bd as f64 / 2.0);
        }
        let mean = |v: &[f64]| summarize(v).mean;
        t3.row(&[
            format!("{theta}"),
            format!("{:.0}", mean(&lbs)),
            format!("{:.0}", mean(&fds)),
            format!("{:.2}x", mean(&fds) / mean(&lbs)),
            format!("{:.0}", mean(&bds)),
            format!("{:.2}x", mean(&bds) / mean(&lbs)),
        ]);
    }
    t3.print();

    // Exact optimum at n = 22 via branch and bound (past the Held–Karp
    // memory wall): how close is the median pipeline to the true Kemeny
    // optimum on a mid-size cohesive profile?
    println!("\nexact Kemeny at n = 22 via branch & bound (full-ranking inputs):");
    let mut t_bb = Table::new(&["θ", "B&B optimum", "median+local", "ratio", "nodes"]);
    for &theta in &[0.6, 1.2] {
        let model = Mallows::new(22, theta);
        let inputs = model.sample_profile(&mut rng, 7);
        let (_, opt, stats) = bucketrank_aggregate::bb::kemeny_optimal_bb(&inputs).unwrap();
        let med = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
        let med_local = local_kemenize(&med, &inputs).unwrap();
        let mc = total_cost_x2(AggMetric::KProf, &med_local, &inputs).unwrap();
        assert!(opt <= mc);
        t_bb.row(&[
            format!("{theta}"),
            format!("{:.1}", opt as f64 / 2.0),
            format!("{:.1}", mc as f64 / 2.0),
            format!("{:.3}", mc as f64 / opt.max(1) as f64),
            stats.nodes.to_string(),
        ]);
    }
    t_bb.print();

    // Plackett–Luce workload: heteroscedastic noise (stable head, noisy
    // tail) — the regime where top-k aggregation should shine.
    println!("\nPlackett–Luce workload (n = 7, m = 5, geometric weights, 20 trials):");
    let mut t4 = Table::new(&["base", "median f† / opt", "borda / opt", "MC4 / opt"]);
    for &base in &[0.4, 0.6, 0.8] {
        let model = bucketrank_workloads::plackett_luce::PlackettLuceWithTies::new(
            bucketrank_workloads::plackett_luce::PlackettLuce::geometric(7, base),
            TypeSeq::new(vec![2, 2, 3]).unwrap(),
        );
        let mut fd_r = Vec::new();
        let mut bd_r = Vec::new();
        let mut mc_r = Vec::new();
        for _ in 0..20 {
            let inputs = model.sample_profile(&mut rng, 5);
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
            if opt == 0 {
                continue;
            }
            let cost =
                |c: &BucketOrder| total_cost_x2(AggMetric::FProf, c, &inputs).unwrap() as f64;
            let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            fd_r.push(cost(&fd.order) / opt as f64);
            bd_r.push(cost(&average_rank_full(&inputs).unwrap()) / opt as f64);
            let mc4 =
                markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default()).unwrap();
            mc_r.push(cost(&mc4) / opt as f64);
        }
        t4.row(&[
            format!("{base}"),
            format!("{:.3}", summarize(&fd_r).mean),
            format!("{:.3}", summarize(&bd_r).mean),
            format!("{:.3}", summarize(&mc_r).mean),
        ]);
    }
    t4.print();

    println!("\npredicted shape: the median family tracks (or beats) Borda and");
    println!("the Markov chains on the objective at every noise level, while");
    println!("the full rankings from MC chains pay the bottom-bucket spread on");
    println!("top-k inputs; best-input wins the objective only at high noise.");
}
