//! E4 — Section 4: all four metrics are computable in polynomial time.
//! Measures wall-clock scaling of the `O(n log n)` implementations vs the
//! naive `O(n²)` reference, locating the crossover.
//!
//! Predicted shape: the fast paths scale quasi-linearly; the naive
//! quadratic reference overtakes them in cost by one to two orders of
//! magnitude by n ≈ 8192.

use bucketrank_bench::{timed, Table};
use bucketrank_metrics::pairs::{pair_counts, pair_counts_naive};
use bucketrank_metrics::{footrule, hausdorff, kendall};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E4 — metric computation scaling (times in µs, mean of reps)\n");
    let mut rng = Pcg32::seed_from_u64(4);
    let mut t = Table::new(&[
        "n",
        "pairs fast",
        "pairs naive",
        "speedup",
        "Kprof",
        "Fprof",
        "KHaus",
        "FHaus",
    ]);

    for &n in &[16usize, 64, 256, 1024, 4096, 8192] {
        let reps = if n <= 256 { 50 } else { 5 };
        let a = random_few_valued(&mut rng, n, 5);
        let b = random_few_valued(&mut rng, n, 5);

        let us = |secs: f64, reps: usize| format!("{:.1}", secs / reps as f64 * 1e6);

        let (_, fast) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(pair_counts(&a, &b).unwrap());
            }
        });
        let naive_secs = if n <= 4096 {
            let (_, s) = timed(|| {
                for _ in 0..reps {
                    std::hint::black_box(pair_counts_naive(&a, &b).unwrap());
                }
            });
            Some(s)
        } else {
            let (_, s) = timed(|| {
                std::hint::black_box(pair_counts_naive(&a, &b).unwrap());
            });
            Some(s * reps as f64)
        };

        let (_, kp) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(kendall::kprof_x2(&a, &b).unwrap());
            }
        });
        let (_, fp) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(footrule::fprof_x2(&a, &b).unwrap());
            }
        });
        let (_, kh) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(hausdorff::khaus(&a, &b).unwrap());
            }
        });
        let (_, fh) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(hausdorff::fhaus(&a, &b).unwrap());
            }
        });

        let naive = naive_secs.unwrap();
        t.row(&[
            n.to_string(),
            us(fast, reps),
            us(naive, reps),
            format!("{:.1}x", naive / fast.max(1e-12)),
            us(kp, reps),
            us(fp, reps),
            us(kh, reps),
            us(fh, reps),
        ]);
    }
    t.print();
    println!("\nall four metrics computed at n = 8192 in well under a second —");
    println!("the paper's polynomial-time claim, with the expected n log n");
    println!("vs n² separation growing with n.");
}
