//! E2 — Proposition 13: `K^(p)` is a metric for `p ≥ 1/2`, a near metric
//! for `0 < p < 1/2` (worst triangle ratio `1/(2p)`), and not a distance
//! measure at `p = 0`. Sweeps `p` over exhaustive small domains and
//! random chains.

use bucketrank_bench::Table;
use bucketrank_core::consistent::all_bucket_orders;
use bucketrank_core::BucketOrder;
use bucketrank_metrics::kendall::k_p;
use bucketrank_metrics::near::{
    check_distance_measure, max_polygonal_ratio, max_triangle_ratio,
};
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::{Rng, SeedableRng};

fn main() {
    println!("E2 — Proposition 13: classification of K^(p)\n");

    let orders = all_bucket_orders(4);
    let mut t = Table::new(&[
        "p",
        "distance measure?",
        "max triangle ratio",
        "paper bound 1/(2p)",
        "classification",
    ]);

    for &p in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0] {
        let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, p).unwrap();
        let dm_ok = check_distance_measure(&orders, d).is_none();
        let ratio = max_triangle_ratio(&orders, d).unwrap();
        let bound = if p > 0.0 {
            format!("{:.3}", 1.0 / (2.0 * p))
        } else {
            "∞".to_owned()
        };
        let class = if !dm_ok {
            "not a distance measure"
        } else if ratio <= 1.0 + 1e-9 {
            "metric"
        } else {
            "near metric"
        };
        // Shape assertions per the paper.
        if p == 0.0 {
            assert!(!dm_ok);
        } else if p < 0.5 {
            assert!(dm_ok && ratio > 1.0);
            assert!(ratio <= 1.0 / (2.0 * p) + 1e-9);
        } else {
            assert!(dm_ok && ratio <= 1.0 + 1e-9);
        }
        t.row(&[
            format!("{p:.2}"),
            if dm_ok { "yes" } else { "no" }.to_owned(),
            format!("{ratio:.3}"),
            bound,
            class.to_owned(),
        ]);
    }
    t.print();

    // Longer chains: the near-metric constant also bounds polygonal paths.
    println!("\npolygonal (chain) ratios on random chains of length 5, n = 4:");
    let mut rng = Pcg32::seed_from_u64(2);
    let chains: Vec<Vec<usize>> = (0..4000)
        .map(|_| (0..5).map(|_| rng.gen_range(0..orders.len())).collect())
        .collect();
    let mut t2 = Table::new(&["p", "max chain ratio", "bound 1/(2p)"]);
    for &p in &[0.1, 0.25, 0.4, 0.5] {
        let d = |a: &BucketOrder, b: &BucketOrder| k_p(a, b, p).unwrap();
        let r = max_polygonal_ratio(&orders, &chains, d).unwrap();
        assert!(r <= 1.0 / (2.0 * p) + 1e-9);
        t2.row(&[
            format!("{p:.2}"),
            format!("{r:.3}"),
            format!("{:.3}", 1.0 / (2.0 * p)),
        ]);
    }
    t2.print();
    println!("\nshape matches Prop. 13: boundary exactly at p = 1/2.");
}
