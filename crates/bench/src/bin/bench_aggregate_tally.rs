//! The shared pairwise-preference tally (`aggregate::tally`) vs the
//! direct per-voter paths it replaced, across profile shapes — the
//! measurement backing the tally layer.
//!
//! Four comparisons per shape `(m voters × n elements)`:
//!
//! * **build**: the old per-pair `prefers()`/`is_tied()` double loop
//!   (what kwiksort/Schulze/MC4/the majority digraph each used to pay
//!   privately) vs [`ProfileTally::build`], sequential and parallel at
//!   fixed widths 2/4/8 so the trajectory records a scaling curve;
//! * **mc4**: the MC4 transition-matrix build end to end — the old
//!   per-entry voter filter (`O(m·n²)`) vs tally build + `O(1)`
//!   strict-majority reads;
//! * **local_kemenize**: the pre-tally per-swap voter scan vs the
//!   tally-backed `O(1)`-delta pass;
//! * **kemeny**: total `Kprof` cost of one candidate — the direct
//!   prepared-kernel path (`O(m·n log n)` per candidate) vs the
//!   tally-backed `O(n²)` evaluation (tally prebuilt, amortized). This
//!   primitive has a genuine crossover: the tally read wins once
//!   `m ≳ n / log n` and loses below it, which is why
//!   `cost::total_cost_x2_tally` is an opt-in fast path rather than a
//!   replacement. It is reported as a scaling trajectory, separate from
//!   the aggregator regression check.
//!
//! Build rows also report **effective bytes/s** — cells touched × cell
//! width ÷ time — next to the ns figures, and the report carries a
//! `roofline` section with the machine's measured memcpy bandwidth so
//! the distance to memory-bound is a number in the trajectory file
//! (see `bucketrank_bench::roofline` for the byte-counting convention).
//!
//! Run with `cargo run --release -p bucketrank-bench --bin
//! bench_aggregate_tally`. Results go to the perf trajectory file
//! `BENCH_aggregate.json` (override with `BUCKETRANK_BENCH_OUT`);
//! `BUCKETRANK_BENCH_FAST=1` runs the smoke-gate pass on shrunken
//! shapes. Two hard gates run at the 256×512 acceptance shape in both
//! modes: the single-thread tiled build must hold ≥4× over the naive
//! scan (always), and the 8-thread build must hold ≥1.5× over
//! sequential (SKIPped below 8 cores, where threads cannot scale).

use bucketrank_aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank_aggregate::local::local_kemenize_with_tally;
use bucketrank_aggregate::tally::ProfileTally;
use bucketrank_bench::report::{fast_mode, out_path, BenchReport};
use bucketrank_bench::roofline::memcpy_bandwidth;
use bucketrank_bench::timing::{group, Measurement, Sampler};
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, Rng, SeedableRng};

/// The pre-tally weight build: one `prefers`/`is_tied` scan per ordered
/// pair per voter (kwiksort's old private `w2` loop, and the same
/// access pattern the majority digraph, Schulze and MC4 each repeated).
fn naive_weights(inputs: &[BucketOrder]) -> Vec<u32> {
    let n = inputs[0].len();
    let mut w2 = vec![0u32; n * n];
    for s in inputs {
        for a in 0..n as ElementId {
            for b in 0..n as ElementId {
                if a == b {
                    continue;
                }
                let cell = &mut w2[a as usize * n + b as usize];
                if s.prefers(a, b) {
                    *cell += 2;
                } else if s.is_tied(a, b) {
                    *cell += 1;
                }
            }
        }
    }
    w2
}

/// The pre-tally MC4 transition rows: one voter filter-count per
/// `(u, v)` entry, `O(m·n²)` per chain build.
fn naive_mc4_matrix(inputs: &[BucketOrder], n: usize) -> Vec<f64> {
    let m = inputs.len() as f64;
    let mut p = vec![0.0f64; n * n];
    for u in 0..n as ElementId {
        let row = &mut p[u as usize * n..(u as usize + 1) * n];
        for v in 0..n as ElementId {
            if v != u {
                let pref = inputs.iter().filter(|s| s.prefers(v, u)).count();
                if pref as f64 > m / 2.0 {
                    row[v as usize] += 1.0 / n as f64;
                }
            }
        }
        let moved: f64 = row.iter().sum();
        row[u as usize] += 1.0 - moved;
    }
    p
}

/// The tally-backed MC4 transition rows as shipped in
/// `markov::transition_matrix`: build the tally, then one
/// `strict_majority` read per entry.
fn tally_mc4_matrix(inputs: &[BucketOrder], n: usize) -> Vec<f64> {
    let t = ProfileTally::build(inputs).unwrap();
    let mut p = vec![0.0f64; n * n];
    let inv = 1.0 / n as f64;
    for u in 0..n as ElementId {
        let row = &mut p[u as usize * n..(u as usize + 1) * n];
        let mut moved = 0usize;
        for (v, wins) in t.strict_majorities_against(u).enumerate() {
            let go = wins & (v != u as usize);
            row[v] = f64::from(go as u8) * inv;
            moved += go as usize;
        }
        row[u as usize] = 1.0 - moved as f64 * inv;
    }
    p
}

/// The pre-tally `local_kemenize`: per-swap pair costs summed over the
/// voters (hoisted bucket maps, as shipped before the tally layer).
fn naive_local_kemenize(candidate: &BucketOrder, inputs: &[BucketOrder]) -> BucketOrder {
    let mut perm = candidate.as_permutation().expect("full candidate");
    let input_buckets: Vec<&[u32]> = inputs.iter().map(|s| s.bucket_indices()).collect();
    let pair_cost = |a: ElementId, b: ElementId| -> i64 {
        let mut c = 0i64;
        for bo in &input_buckets {
            let (ba, bb) = (bo[a as usize], bo[b as usize]);
            if bb < ba {
                c += 2;
            } else if ba == bb {
                c += 1;
            }
        }
        c
    };
    for i in 1..perm.len() {
        let mut j = i;
        while j > 0 {
            let (ahead, here) = (perm[j - 1], perm[j]);
            if pair_cost(here, ahead) < pair_cost(ahead, here) {
                perm.swap(j - 1, j);
                j -= 1;
            } else {
                break;
            }
        }
    }
    BucketOrder::from_permutation(&perm).expect("permutation preserved")
}

/// Effective bytes one tiled tally build touches: the accumulate pass
/// writes `m·n²` `u16` partial cells, then the fused merge+derive sweep
/// touches the `n²` `u32` `strict` and `w2` matrices once each.
fn tiled_build_bytes(m: usize, n: usize) -> f64 {
    (m * n * n * 2 + n * n * 8) as f64
}

/// Effective bytes the naive per-pair scan touches: one conditional
/// read-modify-write of an `n²` `u32` matrix per voter.
fn naive_build_bytes(m: usize, n: usize) -> f64 {
    (m * n * n * 4) as f64
}

fn random_full(rng: &mut Pcg32, n: usize) -> BucketOrder {
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    BucketOrder::from_permutation(&ids).expect("shuffled permutation")
}

fn main() {
    let fast = fast_mode();
    // Acceptance shapes: m ∈ {16, 256} voters × n ∈ {128, 512}
    // elements. The smoke gate shrinks them so CI stays quick; the
    // committed baseline uses the full grid.
    let shapes: &[(usize, usize)] = if fast {
        &[(8, 32), (16, 64)]
    } else {
        &[(16, 128), (16, 512), (256, 128), (256, 512)]
    };
    // The parallel build is measured at fixed widths 2/4/8 at every
    // shape (not just whatever this box has), so the trajectory file
    // records a scaling curve that is comparable across machines. The
    // rows use the unclamped entry: the public `build_parallel` clamps
    // to `available_parallelism`, which would silently collapse the
    // curve on small boxes.
    let par_widths: [usize; 3] = [2, 4, 8];

    let s = Sampler::default();
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut par_scaling: Vec<(String, f64)> = Vec::new();
    let mut bandwidths: Vec<(String, f64)> = Vec::new();

    for &(m, n) in shapes {
        let mut rng = Pcg32::seed_from_u64(2004);
        let profile: Vec<BucketOrder> =
            (0..m).map(|_| random_few_valued(&mut rng, n, 8)).collect();
        let candidate = random_full(&mut rng, n);
        let start = candidate.reverse();
        let tally = ProfileTally::build(&profile).unwrap();

        group(&format!("tally ({m} voters × {n} elements)"));
        let build_naive = s.bench(&format!("tally/build/naive/{m}x{n}"), || {
            naive_weights(&profile)
        });
        let build_seq = s.bench(&format!("tally/build/seq/{m}x{n}"), || {
            ProfileTally::build(&profile).unwrap()
        });
        let build_par: Vec<Measurement> = par_widths
            .iter()
            .map(|&t| {
                s.bench(&format!("tally/build/par{t}/{m}x{n}"), || {
                    ProfileTally::build_parallel_unclamped(&profile, t).unwrap()
                })
            })
            .collect();

        bandwidths.push((
            build_naive.name.clone(),
            naive_build_bytes(m, n) / (build_naive.min_ns * 1e-9),
        ));
        bandwidths.push((
            build_seq.name.clone(),
            tiled_build_bytes(m, n) / (build_seq.min_ns * 1e-9),
        ));
        for meas in &build_par {
            bandwidths.push((
                meas.name.clone(),
                tiled_build_bytes(m, n) / (meas.min_ns * 1e-9),
            ));
        }

        let mc4_naive = s.bench(&format!("mc4/naive/{m}x{n}"), || {
            naive_mc4_matrix(&profile, n)
        });
        let mc4_tally = s.bench(&format!("mc4/tally/{m}x{n}"), || {
            tally_mc4_matrix(&profile, n)
        });

        let lk_naive = s.bench(&format!("local_kemenize/naive/{m}x{n}"), || {
            naive_local_kemenize(&start, &profile)
        });
        let lk_tally = s.bench(&format!("local_kemenize/tally/{m}x{n}"), || {
            local_kemenize_with_tally(&start, &tally).unwrap()
        });

        let kemeny_direct = s.bench(&format!("kemeny/direct/{m}x{n}"), || {
            total_cost_x2(AggMetric::KProf, &candidate, &profile).unwrap()
        });
        let kemeny_tally = s.bench(&format!("kemeny/tally/{m}x{n}"), || {
            tally.kemeny_cost_x2(&candidate).unwrap()
        });

        let build_seq_speedup = build_naive.min_ns / build_seq.min_ns;
        let mc4_speedup = mc4_naive.min_ns / mc4_tally.min_ns;
        let lk_speedup = lk_naive.min_ns / lk_tally.min_ns;
        let kemeny_speedup = kemeny_direct.min_ns / kemeny_tally.min_ns;
        let par_line: Vec<String> = par_widths
            .iter()
            .zip(&build_par)
            .map(|(&t, meas)| {
                let vs_seq = build_seq.min_ns / meas.min_ns;
                par_scaling.push((format!("tally/build/par{t}_vs_seq/{m}x{n}"), vs_seq));
                format!("par{t} {vs_seq:.2}x")
            })
            .collect();
        println!(
            "  speedups: build {build_seq_speedup:.2}x seq (vs seq: {}), \
             mc4 {mc4_speedup:.2}x, local_kemenize {lk_speedup:.2}x, \
             kemeny candidate scan {kemeny_speedup:.2}x",
            par_line.join(" ")
        );
        speedups.push((format!("tally/build/seq/{m}x{n}"), build_seq_speedup));
        speedups.push((format!("mc4/{m}x{n}"), mc4_speedup));
        speedups.push((format!("local_kemenize/{m}x{n}"), lk_speedup));
        speedups.push((format!("kemeny/{m}x{n}"), kemeny_speedup));
        all.extend([build_naive, build_seq]);
        all.extend(build_par);
        all.extend([
            mc4_naive,
            mc4_tally,
            lk_naive,
            lk_tally,
            kemeny_direct,
            kemeny_tally,
        ]);
    }

    let roofline = memcpy_bandwidth();
    println!(
        "roofline: memcpy {:.2} GiB/s ({} MiB buffer, best of {})",
        roofline.memcpy_bytes_per_sec / f64::from(1u32 << 30),
        roofline.buffer_bytes >> 20,
        roofline.reps
    );

    // The report is held until the hard gates below have run, so the
    // gate outcomes (including a SKIP) land in the trajectory file.
    let report = BenchReport::new("bench_aggregate_tally")
        .shapes(shapes)
        .field_bool("fast", fast)
        .measurements(&all)
        .ratios("tally_speedups", &speedups)
        .ratios("tally_par_scaling", &par_scaling)
        .bandwidths("effective_bandwidth", &bandwidths)
        .field_raw("roofline", roofline.json());

    // The smoke gate doubles as a regression check: no rewired
    // aggregator stage (build / MC4 / local Kemenization) may lose to
    // the direct path it replaced. The kemeny candidate scan is the
    // opt-in primitive with a deliberate m ≳ n/log n crossover, so it
    // is reported as a trajectory rather than gated.
    let worst = speedups
        .iter()
        .filter(|(name, _)| !name.starts_with("kemeny/"))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    println!("worst aggregator speedup: {:.2}x ({})", worst.1, worst.0);
    let kemeny: Vec<String> = speedups
        .iter()
        .filter(|(name, _)| name.starts_with("kemeny/"))
        .map(|(name, r)| format!("{}: {r:.2}x", &name["kemeny/".len()..]))
        .collect();
    println!(
        "kemeny candidate-scan speedup by shape (mxn): {}",
        kemeny.join(", ")
    );

    // Hard gates at the acceptance shape (256×512). Both run in both
    // modes — the fast grid omits the shape, so the profile is built
    // here — with best-of-3 `Instant` timings to keep them quick.
    let (gm, gn) = (256usize, 512usize);
    let mut rng = Pcg32::seed_from_u64(2004);
    let profile: Vec<BucketOrder> = (0..gm)
        .map(|_| random_few_valued(&mut rng, gn, 8))
        .collect();

    // Gate 1 (always): the single-thread tiled build must hold ≥4× over
    // the naive per-pair scan. This is the anti-regression floor on the
    // kernel itself — it does not depend on core count, so it never
    // SKIPs.
    let mut naive_s = f64::INFINITY;
    let mut seq_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(naive_weights(&profile));
        naive_s = naive_s.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        std::hint::black_box(ProfileTally::build(&profile).unwrap());
        seq_s = seq_s.min(t0.elapsed().as_secs_f64());
    }
    let seq_ratio = naive_s / seq_s;
    let seq_pass = seq_ratio >= 4.0;
    let verdict = if seq_pass { "PASS" } else { "FAIL" };
    println!(
        "seq gate (256x512, seq >= 4x naive): naive {:.2}ms vs seq {:.2}ms = {seq_ratio:.2}x [{verdict}]",
        naive_s * 1e3,
        seq_s * 1e3
    );

    // Gate 2: the 8-thread tally build must beat the sequential build
    // by ≥1.5×, but only on hardware with at least 8 cores —
    // oversubscribed threads cannot scale, so fewer cores SKIPs the
    // gate rather than failing it. (Unclamped entry for the same
    // reason as the scaling rows.) A SKIP is still *recorded* in the
    // trajectory file — an omitted row reads as "never measured",
    // which is a different claim than "measured on a small box".
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (par8_gate, par8_pass) = if cores < 8 {
        println!("par8 gate (256x512, par8 >= 1.5x seq): SKIP ({cores} cores < 8)");
        (format!("{{\"skipped\": true, \"cores\": {cores}}}"), true)
    } else {
        let mut par_s = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            std::hint::black_box(ProfileTally::build_parallel_unclamped(&profile, 8).unwrap());
            par_s = par_s.min(t0.elapsed().as_secs_f64());
        }
        let ratio = seq_s / par_s;
        let pass = ratio >= 1.5;
        let verdict = if pass { "PASS" } else { "FAIL" };
        println!(
            "par8 gate (256x512, par8 >= 1.5x seq): seq {:.2}ms vs par8 {:.2}ms = {ratio:.2}x [{verdict}]",
            seq_s * 1e3,
            par_s * 1e3
        );
        (
            format!("{{\"skipped\": false, \"cores\": {cores}, \"ratio\": {ratio:.3}}}"),
            pass,
        )
    };

    report
        .field_raw("seq_gate", format!("{{\"ratio\": {seq_ratio:.3}}}"))
        .field_raw("par8_gate", par8_gate)
        .write(&out_path("BENCH_aggregate.json"));

    if !seq_pass || !par8_pass {
        std::process::exit(1);
    }
}
