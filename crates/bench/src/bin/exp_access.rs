//! E6 — Section 6: MEDRANK "reads essentially as few elements of each
//! partial ranking as are necessary to determine the winner(s)".
//! Measures sorted-access depth vs database size, input count and skew,
//! against the full scan any Borda-style averaging needs and against TA.
//!
//! Predicted shape: MEDRANK's depth is governed by the winner's median
//! rank — roughly flat in n for concordant (correlated) inputs and
//! sub-linear for few-valued attributes — while averaging always pays
//! m·n. TA with random access is competitive but pays random accesses
//! MEDRANK never needs.

use bucketrank_access::medrank::medrank_top_k;
use bucketrank_access::ta::{ta_top_k, ScoreList};
use bucketrank_bench::Table;
use bucketrank_core::BucketOrder;
use bucketrank_workloads::random::{random_few_valued, random_zipf_valued};
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::{Rng, SeedableRng};

fn main() {
    println!("E6 — MEDRANK access cost vs database size (k = 1 unless noted)\n");
    let mut rng = Pcg32::seed_from_u64(6);

    let mut t = Table::new(&[
        "workload",
        "n",
        "m",
        "medrank depth",
        "medrank total",
        "full scan m*n",
        "% of scan",
    ]);

    // Uniform few-valued attributes.
    for &n in &[1_000usize, 10_000, 100_000] {
        for &m in &[3usize, 5, 9] {
            let inputs: Vec<BucketOrder> = (0..m)
                .map(|_| random_few_valued(&mut rng, n, 5))
                .collect();
            let r = medrank_top_k(&inputs, 1).unwrap();
            let total = r.stats.total_accesses();
            let scan = (m * n) as u64;
            t.row(&[
                "uniform 5-valued".to_owned(),
                n.to_string(),
                m.to_string(),
                r.stats.max_depth().to_string(),
                total.to_string(),
                scan.to_string(),
                format!("{:.2}%", 100.0 * total as f64 / scan as f64),
            ]);
        }
    }

    // Zipf-skewed attributes: huge top buckets ⇒ early majorities.
    for &n in &[10_000usize, 100_000] {
        let m = 5;
        let inputs: Vec<BucketOrder> = (0..m)
            .map(|_| random_zipf_valued(&mut rng, n, 8, 1.3))
            .collect();
        let r = medrank_top_k(&inputs, 1).unwrap();
        let total = r.stats.total_accesses();
        let scan = (m * n) as u64;
        t.row(&[
            "zipf 8-valued".to_owned(),
            n.to_string(),
            m.to_string(),
            r.stats.max_depth().to_string(),
            total.to_string(),
            scan.to_string(),
            format!("{:.2}%", 100.0 * total as f64 / scan as f64),
        ]);
    }

    // Correlated full rankings (noisy copies of one reference): winner
    // sits near the top everywhere, depth stays flat as n grows.
    for &n in &[1_000usize, 10_000, 100_000] {
        let m = 5;
        let inputs: Vec<BucketOrder> = (0..m)
            .map(|_| noisy_identity(&mut rng, n, n / 100))
            .collect();
        let r = medrank_top_k(&inputs, 1).unwrap();
        let total = r.stats.total_accesses();
        let scan = (m * n) as u64;
        t.row(&[
            "correlated full".to_owned(),
            n.to_string(),
            m.to_string(),
            r.stats.max_depth().to_string(),
            total.to_string(),
            scan.to_string(),
            format!("{:.2}%", 100.0 * total as f64 / scan as f64),
        ]);
    }
    t.print();

    // Top-k sweep and TA comparison on scored lists.
    println!("\ntop-k sweep (uniform 5-valued, n = 10_000, m = 5):");
    let mut t2 = Table::new(&["k", "medrank depth", "total accesses", "% of scan"]);
    let inputs: Vec<BucketOrder> = (0..5)
        .map(|_| random_few_valued(&mut rng, 10_000, 5))
        .collect();
    for &k in &[1usize, 5, 10, 50, 100] {
        let r = medrank_top_k(&inputs, k).unwrap();
        let total = r.stats.total_accesses();
        t2.row(&[
            k.to_string(),
            r.stats.max_depth().to_string(),
            total.to_string(),
            format!("{:.2}%", 100.0 * total as f64 / 50_000.0),
        ]);
    }
    t2.print();

    println!("\ninstance-optimality check: MEDRANK depth = certificate depth");
    println!("(the minimal depth at which any sequential algorithm could");
    println!(" certify the winners) on every workload above:");
    let mut ok = 0u32;
    for _ in 0..50 {
        let inputs: Vec<BucketOrder> = (0..5)
            .map(|_| random_few_valued(&mut rng, 1000, 4))
            .collect();
        let r = medrank_top_k(&inputs, 3).unwrap();
        let cert = bucketrank_access::medrank::certificate_depth(&inputs, 3).unwrap();
        assert_eq!(r.stats.max_depth(), cert);
        ok += 1;
    }
    println!("  {ok}/50 random instances: depth == certificate (ratio 1.00)");

    println!("\ndelivery-mode ablation (uniform 5-valued, n = 10_000, m = 5, k = 1):");
    let mut t3 = Table::new(&["mode", "total accesses", "% of scan"]);
    let elem = medrank_top_k(&inputs, 1).unwrap();
    let buck = bucketrank_access::medrank::medrank_top_k_buckets(&inputs, 1).unwrap();
    for (label, total) in [
        ("element-at-a-time", elem.stats.total_accesses()),
        ("bucket-atomic", buck.stats.total_accesses()),
    ] {
        t3.row(&[
            label.to_owned(),
            total.to_string(),
            format!("{:.2}%", 100.0 * total as f64 / 50_000.0),
        ]);
    }
    t3.print();
    println!("(bucket-atomic pays each entered bucket in full — the faithful");
    println!(" cost model when a tie has no revealable internal order)");

    println!("\nTA baseline on correlated numeric scores (n = 10_000, m = 3, k = 1):");
    let n = 10_000;
    let lists: Vec<ScoreList> = (0..3)
        .map(|_| {
            let scores: Vec<f64> = (0..n)
                .map(|i| (n - i) as f64 / n as f64 + rng.gen_range(0.0..0.1))
                .collect();
            ScoreList::from_scores(&scores).unwrap()
        })
        .collect();
    let ta = ta_top_k(&lists, 1).unwrap();
    let sorted: u64 = ta.stats.sorted_depth.iter().sum();
    let random: u64 = ta.stats.random_accesses.iter().sum();
    println!("  TA: {sorted} sorted + {random} random accesses");
    println!("  (MEDRANK uses sorted access only — the database-friendly mode");
    println!("   the paper targets; averaging-based Borda must scan all 30_000.)");
}

/// A full ranking that perturbs the identity by `swaps` random adjacent
/// transpositions — a cheap correlated-input generator for large n.
fn noisy_identity(rng: &mut Pcg32, n: usize, swaps: usize) -> BucketOrder {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for _ in 0..swaps {
        let i = rng.gen_range(0..n - 1);
        perm.swap(i, i + 1);
    }
    BucketOrder::from_permutation(&perm).expect("perturbed identity is a permutation")
}
