//! E9 — Theorem 5 / Proposition 6: the Hausdorff characterization.
//! Exhaustively certifies, for every pair of bucket orders on small
//! domains, that (a) the constructed witness pairs attain the true
//! max-min over exponentially many refinements, for both F and K, and
//! (b) the closed form `|U| + max{|S|,|T|}` equals `KHaus`; then reports
//! the cost of the closed form at scale.

use bucketrank_bench::{timed, Table};
use bucketrank_core::consistent::all_bucket_orders;
use bucketrank_core::refine::count_full_refinements;
use bucketrank_metrics::hausdorff::{fhaus, fhaus_brute, khaus, khaus_brute, khaus_theorem5};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E9 — Hausdorff characterization (Theorem 5, Proposition 6)\n");

    let mut t = Table::new(&[
        "n",
        "pairs",
        "max refinement set",
        "FHaus matches brute",
        "KHaus matches brute",
        "Prop 6 = Thm 5",
    ]);
    for n in 2..=4 {
        let orders = all_bucket_orders(n);
        let mut pairs = 0u64;
        let mut max_ref: u128 = 0;
        for a in &orders {
            max_ref = max_ref.max(count_full_refinements(a).unwrap());
            for b in &orders {
                assert_eq!(fhaus(a, b).unwrap(), fhaus_brute(a, b).unwrap());
                assert_eq!(khaus(a, b).unwrap(), khaus_brute(a, b).unwrap());
                assert_eq!(khaus(a, b).unwrap(), khaus_theorem5(a, b).unwrap());
                pairs += 1;
            }
        }
        t.row(&[
            n.to_string(),
            pairs.to_string(),
            max_ref.to_string(),
            "yes".to_owned(),
            "yes".to_owned(),
            "yes".to_owned(),
        ]);
    }
    t.print();

    // n = 5 sampled brute force (the refinement sets reach 120 each).
    let orders5 = all_bucket_orders(5);
    let mut rng = Pcg32::seed_from_u64(9);
    use bucketrank_workloads::rng::Rng;
    let mut checked = 0;
    for _ in 0..300 {
        let a = &orders5[rng.gen_range(0..orders5.len())];
        let b = &orders5[rng.gen_range(0..orders5.len())];
        assert_eq!(fhaus(a, b).unwrap(), fhaus_brute(a, b).unwrap());
        assert_eq!(khaus(a, b).unwrap(), khaus_brute(a, b).unwrap());
        checked += 1;
    }
    println!("\nn = 5: {checked} random pairs against brute force — all matched.");

    // Scale: the characterization makes an exponential max-min linear-ish.
    println!("\ncost of KHaus/FHaus via characterization at scale:");
    let mut t2 = Table::new(&["n", "KHaus (µs)", "FHaus (µs)", "refinements (lower bnd)"]);
    for &n in &[100usize, 1_000, 10_000] {
        let a = random_few_valued(&mut rng, n, 4);
        let b = random_few_valued(&mut rng, n, 4);
        let reps = 10;
        let (_, tk) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(khaus(&a, &b).unwrap());
            }
        });
        let (_, tf) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(fhaus(&a, &b).unwrap());
            }
        });
        let refs = count_full_refinements(&a)
            .map(|c| format!("{:.3e}", c as f64))
            .unwrap_or_else(|| "> 10^38".to_owned());
        t2.row(&[
            n.to_string(),
            format!("{:.1}", tk / reps as f64 * 1e6),
            format!("{:.1}", tf / reps as f64 * 1e6),
            refs,
        ]);
    }
    t2.print();
    println!("\nthe max-min over astronomically many refinements is computed in");
    println!("microseconds — the polynomial-time claim of Section 4.");
}
