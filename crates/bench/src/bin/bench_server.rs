//! Loopback throughput and latency for the TCP ranking service
//! (`bucketrank-server`) — the measurement backing the server layer.
//!
//! One in-process server on an ephemeral port, then two request mixes
//! driven by concurrent blocking clients (one connection each):
//!
//! * **edit_heavy**: 80% voter edits (replace), 20% snapshot reads —
//!   the streaming-ingest regime, serialized per session by the edit
//!   mutex;
//! * **read_heavy**: 5% edits, 95% reads (median order, top-k, Kemeny
//!   cost, pairwise prepared metrics) — the query-fanout regime the
//!   snapshot-publish read path exists for;
//! * **million_user_day**: thousands of sessions with Zipf-skewed
//!   popularity, 10% edits / 90% reads — the wide-session-table
//!   regime, recording p99 and throughput per core.
//!
//! Each client works its own session so the mixes measure service
//! throughput rather than single-mutex contention. Per-request wall
//! latencies feed p50/p99; the acceptance gate is ≥10k requests/s on
//! the read-heavy mix.
//!
//! A **read_heavy_1shard** pass then reruns the read-heavy mix against
//! a single-shard server bound in the same run, alternating rounds
//! with the sharded server: the best *paired* round ratio must hold
//! ≥0.95× (the sharding gate; pairing adjacent rounds keeps scheduler
//! noise on loaded one-core boxes out of the quotient).
//!
//! Protocol v2 regimes then rerun the read-heavy op distribution:
//! **read_heavy_pipelined** (32 outstanding v1 frames per connection),
//! **read_heavy_batched** (8 outstanding `Batch` frames of 16 ops), and
//! **read_heavy_batched_idleflood** (the batched mix with hundreds of
//! idle connections parked in the readiness loop). The hard v2 gate:
//! the best no-flood pipelined/batched throughput must be ≥ 2× the
//! single-outstanding read-heavy throughput from the *same run*.
//!
//! Before the mixes, one client exercises every request type once
//! (the same round-trip set the CI smoke gate drives), and the run
//! ends with a wire `Shutdown` followed by a drained `Server::shutdown`
//! — so a hung drain fails the benchmark rather than the test suite.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin
//! bench_server`. Results go to the perf trajectory file
//! `BENCH_server.json` (override with `BUCKETRANK_BENCH_OUT`);
//! `BUCKETRANK_BENCH_FAST=1` runs the smoke-gate pass on a shrunken
//! request budget.

use bucketrank_bench::report::{fast_mode, out_path, BenchReport};
use bucketrank_server::{Client, MetricKind, Request, Server, ServerConfig, WirePolicy};
use bucketrank_workloads::random::{random_few_valued, ZipfSampler};
use bucketrank_workloads::rng::{Pcg32, Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// p-th percentile (0..=100) of an unsorted latency sample, in ns.
fn percentile_ns(latencies: &mut [u64], p: f64) -> u64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank]
}

/// One round trip of every request type — the smoke pass. Returns the
/// number of requests issued.
fn smoke_all_request_types(addr: SocketAddr, n: usize) -> u64 {
    let mut rng = Pcg32::seed_from_u64(7);
    let mut c = Client::connect(addr).expect("connect");
    let r1 = random_few_valued(&mut rng, n, 4);
    let r2 = random_few_valued(&mut rng, n, 4);
    let mut count = 0u64;

    c.ping().expect("ping");
    c.create_session("smoke", n, WirePolicy::Lower).expect("create");
    let a = c.push_voter("smoke", &r1).expect("push");
    let b = c.push_voter("smoke", &r2).expect("push");
    c.replace_voter("smoke", a, &r2).expect("replace");
    c.median_order("smoke").expect("median");
    c.top_k("smoke", 2.min(n)).expect("top_k");
    c.kemeny_cost_x2("smoke", &r1).expect("kemeny");
    count += 8;
    for metric in MetricKind::ALL {
        c.pair_metric_x2("smoke", metric, a, b).expect("pair metric");
        count += 1;
    }
    c.remove_voter("smoke", b).expect("remove");
    c.drop_session("smoke").expect("drop");
    count + 2
}

/// Drives one mix and returns `(elapsed_seconds, latencies_ns)`.
fn run_mix(
    addr: SocketAddr,
    name: &str,
    clients: usize,
    per_client: usize,
    edit_pct: u32,
    n: usize,
) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let session = format!("{name}-{ci}");
            std::thread::spawn(move || -> Vec<u64> {
                let mut rng = Pcg32::seed_from_u64(0x5e7 + ci as u64);
                let mut c = Client::connect(addr).expect("connect");
                c.create_session(&session, n, WirePolicy::Lower)
                    .expect("create");
                // Seed a handful of voters so reads have a profile.
                let voters: Vec<u64> = (0..4)
                    .map(|_| {
                        let r = random_few_valued(&mut rng, n, 4);
                        c.push_voter(&session, &r).expect("seed push")
                    })
                    .collect();
                let candidate = random_few_valued(&mut rng, n, 4);

                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let t0 = Instant::now();
                    if rng.gen_range(0..100) < edit_pct {
                        let v = voters[i % voters.len()];
                        let r = random_few_valued(&mut rng, n, 4);
                        c.replace_voter(&session, v, &r)
                            .unwrap_or_else(|e| panic!("replace: {e}"));
                    } else {
                        match i % 4 {
                            0 => {
                                c.median_order(&session).expect("median");
                            }
                            1 => {
                                c.top_k(&session, 1 + i % n).expect("top_k");
                            }
                            2 => {
                                c.kemeny_cost_x2(&session, &candidate).expect("kemeny");
                            }
                            _ => {
                                let m = MetricKind::ALL[i % 4];
                                c.pair_metric_x2(&session, m, voters[0], voters[1])
                                    .expect("pair");
                            }
                        }
                    }
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
                c.drop_session(&session).expect("drop");
                latencies
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(clients * per_client);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    (start.elapsed().as_secs_f64(), latencies)
}

/// The **million_user_day** mix: a session table thousands of entries
/// deep with Zipf-skewed popularity — a small head of hot sessions
/// takes most of the traffic while the long tail sits cold. Each
/// client draws a session per request from its own [`ZipfSampler`]
/// (10% edits as push+remove pairs, 90% reads). Setup pre-creates and
/// seeds every session and teardown drops them, both partitioned
/// across the client pool and excluded from the timed window.
///
/// Returns `(elapsed_seconds, latencies_ns, setup_teardown_requests)`;
/// timed request count is `latencies.len()`.
fn run_million_user_day(
    addr: SocketAddr,
    clients: usize,
    per_client: usize,
    sessions: usize,
    n: usize,
) -> (f64, Vec<u64>, u64) {
    let setup: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || -> u64 {
                let mut rng = Pcg32::seed_from_u64(0xda7 + ci as u64);
                let mut c = Client::connect(addr).expect("connect");
                let mut count = 0u64;
                let mut idx = ci;
                while idx < sessions {
                    let session = format!("mud-{idx}");
                    c.create_session(&session, n, WirePolicy::Lower)
                        .expect("create");
                    for _ in 0..2 {
                        let r = random_few_valued(&mut rng, n, 4);
                        c.push_voter(&session, &r).expect("seed push");
                    }
                    count += 3;
                    idx += clients;
                }
                count
            })
        })
        .collect();
    let mut untimed = 0u64;
    for h in setup {
        untimed += h.join().expect("setup thread");
    }

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || -> Vec<u64> {
                let mut rng = Pcg32::seed_from_u64(0x10ad + ci as u64);
                let zipf = ZipfSampler::new(sessions, 1.1);
                let mut c = Client::connect(addr).expect("connect");
                let candidate = random_few_valued(&mut rng, n, 4);
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let session = format!("mud-{}", zipf.sample(&mut rng));
                    if rng.gen_range(0..100) < 10 {
                        let r = random_few_valued(&mut rng, n, 4);
                        let t0 = Instant::now();
                        let v = c.push_voter(&session, &r).expect("push");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        let t0 = Instant::now();
                        c.remove_voter(&session, v).expect("remove");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    } else {
                        let t0 = Instant::now();
                        match i % 3 {
                            0 => {
                                c.median_order(&session).expect("median");
                            }
                            1 => {
                                c.top_k(&session, 1 + i % n).expect("top_k");
                            }
                            _ => {
                                c.kemeny_cost_x2(&session, &candidate).expect("kemeny");
                            }
                        }
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * per_client);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();

    let teardown: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || -> u64 {
                let mut c = Client::connect(addr).expect("connect");
                let mut count = 0u64;
                let mut idx = ci;
                while idx < sessions {
                    c.drop_session(&format!("mud-{idx}")).expect("drop");
                    count += 1;
                    idx += clients;
                }
                count
            })
        })
        .collect();
    for h in teardown {
        untimed += h.join().expect("teardown thread");
    }
    (elapsed, latencies, untimed)
}

/// Builds the i-th request of the read-heavy mix — the same op
/// distribution `run_mix` drives synchronously, as a value so it can
/// be pipelined or batched.
fn mix_request(
    rng: &mut Pcg32,
    session: &str,
    voters: &[u64],
    candidate: &bucketrank_core::BucketOrder,
    edit_pct: u32,
    n: usize,
    i: usize,
) -> Request {
    if rng.gen_range(0..100) < edit_pct {
        Request::ReplaceVoter {
            session: session.to_owned(),
            voter: voters[i % voters.len()],
            ranking: random_few_valued(rng, n, 4),
        }
    } else {
        match i % 4 {
            0 => Request::MedianOrder {
                session: session.to_owned(),
            },
            1 => Request::TopK {
                session: session.to_owned(),
                k: (1 + i % n) as u32,
            },
            2 => Request::KemenyCost {
                session: session.to_owned(),
                candidate: candidate.clone(),
            },
            _ => Request::PairMetric {
                session: session.to_owned(),
                metric: MetricKind::ALL[i % 4],
                voter_a: voters[0],
                voter_b: voters[1],
            },
        }
    }
}

/// Drives one **pipelined** mix: `depth` outstanding frames per
/// connection, each frame carrying `batch` ops (1 → v1 single frames).
/// Returns `(elapsed_seconds, total_ops)`.
fn run_pipelined_mix(
    addr: SocketAddr,
    name: &str,
    clients: usize,
    per_client: usize,
    edit_pct: u32,
    n: usize,
    (depth, batch): (usize, usize),
) -> (f64, u64) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let session = format!("{name}-{ci}");
            std::thread::spawn(move || -> u64 {
                let mut rng = Pcg32::seed_from_u64(0x9e77 + ci as u64);
                let mut c = Client::connect(addr).expect("connect");
                c.create_session(&session, n, WirePolicy::Lower)
                    .expect("create");
                let voters: Vec<u64> = (0..4)
                    .map(|_| {
                        let r = random_few_valued(&mut rng, n, 4);
                        c.push_voter(&session, &r).expect("seed push")
                    })
                    .collect();
                let candidate = random_few_valued(&mut rng, n, 4);

                let mut pipe = c.pipeline(depth);
                let mut sent_frames = 0u64;
                let mut answered = 0u64;
                let mut i = 0usize;
                while i < per_client {
                    let take = batch.min(per_client - i);
                    let reply = if take == 1 {
                        let req =
                            mix_request(&mut rng, &session, &voters, &candidate, edit_pct, n, i);
                        pipe.send(&req).expect("pipelined send")
                    } else {
                        let reqs: Vec<Request> = (0..take)
                            .map(|j| {
                                mix_request(
                                    &mut rng, &session, &voters, &candidate, edit_pct, n,
                                    i + j,
                                )
                            })
                            .collect();
                        pipe.send_batch(&reqs).expect("pipelined batch send")
                    };
                    sent_frames += 1;
                    if reply.is_some() {
                        answered += 1;
                    }
                    i += take;
                }
                answered += pipe.drain().expect("drain").len() as u64;
                assert_eq!(answered, sent_frames, "every frame answered in order");
                drop(pipe);
                c.drop_session(&session).expect("drop");
                per_client as u64
            })
        })
        .collect();

    let mut ops = 0u64;
    for h in handles {
        ops += h.join().expect("client thread");
    }
    (start.elapsed().as_secs_f64(), ops)
}

fn main() {
    let fast = fast_mode();
    // Acceptance shape: 32-element sessions, 4 clients, 4000 requests
    // each per mix. The smoke gate shrinks the budget so CI stays
    // quick.
    let n = 32;
    let clients = if fast { 2 } else { 4 };
    let per_client = if fast { 400 } else { 4000 };

    // Pipelined mixes run a larger budget: per-op cost is far lower, so
    // more ops are needed for a stable elapsed time.
    let per_client_pipelined = if fast { per_client } else { per_client * 4 };
    let idle_conns = if fast { 64 } else { 512 };
    let mud_sessions = if fast { 256 } else { 4096 };

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: clients.max(2),
            // Room for the idle-flood mix on top of the working clients.
            max_connections: idle_conns + 64,
            // Room for the million-user-day session table; doubled so
            // an uneven shard hash can't trip the per-shard cap.
            max_sessions: mud_sessions * 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("bench_server on {addr} ({clients} clients × {per_client} requests per mix)");

    let smoke_requests = smoke_all_request_types(addr, n);
    println!("  smoke: every request type round-tripped ({smoke_requests} requests)");

    let mut mix_rows: Vec<String> = Vec::new();
    let mixes = [("edit_heavy", 80u32), ("read_heavy", 5u32)];
    let mut read_heavy_rps = 0.0f64;
    for (name, edit_pct) in mixes {
        let (elapsed, mut latencies) = run_mix(addr, name, clients, per_client, edit_pct, n);
        let requests = latencies.len() as u64;
        let rps = requests as f64 / elapsed;
        let p50_us = percentile_ns(&mut latencies, 50.0) as f64 / 1e3;
        let p99_us = percentile_ns(&mut latencies, 99.0) as f64 / 1e3;
        println!(
            "  {name}: {rps:.0} req/s over {requests} requests \
             (p50 {p50_us:.1}µs, p99 {p99_us:.1}µs)"
        );
        mix_rows.push(format!(
            "{{\"name\":\"{name}\",\"edit_pct\":{edit_pct},\"clients\":{clients},\
             \"requests\":{requests},\"elapsed_s\":{elapsed:.4},\
             \"throughput_rps\":{rps:.1},\"p50_us\":{p50_us:.2},\"p99_us\":{p99_us:.2}}}"
        ));
        if name == "read_heavy" {
            read_heavy_rps = rps;
        }
    }

    // Million-user-day slice (ROADMAP item 1): Zipf-skewed traffic over
    // a session table thousands of entries deep — most sessions cold,
    // a hot head taking the bulk of the requests. Recorded, not gated:
    // the number to watch is throughput per core as the table grows.
    let mud_per_client = if fast { per_client } else { per_client / 2 };
    let (elapsed, mut latencies, mud_untimed) =
        run_million_user_day(addr, clients, mud_per_client, mud_sessions, n);
    let mud_timed = latencies.len() as u64;
    let mud_requests = mud_untimed + mud_timed;
    let rps = mud_timed as f64 / elapsed;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let rps_per_core = rps / cores as f64;
    let p50_us = percentile_ns(&mut latencies, 50.0) as f64 / 1e3;
    let p99_us = percentile_ns(&mut latencies, 99.0) as f64 / 1e3;
    println!(
        "  million_user_day: {rps:.0} req/s over {mud_timed} requests across \
         {mud_sessions} sessions (p50 {p50_us:.1}µs, p99 {p99_us:.1}µs, \
         {rps_per_core:.0} req/s/core on {cores} cores)"
    );
    mix_rows.push(format!(
        "{{\"name\":\"million_user_day\",\"edit_pct\":10,\"clients\":{clients},\
         \"sessions\":{mud_sessions},\"requests\":{mud_timed},\"elapsed_s\":{elapsed:.4},\
         \"throughput_rps\":{rps:.1},\"throughput_rps_per_core\":{rps_per_core:.1},\
         \"cores\":{cores},\"p50_us\":{p50_us:.2},\"p99_us\":{p99_us:.2}}}"
    ));

    // Sharding gate: the same read-heavy mix against a single-shard
    // server bound in the same run. On a noisy (especially one-core)
    // box a single short measurement of each side swings by ±10%, so
    // the two sides are measured in alternating rounds and the gate
    // compares best-of-N — scheduler-noise dips drop out while a real
    // routing-layer regression depresses every sharded round alike.
    let single = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: clients.max(2),
            shards: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind single-shard loopback");
    let single_addr = single.local_addr();
    let rounds = if fast { 3 } else { 2 };
    // Short fast-mode mixes are too noisy to gate on; give the gate
    // rounds a full-size budget even in fast mode.
    let gate_per_client = if fast { per_client * 4 } else { per_client };
    let mut single_shard_rps = 0.0f64;
    let mut shard_ratio = 0.0f64;
    let mut single_row: Option<(f64, u64, f64, f64)> = None;
    for round in 0..rounds {
        let (elapsed, mut latencies) = run_mix(
            single_addr,
            &format!("read_heavy_1shard_r{round}"),
            clients,
            gate_per_client,
            5,
            n,
        );
        let single_rps = latencies.len() as f64 / elapsed;
        if single_rps > single_shard_rps {
            single_shard_rps = single_rps;
            let p50_us = percentile_ns(&mut latencies, 50.0) as f64 / 1e3;
            let p99_us = percentile_ns(&mut latencies, 99.0) as f64 / 1e3;
            single_row = Some((elapsed, latencies.len() as u64, p50_us, p99_us));
        }
        let (elapsed, latencies) = run_mix(
            addr,
            &format!("read_heavy_4shard_r{round}"),
            clients,
            gate_per_client,
            5,
            n,
        );
        let sharded_rps = latencies.len() as f64 / elapsed;
        // Paired ratio: the two measurements are adjacent in time, so
        // a load spike drags both and drops out of the quotient.
        shard_ratio = shard_ratio.max(sharded_rps / single_rps);
    }
    let (elapsed, single_requests, p50_us, p99_us) =
        single_row.expect("at least one single-shard round");
    println!(
        "  read_heavy_1shard: {single_shard_rps:.0} req/s over {single_requests} requests, \
         best of {rounds} (p50 {p50_us:.1}µs, p99 {p99_us:.1}µs)"
    );
    mix_rows.push(format!(
        "{{\"name\":\"read_heavy_1shard\",\"edit_pct\":5,\"clients\":{clients},\"shards\":1,\
         \"rounds\":{rounds},\"requests\":{single_requests},\"elapsed_s\":{elapsed:.4},\
         \"throughput_rps\":{single_shard_rps:.1},\"p50_us\":{p50_us:.2},\"p99_us\":{p99_us:.2}}}"
    ));
    let mut c = Client::connect(single_addr).expect("connect for shutdown");
    c.shutdown_server().expect("wire shutdown");
    single.shutdown();

    // Protocol v2 regimes over the same read-heavy op distribution:
    // K-outstanding pipelining of v1 singles, batch frames, and the
    // batched mix again while hundreds of idle connections sit in the
    // readiness loop's cold tier.
    let mut idle_flood: Vec<TcpStream> = Vec::new();
    let pipelined_mixes: [(&str, usize, usize, usize); 3] = [
        ("read_heavy_pipelined", 32, 1, 0),
        ("read_heavy_batched", 8, 16, 0),
        ("read_heavy_batched_idleflood", 8, 16, idle_conns),
    ];
    let mut pipelined_best = 0.0f64;
    for (name, depth, batch, idle) in pipelined_mixes {
        while idle_flood.len() < idle {
            let stream = TcpStream::connect(addr).expect("idle connect");
            stream.set_nodelay(true).expect("nodelay");
            idle_flood.push(stream);
        }
        let (elapsed, ops) =
            run_pipelined_mix(addr, name, clients, per_client_pipelined, 5, n, (depth, batch));
        let rps = ops as f64 / elapsed;
        println!(
            "  {name}: {rps:.0} op/s over {ops} ops \
             (depth {depth}, batch {batch}, {idle} idle conns)"
        );
        mix_rows.push(format!(
            "{{\"name\":\"{name}\",\"edit_pct\":5,\"clients\":{clients},\
             \"depth\":{depth},\"batch\":{batch},\"idle_conns\":{idle},\
             \"requests\":{ops},\"elapsed_s\":{elapsed:.4},\
             \"throughput_rps\":{rps:.1}}}"
        ));
        if idle == 0 {
            pipelined_best = pipelined_best.max(rps);
        }
    }
    drop(idle_flood);

    // Graceful shutdown: wire request, then a drained join. A hang
    // here (leaked connection thread, stuck worker) blocks the
    // benchmark and fails CI by timeout rather than hiding.
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.shutdown_server().expect("wire shutdown");
    let stats = server.shutdown();
    assert!(
        stats.requests
            >= smoke_requests
                + mud_requests
                + 2 * (clients * per_client) as u64
                + 3 * (clients * per_client_pipelined) as u64,
        "drained stats undercount: {stats:?}"
    );
    println!(
        "  shutdown drained: {} requests over {} connections \
         ({} busy rejections, {} protocol errors)",
        stats.requests, stats.connections, stats.rejected_busy, stats.protocol_errors
    );

    BenchReport::new("bench_server")
        .field_usize("n", n)
        .field_usize("shards", bucketrank_server::DEFAULT_SHARDS)
        .field_usize("clients", clients)
        .field_usize("per_client", per_client)
        .field_usize("per_client_pipelined", per_client_pipelined)
        .field_bool("fast", fast)
        .field_usize("total_requests", stats.requests as usize)
        .array("mixes", &mix_rows)
        .write(&out_path("BENCH_server.json"));

    let verdict = if read_heavy_rps >= 10_000.0 { "PASS" } else { "FAIL" };
    println!("acceptance gate read_heavy >= 10000 req/s: {read_heavy_rps:.0} [{verdict}]");

    // Protocol v2 acceptance: pipelining/batching must at least double
    // the single-outstanding read-heavy throughput measured in the
    // *same run* (not against a stale baseline). This one is a hard
    // gate — CI runs the fast pass under `set -e`.
    let speedup = pipelined_best / read_heavy_rps;
    let v2_verdict = if speedup >= 2.0 { "PASS" } else { "FAIL" };
    println!(
        "acceptance gate pipelined/batched read_heavy >= 2x single-outstanding: \
         {pipelined_best:.0} vs {read_heavy_rps:.0} ({speedup:.2}x) [{v2_verdict}]"
    );
    // Sharding acceptance: routing every request through the shard map
    // must not cost read-heavy throughput against the single-shard
    // build measured in the same run — best paired round ratio, 0.95×
    // noise floor.
    let shard_verdict = if shard_ratio >= 0.95 { "PASS" } else { "FAIL" };
    println!(
        "acceptance gate {}-shard read_heavy >= 0.95x single-shard (best paired of {rounds}): \
         {shard_ratio:.2}x (single-shard best {single_shard_rps:.0} req/s) [{shard_verdict}]",
        bucketrank_server::DEFAULT_SHARDS
    );
    if speedup < 2.0 || shard_ratio < 0.95 {
        std::process::exit(1);
    }
}
