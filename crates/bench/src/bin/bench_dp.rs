//! Timing benches for the optimal-bucketing dynamic program
//! (experiment E5's microbenchmark counterpart): the paper's Figure-1
//! linear-space algorithm vs the table and prefix-sum variants.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin bench_dp`.

use bucketrank_aggregate::dp::{
    optimal_bucketing, optimal_bucketing_prefix, optimal_bucketing_table,
};
use bucketrank_bench::timing::{group, Sampler};
use bucketrank_core::Pos;
use bucketrank_workloads::rng::{Pcg32, Rng, SeedableRng};

fn scores(rng: &mut Pcg32, n: usize) -> Vec<Pos> {
    (0..n)
        .map(|_| Pos::from_half_units(rng.gen_range(0..(4 * n as i64 + 2))))
        .collect()
}

fn main() {
    let s = Sampler::default();

    group("optimal_bucketing");
    let mut rng = Pcg32::seed_from_u64(51);
    for n in [128usize, 512, 2048] {
        let f = scores(&mut rng, n);
        s.bench(&format!("optimal_bucketing/figure1/{n}"), || {
            optimal_bucketing(&f)
        });
        s.bench(&format!("optimal_bucketing/table/{n}"), || {
            optimal_bucketing_table(&f)
        });
        s.bench(&format!("optimal_bucketing/prefix/{n}"), || {
            optimal_bucketing_prefix(&f)
        });
    }

    // Ablation: clustered scores (few natural buckets) vs spread scores.
    group("dp_score_structure (n = 1024)");
    let mut rng = Pcg32::seed_from_u64(52);
    let n = 1024;
    let clustered: Vec<Pos> = (0..n)
        .map(|_| Pos::from_half_units(rng.gen_range(0..5) * 400 + rng.gen_range(0..10)))
        .collect();
    let spread = scores(&mut rng, n);
    s.bench("dp_score_structure/clustered", || {
        optimal_bucketing(&clustered)
    });
    s.bench("dp_score_structure/spread", || optimal_bucketing(&spread));
}
