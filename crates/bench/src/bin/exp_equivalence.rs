//! E1 — Theorem 7: the four metrics are within constant multiples of
//! each other. Measures the observed ratio ranges exhaustively on small
//! domains and on random bucket orders up to n = 640, and checks them
//! against the proved intervals:
//!
//!   (5) Kprof/Fprof ∈ [1/2, 1]     (4) KHaus/FHaus ∈ [1/2, 1]
//!   (6) Kprof/KHaus ∈ [1/2, 1]     (derived) Fprof/FHaus ∈ [1/4, 2]

use bucketrank_bench::Table;
use bucketrank_core::consistent::all_bucket_orders;
use bucketrank_core::BucketOrder;
use bucketrank_metrics::{footrule, hausdorff, kendall};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

struct RatioRange {
    lo: f64,
    hi: f64,
}

impl RatioRange {
    fn new() -> Self {
        RatioRange {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }
    fn update(&mut self, num: f64, den: f64) {
        if den > 0.0 {
            let r = num / den;
            self.lo = self.lo.min(r);
            self.hi = self.hi.max(r);
        }
    }
    fn cells(&self) -> [String; 2] {
        [format!("{:.4}", self.lo), format!("{:.4}", self.hi)]
    }
}

struct Ranges {
    kp_fp: RatioRange,
    kh_fh: RatioRange,
    kp_kh: RatioRange,
    fp_fh: RatioRange,
}

impl Ranges {
    fn new() -> Self {
        Ranges {
            kp_fp: RatioRange::new(),
            kh_fh: RatioRange::new(),
            kp_kh: RatioRange::new(),
            fp_fh: RatioRange::new(),
        }
    }
    fn update(&mut self, a: &BucketOrder, b: &BucketOrder) {
        let kp = kendall::kprof_x2(a, b).unwrap() as f64 / 2.0;
        let fp = footrule::fprof_x2(a, b).unwrap() as f64 / 2.0;
        let kh = hausdorff::khaus(a, b).unwrap() as f64;
        let fh = hausdorff::fhaus(a, b).unwrap() as f64;
        self.kp_fp.update(kp, fp);
        self.kh_fh.update(kh, fh);
        self.kp_kh.update(kp, kh);
        self.fp_fh.update(fp, fh);
        // Hard assertions of the proved bounds on every pair.
        assert!(kp <= fp && fp <= 2.0 * kp || kp == 0.0);
        assert!(kh <= fh && fh <= 2.0 * kh || kh == 0.0);
        assert!(kp <= kh && kh <= 2.0 * kp || kp == 0.0);
    }
}

fn main() {
    println!("E1 — Theorem 7 metric equivalence (paper bounds in brackets)\n");

    let mut t = Table::new(&[
        "workload",
        "pairs",
        "Kp/Fp min [0.5]",
        "max [1]",
        "Kh/Fh min [0.5]",
        "max [1]",
        "Kp/Kh min [0.5]",
        "max [1]",
        "Fp/Fh min [0.25]",
        "max [2]",
    ]);

    // Exhaustive small domains.
    for n in 2..=5 {
        let orders = all_bucket_orders(n);
        let mut r = Ranges::new();
        let mut pairs = 0u64;
        for (i, a) in orders.iter().enumerate() {
            for b in &orders[i + 1..] {
                r.update(a, b);
                pairs += 1;
            }
        }
        push_row(&mut t, &format!("exhaustive n={n}"), pairs, &r);
    }

    // Random few-valued bucket orders at larger n.
    let mut rng = Pcg32::seed_from_u64(1);
    for n in [10usize, 20, 40, 80, 160, 320, 640] {
        let mut r = Ranges::new();
        let trials = if n <= 80 { 400 } else { 100 };
        for _ in 0..trials {
            let a = random_few_valued(&mut rng, n, 4);
            let b = random_few_valued(&mut rng, n, 4);
            r.update(&a, &b);
        }
        push_row(&mut t, &format!("random n={n} (4 levels)"), trials, &r);
    }

    t.print();
    println!("\nall pairwise bounds of Theorem 7 held on every pair tested.");
    println!("shape check: Kprof/Fprof and KHaus/FHaus span toward both");
    println!("endpoints on exhaustive domains (bounds are tight), and");
    println!("concentrate near the middle for random tie-heavy inputs.");
}

fn push_row(t: &mut Table, label: &str, pairs: u64, r: &Ranges) {
    let [a, b] = r.kp_fp.cells();
    let [c, d] = r.kh_fh.cells();
    let [e, f] = r.kp_kh.cells();
    let [g, h] = r.fp_fh.cells();
    t.row(&[
        label.to_owned(),
        pairs.to_string(),
        a,
        b,
        c,
        d,
        e,
        f,
        g,
        h,
    ]);
}
