//! Prepared-kernel batch engine vs the per-pair direct path, on the
//! full pairwise `DistanceMatrix` workload, sequential and parallel —
//! the measurement backing the `PreparedRanking` layer.
//!
//! Matrix rows also report **effective bytes/s** — the irreducible
//! per-pair traffic (both rankings' 4-byte-per-element prepared maps
//! read once) ÷ time — and the report carries a `roofline` section
//! with the machine's measured memcpy bandwidth (see
//! `bucketrank_bench::roofline` for the byte-counting convention).
//!
//! Run with `cargo run --release -p bucketrank-bench --bin
//! bench_batch_prepared`. Results are appended to the perf trajectory
//! file `BENCH_metrics.json` (override with `BUCKETRANK_BENCH_OUT`);
//! `BUCKETRANK_BENCH_M` / `BUCKETRANK_BENCH_N` override the workload
//! shape, and `BUCKETRANK_BENCH_FAST=1` runs the smoke-gate pass. A
//! hard gate runs in both modes: the dispatched `Kprof` matrix (the
//! counting lane on this bucketed workload) must hold ≥1.5×
//! single-thread over the forced sort-lane baseline.

use bucketrank_bench::report::{env_usize, fast_mode, out_path, BenchReport};
use bucketrank_bench::roofline::memcpy_bandwidth;
use bucketrank_bench::timing::{group, Measurement, Sampler};
use bucketrank_core::BucketOrder;
use bucketrank_metrics::batch::{
    pairwise_matrix, pairwise_matrix_parallel, pairwise_matrix_parallel_with,
    pairwise_matrix_with, prepare_all, weighted_pairwise_matrix,
    weighted_pairwise_matrix_parallel, BatchMetric, WeightedMetric,
};
use bucketrank_metrics::prepared::pair_counts_fenwick_in;
use bucketrank_metrics::{PairArena, Weights};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, SeedableRng};

/// The `Kprof` matrix with the pair-statistics lane pinned to the
/// Fenwick sort kernel — the pre-dispatcher baseline the gate measures
/// against. Mirrors `pairwise_matrix` shape-for-shape: prepared views,
/// one arena, one dense upper-triangle sweep.
fn kprof_matrix_fenwick(profile: &[BucketOrder]) -> Vec<u64> {
    let prepared = prepare_all(profile).unwrap();
    let mut arena = PairArena::new();
    let m = prepared.len();
    let mut out = vec![0u64; m * m];
    for i in 0..m {
        for j in i + 1..m {
            let c = pair_counts_fenwick_in(&mut arena, &prepared[i], &prepared[j]).unwrap();
            let d = 2 * c.discordant + c.tied_exactly_one();
            out[i * m + j] = d;
            out[j * m + i] = d;
        }
    }
    out
}

fn main() {
    let fast = fast_mode();
    // Acceptance workload: m ≥ 64 rankings over n ≥ 512 elements. The
    // smoke gate shrinks it so CI stays quick; the committed baseline
    // uses the full shape.
    let (def_m, def_n) = if fast { (24, 96) } else { (64, 512) };
    let m = env_usize("BUCKETRANK_BENCH_M", def_m);
    let n = env_usize("BUCKETRANK_BENCH_N", def_n);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);

    let mut rng = Pcg32::seed_from_u64(45);
    let profile: Vec<BucketOrder> = (0..m).map(|_| random_few_valued(&mut rng, n, 8)).collect();

    let s = Sampler::default();
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut bandwidths: Vec<(String, f64)> = Vec::new();
    // Irreducible traffic of one full matrix: every unordered pair must
    // read both rankings' 4-byte-per-element prepared maps at least
    // once. Effective bytes/s on this floor is comparable across
    // metrics and lanes.
    let matrix_bytes = (m * (m - 1) / 2 * 2 * n * 4) as f64;

    for metric in BatchMetric::ALL {
        group(&format!("batch/{} ({m} rankings × {n} elements)", metric.name()));
        let direct_seq = s.bench(&format!("batch/{}/direct/seq/{m}x{n}", metric.name()), || {
            pairwise_matrix_with(&profile, |a, b| metric.direct(a, b)).unwrap()
        });
        let prepared_seq = s.bench(
            &format!("batch/{}/prepared/seq/{m}x{n}", metric.name()),
            || pairwise_matrix(&profile, metric).unwrap(),
        );
        let direct_par = s.bench(
            &format!("batch/{}/direct/par{threads}/{m}x{n}", metric.name()),
            || pairwise_matrix_parallel_with(&profile, |a, b| metric.direct(a, b), threads)
                .unwrap(),
        );
        let prepared_par = s.bench(
            &format!("batch/{}/prepared/par{threads}/{m}x{n}", metric.name()),
            || pairwise_matrix_parallel(&profile, metric, threads).unwrap(),
        );

        let seq_speedup = direct_seq.min_ns / prepared_seq.min_ns;
        let par_speedup = direct_par.min_ns / prepared_par.min_ns;
        println!(
            "  prepared speedup: {seq_speedup:.2}x sequential, {par_speedup:.2}x parallel ({threads} threads)"
        );
        speedups.push((format!("batch/{}/seq", metric.name()), seq_speedup));
        speedups.push((format!("batch/{}/par{threads}", metric.name()), par_speedup));
        for meas in [&prepared_seq, &prepared_par] {
            bandwidths.push((meas.name.clone(), matrix_bytes / (meas.min_ns * 1e-9)));
        }
        all.extend([direct_seq, prepared_seq, direct_par, prepared_par]);
    }

    // Weighted family rows: the naive per-pair kernels (which rebuild
    // per-ranking score vectors for every pair) against the prepared
    // matrix drivers, under a top-heavy linear weight profile.
    let weights = Weights::from_units((0..n).map(|p| (n - p) as u64).collect()).unwrap();
    let mut weighted_speedups: Vec<(String, f64)> = Vec::new();
    for metric in WeightedMetric::ALL {
        group(&format!(
            "batch/{} ({m} rankings × {n} elements, linear weights)",
            metric.name()
        ));
        let naive_seq = s.bench(&format!("batch/{}/naive/seq/{m}x{n}", metric.name()), || {
            pairwise_matrix_with(&profile, |a, b| metric.naive(a, b, &weights)).unwrap()
        });
        let prepared_seq = s.bench(
            &format!("batch/{}/prepared/seq/{m}x{n}", metric.name()),
            || weighted_pairwise_matrix(&profile, metric, &weights).unwrap(),
        );
        let prepared_par = s.bench(
            &format!("batch/{}/prepared/par{threads}/{m}x{n}", metric.name()),
            || weighted_pairwise_matrix_parallel(&profile, metric, &weights, threads).unwrap(),
        );
        let seq_speedup = naive_seq.min_ns / prepared_seq.min_ns;
        let par_speedup = naive_seq.min_ns / prepared_par.min_ns;
        println!(
            "  prepared speedup: {seq_speedup:.2}x sequential, {par_speedup:.2}x parallel ({threads} threads)"
        );
        weighted_speedups.push((format!("batch/{}/seq", metric.name()), seq_speedup));
        weighted_speedups.push((format!("batch/{}/par{threads}", metric.name()), par_speedup));
        for meas in [&prepared_seq, &prepared_par] {
            bandwidths.push((meas.name.clone(), matrix_bytes / (meas.min_ns * 1e-9)));
        }
        all.extend([naive_seq, prepared_seq, prepared_par]);
    }

    let roofline = memcpy_bandwidth();
    println!(
        "roofline: memcpy {:.2} GiB/s ({} MiB buffer, best of {})",
        roofline.memcpy_bytes_per_sec / f64::from(1u32 << 30),
        roofline.buffer_bytes >> 20,
        roofline.reps
    );

    BenchReport::new("bench_batch_prepared")
        .field_usize("m", m)
        .field_usize("n", n)
        .field_usize("threads", threads)
        .field_bool("fast", fast)
        .measurements(&all)
        .ratios("prepared_speedups", &speedups)
        .ratios("weighted_speedups", &weighted_speedups)
        .bandwidths("effective_bandwidth", &bandwidths)
        .field_raw("roofline", roofline.json())
        .write(&out_path("BENCH_metrics.json"));

    // The smoke gate doubles as a regression check: the prepared path
    // must not lose to the direct path on the matrix workload.
    let worst = speedups
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    println!(
        "worst prepared speedup: {:.2}x ({})",
        worst.1, worst.0
    );

    // Hard lane gate: the dispatched Kprof matrix (counting lane on
    // this ≤8-bucket workload) must hold ≥1.5× single-thread over the
    // forced sort-lane baseline — the prepared kernel as it shipped
    // before the dispatcher. Best-of-3 `Instant` timings; runs in both
    // modes on the same profile as the rows above.
    let mut fenwick_s = f64::INFINITY;
    let mut table_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(kprof_matrix_fenwick(&profile));
        fenwick_s = fenwick_s.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        std::hint::black_box(pairwise_matrix(&profile, BatchMetric::KProfX2).unwrap());
        table_s = table_s.min(t0.elapsed().as_secs_f64());
    }
    let ratio = fenwick_s / table_s;
    let verdict = if ratio >= 1.5 { "PASS" } else { "FAIL" };
    println!(
        "kprof lane gate ({m}x{n}, dispatched >= 1.5x sort lane): sort {:.2}ms vs dispatched {:.2}ms = {ratio:.2}x [{verdict}]",
        fenwick_s * 1e3,
        table_s * 1e3
    );
    if ratio < 1.5 {
        std::process::exit(1);
    }

    // Weighted family gate: the prepared weighted matrix (sequential)
    // must not lose to the naive per-pair path on the same workload —
    // the precomputed cumulative-mass scores have to pay for
    // themselves.
    let worst_weighted = weighted_speedups
        .iter()
        .filter(|(name, _)| name.ends_with("/seq"))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    let verdict = if worst_weighted.1 >= 1.0 { "PASS" } else { "FAIL" };
    println!(
        "weighted lane gate ({m}x{n}, prepared >= 1x naive): worst {:.2}x ({}) [{verdict}]",
        worst_weighted.1, worst_weighted.0
    );
    if worst_weighted.1 < 1.0 {
        std::process::exit(1);
    }
}
