//! Prepared-kernel batch engine vs the per-pair direct path, on the
//! full pairwise `DistanceMatrix` workload, sequential and parallel —
//! the measurement backing the `PreparedRanking` layer.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin
//! bench_batch_prepared`. Results are appended to the perf trajectory
//! file `BENCH_metrics.json` (override with `BUCKETRANK_BENCH_OUT`);
//! `BUCKETRANK_BENCH_M` / `BUCKETRANK_BENCH_N` override the workload
//! shape, and `BUCKETRANK_BENCH_FAST=1` runs the smoke-gate pass.

use bucketrank_bench::report::{env_usize, fast_mode, out_path, BenchReport};
use bucketrank_bench::timing::{group, Measurement, Sampler};
use bucketrank_core::BucketOrder;
use bucketrank_metrics::batch::{
    pairwise_matrix, pairwise_matrix_parallel, pairwise_matrix_parallel_with,
    pairwise_matrix_with, BatchMetric,
};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, SeedableRng};

fn main() {
    let fast = fast_mode();
    // Acceptance workload: m ≥ 64 rankings over n ≥ 512 elements. The
    // smoke gate shrinks it so CI stays quick; the committed baseline
    // uses the full shape.
    let (def_m, def_n) = if fast { (24, 96) } else { (64, 512) };
    let m = env_usize("BUCKETRANK_BENCH_M", def_m);
    let n = env_usize("BUCKETRANK_BENCH_N", def_n);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);

    let mut rng = Pcg32::seed_from_u64(45);
    let profile: Vec<BucketOrder> = (0..m).map(|_| random_few_valued(&mut rng, n, 8)).collect();

    let s = Sampler::default();
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for metric in BatchMetric::ALL {
        group(&format!("batch/{} ({m} rankings × {n} elements)", metric.name()));
        let direct_seq = s.bench(&format!("batch/{}/direct/seq/{m}x{n}", metric.name()), || {
            pairwise_matrix_with(&profile, |a, b| metric.direct(a, b)).unwrap()
        });
        let prepared_seq = s.bench(
            &format!("batch/{}/prepared/seq/{m}x{n}", metric.name()),
            || pairwise_matrix(&profile, metric).unwrap(),
        );
        let direct_par = s.bench(
            &format!("batch/{}/direct/par{threads}/{m}x{n}", metric.name()),
            || pairwise_matrix_parallel_with(&profile, |a, b| metric.direct(a, b), threads)
                .unwrap(),
        );
        let prepared_par = s.bench(
            &format!("batch/{}/prepared/par{threads}/{m}x{n}", metric.name()),
            || pairwise_matrix_parallel(&profile, metric, threads).unwrap(),
        );

        let seq_speedup = direct_seq.min_ns / prepared_seq.min_ns;
        let par_speedup = direct_par.min_ns / prepared_par.min_ns;
        println!(
            "  prepared speedup: {seq_speedup:.2}x sequential, {par_speedup:.2}x parallel ({threads} threads)"
        );
        speedups.push((format!("batch/{}/seq", metric.name()), seq_speedup));
        speedups.push((format!("batch/{}/par{threads}", metric.name()), par_speedup));
        all.extend([direct_seq, prepared_seq, direct_par, prepared_par]);
    }

    BenchReport::new("bench_batch_prepared")
        .field_usize("m", m)
        .field_usize("n", n)
        .field_usize("threads", threads)
        .field_bool("fast", fast)
        .measurements(&all)
        .ratios("prepared_speedups", &speedups)
        .write(&out_path("BENCH_metrics.json"));

    // The smoke gate doubles as a regression check: the prepared path
    // must not lose to the direct path on the matrix workload.
    let worst = speedups
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    println!(
        "worst prepared speedup: {:.2}x ({})",
        worst.1, worst.0
    );
}
