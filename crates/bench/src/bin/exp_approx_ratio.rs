//! E3 — Theorems 9/10/11: approximation ratios of median aggregation
//! against exact optima, over random and Mallows profiles.
//!
//! Paper-predicted shape: every measured ratio respects its bound
//! (3 for top-k vs best top-k; 2 for f† vs best partial ranking with
//! partial-ranking inputs; 2 for median-full vs anything with full
//! inputs), with typical ratios near 1.

use bucketrank_aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank_aggregate::dp::aggregate_optimal_bucketing;
use bucketrank_aggregate::exact::{optimal_of_type, optimal_partial_ranking};
use bucketrank_aggregate::median::{aggregate_full, aggregate_top_k, MedianPolicy};
use bucketrank_bench::Table;
use bucketrank_core::{BucketOrder, TypeSeq};
use bucketrank_workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank_workloads::random::{random_bucket_order, random_full_ranking};
use bucketrank_workloads::stats::summarize;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E3 — approximation ratios of median aggregation (Fprof objective)\n");
    let mut rng = Pcg32::seed_from_u64(3);
    let mut t = Table::new(&[
        "experiment", "n", "m", "trials", "mean ratio", "max ratio", "bound",
    ]);

    // Theorem 9: top-k output vs optimal top-k list.
    for &(n, m) in &[(5usize, 3usize), (6, 5), (7, 7)] {
        let mut ratios = Vec::new();
        for _ in 0..40 {
            let inputs: Vec<BucketOrder> =
                (0..m).map(|_| random_bucket_order(&mut rng, n)).collect();
            let k = n / 2;
            let alpha = TypeSeq::top_k(n, k).unwrap();
            let med = aggregate_top_k(&inputs, k, MedianPolicy::Lower).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
            let (_, opt) = optimal_of_type(&inputs, &alpha, AggMetric::FProf).unwrap();
            if opt > 0 {
                ratios.push(cost as f64 / opt as f64);
            }
        }
        let s = summarize(&ratios);
        assert!(s.max <= 3.0, "Theorem 9 bound violated: {}", s.max);
        t.row(&[
            "Thm 9 top-k".to_owned(),
            n.to_string(),
            m.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            "3".to_owned(),
        ]);
    }

    // Theorem 10: f† vs optimal partial ranking (partial-ranking inputs).
    for &(n, m) in &[(5usize, 3usize), (6, 5), (7, 7)] {
        let mut ratios = Vec::new();
        for _ in 0..40 {
            let inputs: Vec<BucketOrder> =
                (0..m).map(|_| random_bucket_order(&mut rng, n)).collect();
            let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &fd.order, &inputs).unwrap();
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
            if opt > 0 {
                ratios.push(cost as f64 / opt as f64);
            }
        }
        let s = summarize(&ratios);
        assert!(s.max <= 2.0, "Theorem 10 bound violated: {}", s.max);
        t.row(&[
            "Thm 10 f† (DP)".to_owned(),
            n.to_string(),
            m.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            "2".to_owned(),
        ]);
    }

    // Theorem 11: full inputs, full output, vs optimum over everything.
    for &(n, m) in &[(5usize, 3usize), (6, 5), (7, 7)] {
        let mut ratios = Vec::new();
        for _ in 0..40 {
            let inputs: Vec<BucketOrder> =
                (0..m).map(|_| random_full_ranking(&mut rng, n)).collect();
            let med = aggregate_full(&inputs, MedianPolicy::Lower).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &med, &inputs).unwrap();
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
            if opt > 0 {
                ratios.push(cost as f64 / opt as f64);
            }
        }
        let s = summarize(&ratios);
        assert!(s.max <= 2.0, "Theorem 11 bound violated: {}", s.max);
        t.row(&[
            "Thm 11 full".to_owned(),
            n.to_string(),
            m.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            "2".to_owned(),
        ]);
    }

    // Mallows noisy-voter profiles: realistic inputs sit near ratio 1.
    for &theta in &[0.2, 0.8, 2.0] {
        let alpha = TypeSeq::new(vec![2, 2, 3]).unwrap();
        let model = MallowsWithTies::new(Mallows::new(7, theta), alpha);
        let mut ratios = Vec::new();
        for _ in 0..30 {
            let inputs = model.sample_profile(&mut rng, 5);
            let fd = aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &fd.order, &inputs).unwrap();
            let (_, opt) = optimal_partial_ranking(&inputs, AggMetric::FProf).unwrap();
            if opt > 0 {
                ratios.push(cost as f64 / opt as f64);
            }
        }
        let s = summarize(&ratios);
        assert!(s.max <= 2.0);
        t.row(&[
            format!("Mallows θ={theta}"),
            "7".to_owned(),
            "5".to_owned(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            "2".to_owned(),
        ]);
    }

    t.print();
    println!("\nall bounds held; typical ratios are near 1, worst cases stay");
    println!("well under the proved constants — the paper's predicted shape.");
}
