//! Update-then-query vs rebuild-then-query for the streaming profile
//! engine (`aggregate::dynamic`) — the measurement backing the dynamic
//! layer.
//!
//! Each shape `(m voters × n elements)` measures one single-voter edit
//! followed immediately by a query, both ways:
//!
//! * **kemeny**: replace one voter, then evaluate one candidate's
//!   Kemeny cost. Dynamic = `O(n²)` replace + `O(n²)` tally read;
//!   rebuild = mutate the input list, `ProfileTally::build` (`O(m·n²)`)
//!   + the same read.
//! * **medians**: replace one voter, then read the full median-rank
//!   vector. Dynamic = incremental multiset maintenance; rebuild =
//!   `median_positions` over all `m` voters. This cycle has a genuine
//!   crossover: a dynamic replace pays the `O(n²)` pairwise-tally
//!   maintenance whether or not the query needs it, while the
//!   median-only rebuild is `O(m·n log m)` — so rebuild wins when
//!   `m ≲ n` and the engine wins above (and always wins when the
//!   workload also queries the tally, which is what it exists for).
//!   Reported as a scaling trajectory, separate from the regression
//!   check.
//! * **snapshot**: the cost of cloning a consistent read view off the
//!   live engine (reported as a trajectory, not gated — it is the price
//!   of isolation, paid only by consumers that hold views across
//!   edits).
//!
//! The crossover: an update-then-query cycle saves a factor `Θ(m)`
//! over rebuild-then-query, so the dynamic path wins whenever more
//! than a handful of voters survive between queries and the batch
//! build wins only when most of the profile churns per query (tiny
//! `m`, or bulk reload — where `from_profile` is the same cost as
//! `build`). The acceptance gate is ≥5× on the kemeny cycle at
//! m=256 × n=512; measured headroom is far larger (≈ m/2).
//!
//! Run with `cargo run --release -p bucketrank-bench --bin
//! bench_dynamic`. Results go to the perf trajectory file
//! `BENCH_dynamic.json` (override with `BUCKETRANK_BENCH_OUT`);
//! `BUCKETRANK_BENCH_FAST=1` runs the smoke-gate pass on shrunken
//! shapes.

use bucketrank_aggregate::dynamic::DynamicProfile;
use bucketrank_aggregate::median::median_positions;
use bucketrank_aggregate::tally::ProfileTally;
use bucketrank_aggregate::MedianPolicy;
use bucketrank_bench::report::{fast_mode, out_path, BenchReport};
use bucketrank_bench::timing::{group, Measurement, Sampler};
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, Rng, SeedableRng};

fn random_full(rng: &mut Pcg32, n: usize) -> BucketOrder {
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    BucketOrder::from_permutation(&ids).expect("shuffled permutation")
}

fn main() {
    let fast = fast_mode();
    // Acceptance shapes: m ∈ {16, 256} voters × n ∈ {128, 512}
    // elements (the gate reads m=256 × n=512). The smoke gate shrinks
    // them so CI stays quick; the committed baseline uses the full
    // grid.
    let shapes: &[(usize, usize)] = if fast {
        &[(8, 32), (16, 64)]
    } else {
        &[(16, 128), (16, 512), (256, 128), (256, 512)]
    };

    let s = Sampler::default();
    let mut all: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for &(m, n) in shapes {
        let mut rng = Pcg32::seed_from_u64(2004);
        let mut profile: Vec<BucketOrder> =
            (0..m).map(|_| random_few_valued(&mut rng, n, 8)).collect();
        let candidate = random_full(&mut rng, n);
        // A ring of replacement rankings so every iteration applies a
        // genuinely different edit (no no-op replace fast paths).
        let ring: Vec<BucketOrder> = (0..16)
            .map(|_| random_few_valued(&mut rng, n, 8))
            .collect();
        let (mut dp, ids) =
            DynamicProfile::from_profile(&profile, MedianPolicy::Lower).unwrap();

        group(&format!("dynamic ({m} voters × {n} elements)"));

        let mut i = 0usize;
        let upd_kemeny_dyn = s.bench(&format!("update_kemeny/dynamic/{m}x{n}"), || {
            i += 1;
            dp.replace_voter(ids[i % m], ring[i % ring.len()].clone())
                .unwrap();
            dp.tally().kemeny_cost_x2(&candidate).unwrap()
        });
        let mut j = 0usize;
        let upd_kemeny_rebuild = s.bench(&format!("update_kemeny/rebuild/{m}x{n}"), || {
            j += 1;
            profile[j % m] = ring[j % ring.len()].clone();
            let tally = ProfileTally::build(&profile).unwrap();
            tally.kemeny_cost_x2(&candidate).unwrap()
        });

        let mut i = 0usize;
        let upd_med_dyn = s.bench(&format!("update_medians/dynamic/{m}x{n}"), || {
            i += 1;
            dp.replace_voter(ids[i % m], ring[i % ring.len()].clone())
                .unwrap();
            dp.median_positions().unwrap()
        });
        let mut j = 0usize;
        let upd_med_rebuild = s.bench(&format!("update_medians/rebuild/{m}x{n}"), || {
            j += 1;
            profile[j % m] = ring[j % ring.len()].clone();
            median_positions(&profile, MedianPolicy::Lower).unwrap()
        });

        let snapshot = s.bench(&format!("snapshot/clone/{m}x{n}"), || {
            dp.snapshot().unwrap()
        });

        let kemeny_speedup = upd_kemeny_rebuild.min_ns / upd_kemeny_dyn.min_ns;
        let medians_speedup = upd_med_rebuild.min_ns / upd_med_dyn.min_ns;
        println!(
            "  speedups: update+kemeny {kemeny_speedup:.2}x, \
             update+medians {medians_speedup:.2}x"
        );
        speedups.push((format!("update_kemeny/{m}x{n}"), kemeny_speedup));
        speedups.push((format!("update_medians/{m}x{n}"), medians_speedup));
        all.extend([
            upd_kemeny_dyn,
            upd_kemeny_rebuild,
            upd_med_dyn,
            upd_med_rebuild,
            snapshot,
        ]);
    }

    BenchReport::new("bench_dynamic")
        .shapes(shapes)
        .field_bool("fast", fast)
        .measurements(&all)
        .ratios("dynamic_speedups", &speedups)
        .write(&out_path("BENCH_dynamic.json"));

    // The smoke gate doubles as a regression check: the kemeny cycle
    // (whose rebuild arm pays the same O(m·n²) tally build the engine
    // amortizes away) may not lose to rebuild-then-query at any
    // measured shape; the acceptance bar is ≥5× at 256x512. The
    // medians cycle is the primitive with the deliberate m ≲ n
    // crossover, so it is reported as a trajectory rather than gated.
    let worst = speedups
        .iter()
        .filter(|(name, _)| name.starts_with("update_kemeny/"))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    println!("worst update+kemeny speedup: {:.2}x ({})", worst.1, worst.0);
    let medians: Vec<String> = speedups
        .iter()
        .filter(|(name, _)| name.starts_with("update_medians/"))
        .map(|(name, r)| format!("{}: {r:.2}x", &name["update_medians/".len()..]))
        .collect();
    println!(
        "update+medians speedup by shape (mxn): {}",
        medians.join(", ")
    );
    if let Some((name, r)) = speedups
        .iter()
        .find(|(name, _)| name == "update_kemeny/256x512")
    {
        let verdict = if *r >= 5.0 { "PASS" } else { "FAIL" };
        println!("acceptance gate {name} >= 5x: {r:.2}x [{verdict}]");
    }
}
