//! E5 — Appendix A.6.4 / Figure 1: the optimal-bucketing dynamic program
//! runs in `O(n²)` with linear space, and its three implementations plus
//! brute force agree.
//!
//! Predicted shape: quadrupling cost per doubling of n for all variants;
//! agreement of all variants on every instance; the linear-space Figure-1
//! variant fastest in memory terms and competitive in time.

use bucketrank_aggregate::dp::{
    optimal_bucketing, optimal_bucketing_brute, optimal_bucketing_prefix,
    optimal_bucketing_table,
};
use bucketrank_bench::{timed, Table};
use bucketrank_core::Pos;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::{Rng, SeedableRng};

fn random_scores(rng: &mut Pcg32, n: usize) -> Vec<Pos> {
    (0..n)
        .map(|_| Pos::from_half_units(rng.gen_range(0..(4 * n as i64 + 2))))
        .collect()
}

fn main() {
    println!("E5 — optimal-bucketing DP (Figure 1): agreement and scaling\n");
    let mut rng = Pcg32::seed_from_u64(5);

    // Agreement: all variants vs brute force on small n.
    let mut checked = 0;
    for _ in 0..400 {
        let n = rng.gen_range(1..=11);
        let f = random_scores(&mut rng, n);
        let a = optimal_bucketing(&f);
        let b = optimal_bucketing_table(&f);
        let c = optimal_bucketing_prefix(&f);
        let d = optimal_bucketing_brute(&f);
        assert_eq!(a.cost_x2, d.cost_x2, "figure-1 vs brute on {f:?}");
        assert_eq!(b.cost_x2, d.cost_x2, "table vs brute on {f:?}");
        assert_eq!(c.cost_x2, d.cost_x2, "prefix vs brute on {f:?}");
        checked += 1;
    }
    println!("agreement: {checked} random instances, all four variants identical.\n");

    // Scaling.
    let mut t = Table::new(&[
        "n",
        "figure-1 (ms)",
        "table (ms)",
        "prefix (ms)",
        "fig1 ratio vs half-n",
    ]);
    let mut prev: Option<f64> = None;
    for &n in &[64usize, 128, 256, 512, 1024, 2048, 4096] {
        let f = random_scores(&mut rng, n);
        let reps = if n <= 512 { 10 } else { 3 };
        let (_, t1) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(optimal_bucketing(&f));
            }
        });
        let (_, t2) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(optimal_bucketing_table(&f));
            }
        });
        let (_, t3) = timed(|| {
            for _ in 0..reps {
                std::hint::black_box(optimal_bucketing_prefix(&f));
            }
        });
        let ms = |s: f64| s / reps as f64 * 1e3;
        let cur = ms(t1);
        let growth = prev.map_or("-".to_owned(), |p| format!("{:.2}", cur / p));
        prev = Some(cur);
        t.row(&[
            n.to_string(),
            format!("{:.3}", cur),
            format!("{:.3}", ms(t2)),
            format!("{:.3}", ms(t3)),
            growth,
        ]);
    }
    t.print();
    println!("\npredicted shape: growth ratio ≈ 4 per doubling (O(n²));");
    println!("prefix variant carries an extra log factor; the table variant");
    println!("pays O(n²) memory, visible as a slowdown at large n.");
}
