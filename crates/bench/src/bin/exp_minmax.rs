//! E12 — sum-objective vs minmax-objective aggregation: how far apart
//! the two optima sit across profile shapes, plus the scorer speed
//! gate the minmax heuristics rely on.
//!
//! The sum (Kemeny) optimum minimizes total voter distance and is free
//! to sacrifice one voter entirely; the minmax optimum bounds the
//! worst-off voter. On consensus-shaped profiles the two coincide; an
//! **outlier voter** (one reversal among many identical rankings) pulls
//! them maximally apart — the sum optimum ignores the outlier (its max
//! cost is the full `2·C(n,2)` reversal distance) while the minmax
//! optimum meets it halfway. The canonical 9×identity + 1×reversal
//! profile at n = 6 is pinned as a regression case: sum-optimal max
//! cost 30, minmax-optimal max cost 16.
//!
//! The run ends with a hard acceptance gate: scoring a sweep of
//! adjacent transpositions via `MinMaxObjective::swap_delta_x2` (O(m)
//! per swap) must be at least as fast as the naive rescan that re-sums
//! every pair for every voter (O(m·n²) per swap) — the gate CI drives
//! with `BUCKETRANK_BENCH_FAST=1`.

use bucketrank_aggregate::minmax::{self, MinMaxObjective};
use bucketrank_bench::report::fast_mode;
use bucketrank_bench::timing::{group, Sampler};
use bucketrank_bench::Table;
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_metrics::kendall;
use bucketrank_workloads::mallows::Mallows;
use bucketrank_workloads::random::{random_few_valued, random_full_ranking};
use bucketrank_workloads::rng::{Pcg32, SeedableRng};
use bucketrank_workloads::stats::summarize;

/// One profile-shape generator for the gap table.
type ShapeGen = Box<dyn FnMut(&mut Pcg32) -> Vec<BucketOrder>>;

/// All permutations of `0..n` (for the brute-force sum optimum).
fn permutations(n: usize) -> Vec<Vec<ElementId>> {
    fn rec(prefix: &mut Vec<ElementId>, rest: &mut Vec<ElementId>, out: &mut Vec<Vec<ElementId>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let e = rest.remove(i);
            prefix.push(e);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, e);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n as ElementId).collect(), &mut out);
    out
}

/// Brute-force sum (Kemeny) optimum over full rankings: returns the
/// best permutation's `(sum_cost_x2, max_voter_cost_x2)`.
fn sum_opt_brute(inputs: &[BucketOrder]) -> (u64, u64) {
    let n = inputs[0].len();
    let mut best = (u64::MAX, u64::MAX);
    for p in permutations(n) {
        let o = BucketOrder::from_permutation(&p).expect("valid permutation");
        let costs: Vec<u64> = inputs
            .iter()
            .map(|v| kendall::kprof_x2(&o, v).expect("shared domain"))
            .collect();
        let sum: u64 = costs.iter().sum();
        let max = costs.iter().copied().max().unwrap_or(0);
        if sum < best.0 {
            best = (sum, max);
        }
    }
    best
}

fn main() {
    let fast = fast_mode();
    println!("E12 — sum-optimal vs minmax-optimal cost gaps\n");
    let mut rng = Pcg32::seed_from_u64(12);
    let trials = if fast { 4 } else { 30 };
    let n = 6;
    let m = 8;

    // Profile shapes: how the two optima relate as consensus erodes.
    // "max gap" is (sum-optimum's max voter cost) / (minmax optimal max
    // cost) — how badly the sum objective treats its worst-off voter;
    // "sum penalty" is (minmax optimum's sum cost) / (optimal sum) —
    // what the fairness costs in total distance.
    let shapes: Vec<(&str, ShapeGen)> = vec![
        (
            "uniform full",
            Box::new(move |r| (0..m).map(|_| random_full_ranking(r, n)).collect()),
        ),
        (
            "mallows θ=1.0",
            Box::new(move |r| {
                let model = Mallows::new(n, 1.0);
                (0..m).map(|_| model.sample(r)).collect()
            }),
        ),
        (
            "few-valued ties",
            Box::new(move |r| (0..m).map(|_| random_few_valued(r, n, 3)).collect()),
        ),
        (
            "outlier voter",
            Box::new(move |r| {
                let base = random_full_ranking(r, n);
                let mut rev: Vec<ElementId> = base.as_permutation().expect("full");
                rev.reverse();
                let mut prof = vec![base; m - 1];
                prof.push(BucketOrder::from_permutation(&rev).expect("valid"));
                prof
            }),
        ),
    ];

    let mut t = Table::new(&[
        "shape",
        "n",
        "m",
        "trials",
        "mean max gap",
        "max max gap",
        "mean sum penalty",
    ]);
    for (name, mut gen) in shapes {
        let mut max_gaps = Vec::new();
        let mut sum_penalties = Vec::new();
        for _ in 0..trials {
            let inputs = gen(&mut rng);
            let (opt_sum, opt_sum_max) = sum_opt_brute(&inputs);
            let (mm_order, mm_max, _) =
                minmax::minmax_optimal_bb(&inputs, None).expect("exact minmax");
            let mm_sum: u64 = inputs
                .iter()
                .map(|v| kendall::kprof_x2(&mm_order, v).expect("shared domain"))
                .collect::<Vec<u64>>()
                .iter()
                .sum();
            assert!(
                opt_sum_max >= mm_max,
                "minmax optimum must bound the sum optimum's max \
                 ({opt_sum_max} < {mm_max} on {name})"
            );
            assert!(mm_sum >= opt_sum, "sum optimum must bound any sum");
            if mm_max > 0 {
                max_gaps.push(opt_sum_max as f64 / mm_max as f64);
            }
            if opt_sum > 0 {
                sum_penalties.push(mm_sum as f64 / opt_sum as f64);
            }
        }
        let g = summarize(&max_gaps);
        let s = summarize(&sum_penalties);
        t.row(&[
            name.to_owned(),
            n.to_string(),
            m.to_string(),
            trials.to_string(),
            format!("{:.3}", g.mean),
            format!("{:.3}", g.max),
            format!("{:.3}", s.mean),
        ]);
    }
    t.print();

    // Pinned regression: the maximal-disagreement profile. Nine voters
    // hold the identity, one holds its reversal. The sum optimum is the
    // identity itself — the outlier sits at the full reversal distance
    // 2·C(6,2) = 30 — while the minmax optimum splits the difference
    // at max cost 16. These exact values are the regression contract.
    let identity: Vec<ElementId> = (0..6).collect();
    let reversal: Vec<ElementId> = (0..6).rev().collect();
    let mut prof = vec![BucketOrder::from_permutation(&identity).expect("valid"); 9];
    prof.push(BucketOrder::from_permutation(&reversal).expect("valid"));
    let (opt_sum, opt_sum_max) = sum_opt_brute(&prof);
    let (_, mm_max, _) = minmax::minmax_optimal_bb(&prof, None).expect("exact minmax");
    println!(
        "\noutlier regression (9×identity + 1×reversal, n=6): \
         sum-opt sum {opt_sum}, sum-opt max {opt_sum_max}, minmax opt {mm_max}"
    );
    assert_eq!(opt_sum_max, 30, "sum optimum abandons the outlier at 2·C(6,2)");
    assert_eq!(mm_max, 16, "minmax optimum meets the outlier partway");

    // Scorer gate: the tally-delta scorer the heuristics run on vs a
    // naive per-swap rescan, over the same sweep of n−1 adjacent
    // transpositions on the same profile.
    group("scorers (one sweep of adjacent transpositions)");
    let sampler = Sampler::default();
    let (sn, sm) = (24usize, 16usize);
    let mut srng = Pcg32::seed_from_u64(0x5c0e);
    let inputs: Vec<BucketOrder> = (0..sm).map(|_| random_full_ranking(&mut srng, sn)).collect();
    let obj = MinMaxObjective::build(&inputs).expect("objective");

    let mut perm: Vec<ElementId> = (0..sn as ElementId).collect();
    let mut costs = obj
        .costs_x2(&BucketOrder::from_permutation(&perm).expect("valid"))
        .expect("costs");
    let delta = sampler.bench("minmax_scorer/tally_delta", || {
        let mut worst = 0u64;
        for p in 0..sn - 1 {
            let (a, b) = (perm[p], perm[p + 1]);
            for (v, c) in costs.iter_mut().enumerate() {
                *c = (*c as i64 + obj.swap_delta_x2(v, a, b)) as u64;
            }
            perm.swap(p, p + 1);
            worst = worst.max(costs.iter().copied().max().unwrap_or(0));
        }
        worst
    });
    // The maintained costs must still agree with a fresh evaluation —
    // the delta scorer is only a valid baseline if it is exact.
    let fresh = obj
        .costs_x2(&BucketOrder::from_permutation(&perm).expect("valid"))
        .expect("costs");
    assert_eq!(costs, fresh, "delta-maintained costs drifted");

    let mut nperm: Vec<ElementId> = (0..sn as ElementId).collect();
    let naive = sampler.bench("minmax_scorer/naive_rescan", || {
        let mut worst = 0u64;
        for p in 0..sn - 1 {
            nperm.swap(p, p + 1);
            let mut mx = 0u64;
            for v in 0..sm {
                let mut c = 0u64;
                for i in 0..sn {
                    for j in i + 1..sn {
                        c += obj.pair_cost_x2(v, nperm[i], nperm[j]);
                    }
                }
                mx = mx.max(c);
            }
            worst = worst.max(mx);
        }
        worst
    });

    let ratio = naive.median_ns / delta.median_ns;
    let verdict = if ratio >= 1.0 { "PASS" } else { "FAIL" };
    println!(
        "\nacceptance gate minmax tally-delta scorer >= 1x naive rescan: \
         {ratio:.1}x [{verdict}]"
    );
    if ratio < 1.0 {
        std::process::exit(1);
    }
    println!("\nsum and minmax optima coincide on consensus profiles and split");
    println!("on outlier profiles exactly as the objective definitions predict.");
}
