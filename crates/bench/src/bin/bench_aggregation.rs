//! Timing benches for aggregation (experiments E3/E8 counterpart):
//! the median family vs Borda and the Markov chains, plus the exact
//! optimizers on the sizes they admit.
//!
//! Run with `cargo run --release -p bucketrank-bench --bin bench_aggregation`.

use bucketrank_aggregate::borda::average_rank_full;
use bucketrank_aggregate::dp::aggregate_optimal_bucketing;
use bucketrank_aggregate::exact::{footrule_optimal_full, kemeny_optimal_full};
use bucketrank_aggregate::markov::{markov_aggregate, MarkovChain, MarkovOptions};
use bucketrank_aggregate::median::{aggregate_full, aggregate_top_k, MedianPolicy};
use bucketrank_bench::timing::{group, Sampler};
use bucketrank_core::BucketOrder;
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::rng::{Pcg32, SeedableRng};

fn profile(rng: &mut Pcg32, n: usize, m: usize) -> Vec<BucketOrder> {
    (0..m).map(|_| random_few_valued(rng, n, 6)).collect()
}

fn main() {
    let s = Sampler::default();

    group("aggregators");
    let mut rng = Pcg32::seed_from_u64(61);
    for n in [100usize, 1000, 10000] {
        let inputs = profile(&mut rng, n, 7);
        s.bench(&format!("aggregators/median_top10/{n}"), || {
            aggregate_top_k(&inputs, 10, MedianPolicy::Lower).unwrap()
        });
        s.bench(&format!("aggregators/median_full/{n}"), || {
            aggregate_full(&inputs, MedianPolicy::Lower).unwrap()
        });
        s.bench(&format!("aggregators/median_fdagger/{n}"), || {
            aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap()
        });
        s.bench(&format!("aggregators/borda/{n}"), || {
            average_rank_full(&inputs).unwrap()
        });
        if n <= 1000 {
            s.bench(&format!("aggregators/mc4/{n}"), || {
                markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default()).unwrap()
            });
        }
    }

    group("exact_optima");
    let mut rng = Pcg32::seed_from_u64(62);
    for n in [8usize, 12, 14] {
        let inputs = profile(&mut rng, n, 5);
        s.bench(&format!("exact_optima/kemeny_held_karp/{n}"), || {
            kemeny_optimal_full(&inputs).unwrap()
        });
        s.bench(&format!("exact_optima/kemeny_branch_bound/{n}"), || {
            bucketrank_aggregate::bb::kemeny_optimal_bb(&inputs).unwrap()
        });
    }
    // B&B scales past Held–Karp on cohesive profiles.
    {
        use bucketrank_workloads::mallows::Mallows;
        let model = Mallows::new(24, 1.0);
        let inputs = model.sample_profile(&mut rng, 7);
        s.bench("exact_optima/kemeny_branch_bound_n24_cohesive", || {
            bucketrank_aggregate::bb::kemeny_optimal_bb(&inputs).unwrap()
        });
    }
    {
        let inputs = profile(&mut rng, 60, 7);
        s.bench("exact_optima/schulze_n60", || {
            bucketrank_aggregate::schulze::schulze(&inputs).unwrap()
        });
    }
    for n in [16usize, 64, 256] {
        let inputs = profile(&mut rng, n, 5);
        s.bench(&format!("exact_optima/footrule_hungarian/{n}"), || {
            footrule_optimal_full(&inputs).unwrap()
        });
    }
}
