//! E10 — Appendix A.6.3 (Theorems 33/35) and the polynomial typed
//! optimum: median top-k lists are nearly optimal in the *strong* sense
//! (they project from a globally near-optimal partial ranking), and the
//! Hungarian slot-matching optimum lets us verify the Theorem 9 bound at
//! domain sizes far beyond enumeration.

use bucketrank_aggregate::cost::{total_cost_x2, AggMetric};
use bucketrank_aggregate::exact::footrule_optimal_of_type;
use bucketrank_aggregate::median::MedianPolicy;
use bucketrank_aggregate::strong::{aggregate_top_k_strong, is_projection_of};
use bucketrank_bench::Table;
use bucketrank_core::{BucketOrder, TypeSeq};
use bucketrank_workloads::random::random_few_valued;
use bucketrank_workloads::stats::summarize;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E10 — strong optimality and the typed optimum at scale\n");
    let mut rng = Pcg32::seed_from_u64(10);

    println!("median top-k vs the exact optimal top-k list (Hungarian matching),");
    println!("with the strong-optimality witness verified on every instance:");
    let mut t = Table::new(&[
        "n", "k", "m", "trials", "mean ratio", "max ratio", "bound", "witness ok",
    ]);
    for &(n, k, m) in &[
        (20usize, 5usize, 5usize),
        (50, 10, 5),
        (100, 10, 7),
        (200, 20, 9),
        (500, 25, 9),
    ] {
        let trials = if n <= 100 { 25 } else { 8 };
        let mut ratios = Vec::new();
        let mut witness_ok = true;
        let alpha = TypeSeq::top_k(n, k).unwrap();
        for _ in 0..trials {
            let inputs: Vec<BucketOrder> = (0..m)
                .map(|_| random_few_valued(&mut rng, n, 6))
                .collect();
            let s = aggregate_top_k_strong(&inputs, k, MedianPolicy::Lower).unwrap();
            witness_ok &= is_projection_of(&s.output, &s.witness, &alpha).unwrap();
            let cost = total_cost_x2(AggMetric::FProf, &s.output, &inputs).unwrap();
            let (_, opt) = footrule_optimal_of_type(&inputs, &alpha).unwrap();
            if opt > 0 {
                let r = cost as f64 / opt as f64;
                assert!(r <= 3.0, "Theorem 9 bound violated at n = {n}: {r}");
                ratios.push(r);
            }
        }
        assert!(witness_ok, "strong-optimality witness failed at n = {n}");
        let s = summarize(&ratios);
        t.row(&[
            n.to_string(),
            k.to_string(),
            m.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            "3".to_owned(),
            "yes".to_owned(),
        ]);
    }
    t.print();

    println!("\nwitness quality: L1(witness, median) ≤ L1(τ, median) for every");
    println!("type τ — checked exhaustively on small domains in the test suite;");
    println!("here the witness cost vs the output cost at n = 200:");
    let inputs: Vec<BucketOrder> = (0..7)
        .map(|_| random_few_valued(&mut rng, 200, 5))
        .collect();
    let s = aggregate_top_k_strong(&inputs, 20, MedianPolicy::Lower).unwrap();
    let wc = total_cost_x2(AggMetric::FProf, &s.witness, &inputs).unwrap();
    let oc = total_cost_x2(AggMetric::FProf, &s.output, &inputs).unwrap();
    println!(
        "  witness Σ Fprof = {:.1} (type {}), top-20 output Σ Fprof = {:.1}",
        wc as f64 / 2.0,
        s.witness.type_seq(),
        oc as f64 / 2.0
    );
    println!("\nshape as predicted: ratios near 1, never above 3; every output");
    println!("is the type-α projection of its globally near-optimal witness.");
}
