//! E11 — the measurement landscape of Section 1/related work: how the
//! paper's (normalized) metrics, Kendall's tau-b, and Goodman–Kruskal
//! gamma behave across a correlation sweep, and where gamma is undefined.
//!
//! Predicted shape: all four normalized metrics increase monotonically
//! with Mallows noise and agree within the Theorem 7 factors; tau-b
//! decreases from ≈1 toward 0; gamma tracks tau-b where defined but is
//! undefined on a non-trivial fraction of tie-heavy pairs — the defect
//! the paper cites as motivation.

use bucketrank_bench::Table;
use bucketrank_core::{BucketOrder, TypeSeq};
use bucketrank_metrics::normalized::{
    fhaus_normalized, fprof_normalized, khaus_normalized, kprof_normalized,
};
use bucketrank_metrics::related::{goodman_kruskal_gamma, kendall_tau_b};
use bucketrank_workloads::mallows::{Mallows, MallowsWithTies};
use bucketrank_workloads::stats::summarize;
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E11 — normalized metrics vs classical coefficients (n = 30,");
    println!("type (3,3,3,3,3,15), pairs of independent Mallows samples)\n");
    let mut rng = Pcg32::seed_from_u64(11);

    let alpha = TypeSeq::new(vec![3, 3, 3, 3, 3, 15]).unwrap();
    let mut t = Table::new(&[
        "θ", "Kprof~", "Fprof~", "KHaus~", "FHaus~", "tau-b", "gamma", "gamma undef",
    ]);
    for &theta in &[4.0, 2.0, 1.0, 0.5, 0.25, 0.1, 0.0] {
        let model = MallowsWithTies::new(Mallows::new(30, theta), alpha.clone());
        let mut cols: [Vec<f64>; 6] = Default::default();
        let mut undef = 0u32;
        let trials = 60;
        for _ in 0..trials {
            let a = model.sample(&mut rng);
            let b = model.sample(&mut rng);
            cols[0].push(kprof_normalized(&a, &b).unwrap());
            cols[1].push(fprof_normalized(&a, &b).unwrap());
            cols[2].push(khaus_normalized(&a, &b).unwrap());
            cols[3].push(fhaus_normalized(&a, &b).unwrap());
            if let Some(tb) = kendall_tau_b(&a, &b).unwrap() {
                cols[4].push(tb);
            }
            match goodman_kruskal_gamma(&a, &b).unwrap() {
                Some(g) => cols[5].push(g),
                None => undef += 1,
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                "-".to_owned()
            } else {
                format!("{:.3}", summarize(v).mean)
            }
        };
        t.row(&[
            format!("{theta}"),
            mean(&cols[0]),
            mean(&cols[1]),
            mean(&cols[2]),
            mean(&cols[3]),
            mean(&cols[4]),
            mean(&cols[5]),
            format!("{undef}/{trials}"),
        ]);
    }
    t.print();

    // Gamma's undefined region grows with tie density at fixed θ.
    println!("\ngamma undefined rate vs tie density (θ = 1, n = 12, 200 pairs):");
    let mut t2 = Table::new(&["type", "gamma undefined"]);
    for sizes in [vec![1; 12], vec![2; 6], vec![4; 3], vec![6, 6], vec![12]] {
        let alpha = TypeSeq::new(sizes.clone()).unwrap();
        let model = MallowsWithTies::new(Mallows::new(12, 1.0), alpha.clone());
        let mut undef = 0u32;
        for _ in 0..200 {
            let a = model.sample(&mut rng);
            let b = model.sample(&mut rng);
            if goodman_kruskal_gamma(&a, &b).unwrap().is_none() {
                undef += 1;
            }
        }
        t2.row(&[format!("{alpha}"), format!("{undef}/200")]);
    }
    t2.print();
    println!("\nthe paper's metrics are total functions on every pair above;");
    println!("gamma fails exactly where ties dominate — the stated motivation.");

    // Monotonicity sanity assertions (shape check).
    let sweep: Vec<f64> = [4.0, 1.0, 0.1]
        .iter()
        .map(|&theta| {
            let model = MallowsWithTies::new(Mallows::new(30, theta), alpha.clone());
            let a: BucketOrder = model.sample(&mut rng);
            let b: BucketOrder = model.sample(&mut rng);
            kprof_normalized(&a, &b).unwrap()
        })
        .collect();
    assert!(sweep[0] <= sweep[2] + 0.2, "noise should increase distance");
}
