//! E7 — Appendix A.3: compatibility with the top-k machinery of
//! Fagin–Kumar–Sivakumar 2003.
//!
//! * `Fprof = F^(ℓ)` at `ℓ = (|D| + k + 1)/2` on top-k lists;
//! * `Kavg = Kprof + tied_both/2`, hence `Kavg = Kprof` exactly when no
//!   pair is tied in both — and `Kavg(σ, σ) > 0` on genuine partial
//!   rankings (not a distance measure);
//! * Goodman–Kruskal gamma is undefined (None) whenever every pair is
//!   tied in at least one ranking — the defect the paper points out.

use bucketrank_bench::Table;
use bucketrank_core::consistent::all_bucket_orders;
use bucketrank_metrics::footrule::{canonical_location, footrule_location_x2, fprof_x2};
use bucketrank_metrics::kendall::{kavg_x2, kprof_x2};
use bucketrank_metrics::related::goodman_kruskal_gamma;
use bucketrank_workloads::random::{random_bucket_order, random_top_k};
use bucketrank_workloads::rng::Pcg32;
use bucketrank_workloads::rng::SeedableRng;

fn main() {
    println!("E7 — top-k list compatibility (Appendix A.3)\n");
    let mut rng = Pcg32::seed_from_u64(7);

    // (a) F^(ℓ) identity.
    let mut t = Table::new(&["n", "k", "pairs", "Fprof = F^(ℓ) ?"]);
    for &(n, k) in &[(8usize, 2usize), (12, 4), (30, 10), (60, 10)] {
        let ell = canonical_location(n, k);
        let mut ok = true;
        let trials = 200;
        for _ in 0..trials {
            let a = random_top_k(&mut rng, n, k);
            let b = random_top_k(&mut rng, n, k);
            ok &= footrule_location_x2(&a, &b, k, ell).unwrap() == fprof_x2(&a, &b).unwrap();
        }
        assert!(ok, "identity failed at n={n} k={k}");
        t.row(&[
            n.to_string(),
            k.to_string(),
            trials.to_string(),
            "yes (exact)".to_owned(),
        ]);
    }
    t.print();

    // (b) Kavg vs Kprof.
    println!("\nKavg vs Kprof (random bucket orders, n = 10):");
    let mut same = 0u32;
    let mut differ = 0u32;
    for _ in 0..300 {
        let a = random_bucket_order(&mut rng, 10);
        let b = random_bucket_order(&mut rng, 10);
        let kp = kprof_x2(&a, &b).unwrap();
        let ka = kavg_x2(&a, &b).unwrap();
        assert!(ka >= kp, "Kavg < Kprof");
        if ka == kp {
            same += 1;
        } else {
            differ += 1;
        }
    }
    println!("  Kavg = Kprof on {same} pairs (no doubly tied pair), > on {differ};");
    let s = random_bucket_order(&mut rng, 10);
    if !s.is_full() {
        assert!(kavg_x2(&s, &s).unwrap() > 0);
        println!("  Kavg(σ, σ) > 0 on tied σ — not a distance measure, as noted.");
    }

    // (c) gamma's undefined region.
    println!("\nGoodman–Kruskal gamma undefined rate by tie density (n = 4, exhaustive):");
    let orders = all_bucket_orders(4);
    let mut undefined = 0u32;
    let mut total = 0u32;
    for a in &orders {
        for b in &orders {
            total += 1;
            if goodman_kruskal_gamma(a, b).unwrap().is_none() {
                undefined += 1;
            }
        }
    }
    println!(
        "  {undefined} of {total} pairs ({:.1}%) have gamma undefined —",
        100.0 * undefined as f64 / total as f64
    );
    println!("  the \"serious disadvantage\" motivating the paper's metrics,");
    println!("  which are total functions on all {} × {} pairs.", orders.len(), orders.len());

    // Sanity: bound on the random sweep.
    let mut r2 = Pcg32::seed_from_u64(77);
    let n = 12;
    for _ in 0..100 {
        let a = random_bucket_order(&mut r2, n);
        let b = random_bucket_order(&mut r2, n);
        let _ = kprof_x2(&a, &b).unwrap();
    }
}
