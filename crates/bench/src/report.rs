//! Shared plumbing for the `bench_*` binaries: environment knobs and
//! the hand-rolled `BENCH_*.json` trajectory files.
//!
//! Every benchmark binary honours the same contract — `BUCKETRANK_BENCH_FAST`
//! selects the shrunken smoke-gate shapes, `BUCKETRANK_BENCH_OUT`
//! overrides the output path, `BUCKETRANK_BENCH_M`/`_N` override
//! workload shapes where meaningful — and emits one JSON object with
//! the workload description, every [`Measurement`], and the headline
//! ratio arrays. This module is that contract in one place, so the
//! binaries hold only their workload logic.

use crate::timing::Measurement;
use std::fmt::Write as _;

/// True when `BUCKETRANK_BENCH_FAST` is set: run the shrunken
/// smoke-gate pass instead of the committed-baseline shapes.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var_os("BUCKETRANK_BENCH_FAST").is_some()
}

/// Reads a `usize` knob from the environment, falling back to
/// `default` when unset.
///
/// # Panics
/// When the variable is set but does not parse — a misconfigured
/// benchmark run should fail loudly, not silently measure the wrong
/// shape.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a usize, got {s:?}")),
        Err(_) => default,
    }
}

/// The output path: `BUCKETRANK_BENCH_OUT`, or the binary's default
/// trajectory file.
#[must_use]
pub fn out_path(default: &str) -> String {
    std::env::var("BUCKETRANK_BENCH_OUT").unwrap_or_else(|_| default.to_string())
}

/// Builder for one `BENCH_*.json` object (the workspace has no serde;
/// the format is hand-rolled but uniform across binaries).
///
/// Sections render in insertion order after the leading `"bench"`
/// name, so reports stay diffable run over run.
#[derive(Debug)]
pub struct BenchReport {
    bench: String,
    sections: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for the named benchmark binary.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            sections: Vec::new(),
        }
    }

    /// Adds a scalar field holding any pre-rendered JSON value.
    #[must_use]
    pub fn field_raw(mut self, name: &str, json_value: impl Into<String>) -> Self {
        self.sections.push((name.to_string(), json_value.into()));
        self
    }

    /// Adds a numeric field.
    #[must_use]
    pub fn field_usize(self, name: &str, value: usize) -> Self {
        self.field_raw(name, value.to_string())
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn field_bool(self, name: &str, value: bool) -> Self {
        self.field_raw(name, value.to_string())
    }

    /// Adds the `(m voters × n elements)` shape grid.
    #[must_use]
    pub fn shapes(self, shapes: &[(usize, usize)]) -> Self {
        let list: Vec<String> = shapes
            .iter()
            .map(|&(m, n)| format!("{{\"m\":{m},\"n\":{n}}}"))
            .collect();
        self.field_raw("shapes", format!("[{}]", list.join(", ")))
    }

    /// Adds an array of pre-rendered JSON objects as a multi-line
    /// section.
    #[must_use]
    pub fn array(mut self, name: &str, items: &[String]) -> Self {
        let mut body = String::from("[\n");
        for (i, item) in items.iter().enumerate() {
            let sep = if i + 1 < items.len() { "," } else { "" };
            let _ = writeln!(body, "    {item}{sep}");
        }
        body.push_str("  ]");
        self.sections.push((name.to_string(), body));
        self
    }

    /// Adds the `"measurements"` section.
    #[must_use]
    pub fn measurements(self, all: &[Measurement]) -> Self {
        let items: Vec<String> = all.iter().map(Measurement::json).collect();
        self.array("measurements", &items)
    }

    /// Adds a named `{"name": …, "speedup": …}` ratio array — the
    /// headline numbers the CI gates read.
    #[must_use]
    pub fn ratios(self, name: &str, ratios: &[(String, f64)]) -> Self {
        let items: Vec<String> = ratios
            .iter()
            .map(|(n, r)| format!("{{\"name\":\"{n}\",\"speedup\":{r:.3}}}"))
            .collect();
        self.array(name, &items)
    }

    /// Adds a named `{"name": …, "bytes_per_sec": …, "gib_per_sec": …}`
    /// array: effective memory traffic per second (cells touched ×
    /// cell width ÷ time), comparable against the report's `roofline`
    /// section (see [`crate::roofline`] for the byte-counting
    /// convention).
    #[must_use]
    pub fn bandwidths(self, name: &str, items: &[(String, f64)]) -> Self {
        let rendered: Vec<String> = items
            .iter()
            .map(|(n, b)| {
                format!(
                    "{{\"name\":\"{n}\",\"bytes_per_sec\":{b:.0},\"gib_per_sec\":{:.3}}}",
                    b / f64::from(1u32 << 30)
                )
            })
            .collect();
        self.array(name, &rendered)
    }

    /// Renders the report as a JSON object.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{{\n  \"bench\": \"{}\"", self.bench);
        for (name, value) in &self.sections {
            let _ = write!(out, ",\n  \"{name}\": {value}");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the report to `out` and echoes the path.
    ///
    /// # Panics
    /// When the file cannot be written — a benchmark that cannot record
    /// its trajectory must not look like a pass.
    pub fn write(&self, out: &str) {
        std::fs::write(out, self.render()).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("\nwrote {out}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_read_and_default() {
        assert_eq!(env_usize("BUCKETRANK_BENCH_NO_SUCH_KNOB", 7), 7);
        assert_eq!(out_path("BENCH_x.json"), {
            std::env::var("BUCKETRANK_BENCH_OUT").unwrap_or_else(|_| "BENCH_x.json".into())
        });
    }

    #[test]
    fn report_renders_sections_in_order() {
        let json = BenchReport::new("bench_demo")
            .field_usize("m", 8)
            .field_bool("fast", true)
            .shapes(&[(2, 3), (4, 5)])
            .ratios("speedups", &[("a/b".to_string(), 2.0)])
            .render();
        assert!(json.starts_with("{\n  \"bench\": \"bench_demo\""), "{json}");
        assert!(json.contains("\"m\": 8"), "{json}");
        assert!(json.contains("\"fast\": true"), "{json}");
        assert!(json.contains("{\"m\":2,\"n\":3}"), "{json}");
        assert!(json.contains("{\"name\":\"a/b\",\"speedup\":2.000}"), "{json}");
        // Balanced braces + trailing newline: parses as one object.
        assert!(json.ends_with("}\n"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        // Insertion order.
        let m_at = json.find("\"m\"").unwrap();
        let fast_at = json.find("\"fast\"").unwrap();
        let shapes_at = json.find("\"shapes\"").unwrap();
        assert!(m_at < fast_at && fast_at < shapes_at);
    }

    #[test]
    fn empty_array_renders() {
        let json = BenchReport::new("bench_demo")
            .array("items", &[])
            .render();
        assert!(json.contains("\"items\": [\n  ]"), "{json}");
    }
}
