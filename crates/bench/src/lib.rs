//! Experiment harness shared by the `exp_*` binaries: text tables and
//! common workload plumbing.
//!
//! Each binary regenerates one experiment from `EXPERIMENTS.md`; run them
//! with e.g. `cargo run --release -p bucketrank-bench --bin exp_equivalence`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;
pub mod roofline;
pub mod table;
pub mod timing;

pub use report::BenchReport;
pub use table::Table;
pub use timing::{Measurement, Sampler};

/// Formats a ratio with three decimals, or `-` for an undefined ratio.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".to_owned()
    } else {
        format!("{:.3}", num / den)
    }
}

/// Wall-clock helper: runs `f` and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(3.0, 2.0), "1.500");
        assert_eq!(ratio(1.0, 0.0), "-");
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
