//! Criterion benches for the four partial-ranking metrics (experiment
//! E4's microbenchmark counterpart): fast vs naive pair statistics, and
//! each metric across domain sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bucketrank_metrics::pairs::{pair_counts, pair_counts_naive};
use bucketrank_metrics::{footrule, hausdorff, kendall};
use bucketrank_workloads::random::random_few_valued;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pair_counts(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let mut g = c.benchmark_group("pair_counts");
    for &n in &[64usize, 256, 1024, 4096] {
        let a = random_few_valued(&mut rng, n, 5);
        let b = random_few_valued(&mut rng, n, 5);
        g.bench_with_input(BenchmarkId::new("fast", n), &n, |bench, _| {
            bench.iter(|| black_box(pair_counts(&a, &b).unwrap()));
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| black_box(pair_counts_naive(&a, &b).unwrap()));
            });
        }
    }
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut g = c.benchmark_group("metrics");
    for &n in &[256usize, 1024, 4096] {
        let a = random_few_valued(&mut rng, n, 5);
        let b = random_few_valued(&mut rng, n, 5);
        g.bench_with_input(BenchmarkId::new("kprof", n), &n, |bench, _| {
            bench.iter(|| black_box(kendall::kprof_x2(&a, &b).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("fprof", n), &n, |bench, _| {
            bench.iter(|| black_box(footrule::fprof_x2(&a, &b).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("khaus", n), &n, |bench, _| {
            bench.iter(|| black_box(hausdorff::khaus(&a, &b).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("fhaus", n), &n, |bench, _| {
            bench.iter(|| black_box(hausdorff::fhaus(&a, &b).unwrap()));
        });
    }
    g.finish();
}

fn bench_full_rankings(c: &mut Criterion) {
    use bucketrank_workloads::random::random_full_ranking;
    let mut rng = StdRng::seed_from_u64(43);
    let mut g = c.benchmark_group("full_rankings");
    for &n in &[1024usize, 8192] {
        let a = random_full_ranking(&mut rng, n);
        let b = random_full_ranking(&mut rng, n);
        g.bench_with_input(BenchmarkId::new("kendall", n), &n, |bench, _| {
            bench.iter(|| black_box(bucketrank_metrics::full::kendall(&a, &b).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("footrule", n), &n, |bench, _| {
            bench.iter(|| black_box(bucketrank_metrics::full::footrule(&a, &b).unwrap()));
        });
    }
    g.finish();
}

fn bench_tie_density(c: &mut Criterion) {
    // Ablation: pair statistics cost vs tie structure at fixed n — from
    // two giant buckets (levels = 2) to a full permutation (levels ≫ n).
    let mut rng = StdRng::seed_from_u64(44);
    let n = 4096;
    let mut g = c.benchmark_group("tie_density");
    for &levels in &[2u32, 8, 64, 4096] {
        let a = random_few_valued(&mut rng, n, levels as usize);
        let b = random_few_valued(&mut rng, n, levels as usize);
        g.bench_with_input(BenchmarkId::new("pair_counts", levels), &levels, |bench, _| {
            bench.iter(|| black_box(pair_counts(&a, &b).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("fhaus", levels), &levels, |bench, _| {
            bench.iter(|| black_box(hausdorff::fhaus(&a, &b).unwrap()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pair_counts, bench_metrics, bench_full_rankings, bench_tie_density
}
criterion_main!(benches);
