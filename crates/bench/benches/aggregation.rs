//! Criterion benches for aggregation (experiments E3/E8 counterpart):
//! the median family vs Borda and the Markov chains, plus the exact
//! optimizers on the sizes they admit.

use bucketrank_aggregate::borda::average_rank_full;
use bucketrank_aggregate::dp::aggregate_optimal_bucketing;
use bucketrank_aggregate::exact::{footrule_optimal_full, kemeny_optimal_full};
use bucketrank_aggregate::markov::{markov_aggregate, MarkovChain, MarkovOptions};
use bucketrank_aggregate::median::{aggregate_full, aggregate_top_k, MedianPolicy};
use bucketrank_core::BucketOrder;
use bucketrank_workloads::random::random_few_valued;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn profile(rng: &mut StdRng, n: usize, m: usize) -> Vec<BucketOrder> {
    (0..m).map(|_| random_few_valued(rng, n, 6)).collect()
}

fn bench_aggregators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(61);
    let mut g = c.benchmark_group("aggregators");
    for &n in &[100usize, 1000, 10000] {
        let inputs = profile(&mut rng, n, 7);
        g.bench_with_input(BenchmarkId::new("median_top10", n), &n, |b, _| {
            b.iter(|| black_box(aggregate_top_k(&inputs, 10, MedianPolicy::Lower).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("median_full", n), &n, |b, _| {
            b.iter(|| black_box(aggregate_full(&inputs, MedianPolicy::Lower).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("median_fdagger", n), &n, |b, _| {
            b.iter(|| {
                black_box(aggregate_optimal_bucketing(&inputs, MedianPolicy::Lower).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("borda", n), &n, |b, _| {
            b.iter(|| black_box(average_rank_full(&inputs).unwrap()));
        });
        if n <= 1000 {
            g.bench_with_input(BenchmarkId::new("mc4", n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        markov_aggregate(&inputs, MarkovChain::Mc4, MarkovOptions::default())
                            .unwrap(),
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(62);
    let mut g = c.benchmark_group("exact_optima");
    for &n in &[8usize, 12, 14] {
        let inputs = profile(&mut rng, n, 5);
        g.bench_with_input(BenchmarkId::new("kemeny_held_karp", n), &n, |b, _| {
            b.iter(|| black_box(kemeny_optimal_full(&inputs).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("kemeny_branch_bound", n), &n, |b, _| {
            b.iter(|| {
                black_box(bucketrank_aggregate::bb::kemeny_optimal_bb(&inputs).unwrap())
            });
        });
    }
    // B&B scales past Held–Karp on cohesive profiles.
    {
        use bucketrank_workloads::mallows::Mallows;
        let model = Mallows::new(24, 1.0);
        let inputs = model.sample_profile(&mut rng, 7);
        g.bench_function("kemeny_branch_bound_n24_cohesive", |b| {
            b.iter(|| {
                black_box(bucketrank_aggregate::bb::kemeny_optimal_bb(&inputs).unwrap())
            });
        });
    }
    {
        let inputs = profile(&mut rng, 60, 7);
        g.bench_function("schulze_n60", |b| {
            b.iter(|| black_box(bucketrank_aggregate::schulze::schulze(&inputs).unwrap()));
        });
    }
    for &n in &[16usize, 64, 256] {
        let inputs = profile(&mut rng, n, 5);
        g.bench_with_input(BenchmarkId::new("footrule_hungarian", n), &n, |b, _| {
            b.iter(|| black_box(footrule_optimal_full(&inputs).unwrap()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aggregators, bench_exact
}
criterion_main!(benches);
