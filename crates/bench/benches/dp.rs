//! Criterion benches for the optimal-bucketing dynamic program
//! (experiment E5's microbenchmark counterpart): the paper's Figure-1
//! linear-space algorithm vs the table and prefix-sum variants.

use bucketrank_aggregate::dp::{
    optimal_bucketing, optimal_bucketing_prefix, optimal_bucketing_table,
};
use bucketrank_core::Pos;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn scores(rng: &mut StdRng, n: usize) -> Vec<Pos> {
    (0..n)
        .map(|_| Pos::from_half_units(rng.gen_range(0..(4 * n as i64 + 2))))
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(51);
    let mut g = c.benchmark_group("optimal_bucketing");
    for &n in &[128usize, 512, 2048] {
        let f = scores(&mut rng, n);
        g.bench_with_input(BenchmarkId::new("figure1", n), &n, |b, _| {
            b.iter(|| black_box(optimal_bucketing(&f)));
        });
        g.bench_with_input(BenchmarkId::new("table", n), &n, |b, _| {
            b.iter(|| black_box(optimal_bucketing_table(&f)));
        });
        g.bench_with_input(BenchmarkId::new("prefix", n), &n, |b, _| {
            b.iter(|| black_box(optimal_bucketing_prefix(&f)));
        });
    }
    g.finish();
}

fn bench_dp_structured(c: &mut Criterion) {
    // Ablation: clustered scores (few natural buckets) vs spread scores.
    let mut rng = StdRng::seed_from_u64(52);
    let n = 1024;
    let clustered: Vec<Pos> = (0..n)
        .map(|_| Pos::from_half_units(rng.gen_range(0..5) * 400 + rng.gen_range(0..10)))
        .collect();
    let spread = scores(&mut rng, n);
    let mut g = c.benchmark_group("dp_score_structure");
    g.bench_function("clustered", |b| {
        b.iter(|| black_box(optimal_bucketing(&clustered)));
    });
    g.bench_function("spread", |b| {
        b.iter(|| black_box(optimal_bucketing(&spread)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_dp, bench_dp_structured
}
criterion_main!(benches);
