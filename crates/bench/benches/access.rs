//! Criterion benches for the access layer (experiment E6 counterpart):
//! MEDRANK wall-clock vs a full Borda scan, and the end-to-end fielded
//! search flow on the synthetic catalogs.

use bucketrank_access::medrank::medrank_top_k;
use bucketrank_access::query::PreferenceQuery;
use bucketrank_aggregate::borda::average_rank_full;
use bucketrank_core::BucketOrder;
use bucketrank_workloads::datasets::{restaurant_query_specs, restaurants};
use bucketrank_workloads::random::random_few_valued;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_medrank_vs_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(71);
    let mut g = c.benchmark_group("medrank_vs_scan");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inputs: Vec<BucketOrder> = (0..5)
            .map(|_| random_few_valued(&mut rng, n, 5))
            .collect();
        g.bench_with_input(BenchmarkId::new("medrank_top1", n), &n, |b, _| {
            b.iter(|| black_box(medrank_top_k(&inputs, 1).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("medrank_top10", n), &n, |b, _| {
            b.iter(|| black_box(medrank_top_k(&inputs, 10).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("medrank_buckets_top10", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    bucketrank_access::medrank::medrank_top_k_buckets(&inputs, 10).unwrap(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("borda_full_scan", n), &n, |b, _| {
            b.iter(|| black_box(average_rank_full(&inputs).unwrap()));
        });
    }
    g.finish();
}

fn bench_fielded_search(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(72);
    let mut g = c.benchmark_group("fielded_search");
    for &n in &[1_000usize, 10_000] {
        let table = restaurants(&mut rng, n);
        let query = PreferenceQuery::new(restaurant_query_specs()).with_k(5);
        // Planning (index scans) + aggregation, end to end.
        g.bench_with_input(BenchmarkId::new("plan_and_run", n), &n, |b, _| {
            b.iter(|| black_box(query.run(&table).unwrap()));
        });
        // Aggregation only, on pre-planned rankings.
        let rankings = query.plan(&table).unwrap();
        g.bench_with_input(BenchmarkId::new("aggregate_only", n), &n, |b, _| {
            b.iter(|| black_box(medrank_top_k(&rankings, 5).unwrap()));
        });
    }
    g.finish();
}

fn bench_index_vs_sort(c: &mut Criterion) {
    use bucketrank_access::index::IndexedTable;
    let mut rng = StdRng::seed_from_u64(73);
    let mut g = c.benchmark_group("ranking_construction");
    for &n in &[1_000usize, 10_000, 100_000] {
        let table = restaurants(&mut rng, n);
        let specs = restaurant_query_specs();
        g.bench_with_input(BenchmarkId::new("sort_per_query", n), &n, |b, _| {
            b.iter(|| {
                for s in &specs {
                    black_box(table.ranking(s).unwrap());
                }
            });
        });
        let indexed = IndexedTable::build(restaurants(&mut rng, n)).unwrap();
        g.bench_with_input(BenchmarkId::new("from_index", n), &n, |b, _| {
            b.iter(|| {
                for s in &specs {
                    black_box(indexed.ranking(s).unwrap());
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_medrank_vs_scan, bench_fielded_search, bench_index_vs_sort
}
criterion_main!(benches);
