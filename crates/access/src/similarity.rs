//! Similarity search via rank aggregation — the Fagin–Kumar–Sivakumar
//! SIGMOD 2003 scheme (\[11\]) that Section 6 recalls verbatim: *"the
//! median rank aggregation algorithm was implemented by using two cursors
//! for each attribute to implicitly rank the database objects with
//! respect to the query without having to sort for every query."*
//!
//! Given a query point, each numeric attribute induces a ranking of the
//! records by `|value − query|`. Materializing that ranking would cost a
//! sort per query; instead, two cursors start at the query's position in
//! the attribute's **pre-sorted index** and walk outward (one up, one
//! down), yielding the next-nearest record per access. MEDRANK's majority
//! rule runs on top: the first records seen in more than half the
//! attributes are the answer, and the cursors never advance past what the
//! instance requires.

use crate::db::{AttrValue, Table};
use crate::error::AccessError;
use crate::model::AccessStats;
use bucketrank_core::{BucketOrder, ElementId};
use bucketrank_metrics::batch::{self, BatchMetric, DistanceMatrix};

/// A pre-sorted numeric attribute prepared for two-cursor access.
#[derive(Debug, Clone)]
struct SortedAttribute {
    name: String,
    /// `(value, row)` ascending.
    entries: Vec<(f64, ElementId)>,
}

/// A similarity-search engine over the numeric attributes of a table.
///
/// Build once (`O(attrs · n log n)`), then answer any number of queries
/// with sub-linear access cost each.
#[derive(Debug)]
pub struct SimilarityIndex {
    n: usize,
    attributes: Vec<SortedAttribute>,
}

/// The result of a similarity query.
#[derive(Debug, Clone)]
pub struct SimilarityResult {
    /// The `k` nearest records by median attribute-distance rank, in the
    /// order they achieved a majority.
    pub top: Vec<ElementId>,
    /// Access accounting: entries popped per attribute.
    pub stats: AccessStats,
}

impl SimilarityIndex {
    /// Builds the index over the named numeric attributes.
    ///
    /// # Errors
    /// [`AccessError::UnknownAttribute`] / [`AccessError::TypeMismatch`] /
    /// [`AccessError::NonFiniteValue`].
    pub fn build(table: &Table, attributes: &[&str]) -> Result<Self, AccessError> {
        if attributes.is_empty() {
            return Err(AccessError::NoSources);
        }
        let n = table.len();
        let mut out = Vec::with_capacity(attributes.len());
        for &name in attributes {
            let mut entries = Vec::with_capacity(n);
            for row in 0..n {
                let v = match table.value(row, name) {
                    Some(&AttrValue::Int(x)) => x as f64,
                    Some(&AttrValue::Float(x)) => {
                        if !x.is_finite() {
                            return Err(AccessError::NonFiniteValue {
                                attribute: name.to_owned(),
                            });
                        }
                        x
                    }
                    Some(AttrValue::Text(_)) => {
                        return Err(AccessError::TypeMismatch {
                            attribute: name.to_owned(),
                            expected: "a numeric attribute",
                        })
                    }
                    None => {
                        return Err(AccessError::UnknownAttribute {
                            name: name.to_owned(),
                        })
                    }
                };
                entries.push((v, row as ElementId));
            }
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            out.push(SortedAttribute {
                name: name.to_owned(),
                entries,
            });
        }
        Ok(SimilarityIndex {
            n,
            attributes: out,
        })
    }

    /// The attribute names, in index order (query values must match it).
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Materializes, for each indexed attribute, the full ranking of the
    /// records by distance `|value − query|` — the rankings the
    /// two-cursor walk of [`Self::nearest`] enumerates implicitly.
    /// Records at equal distance tie (one bucket), so the result is a
    /// genuine bucket order per attribute, all over the record domain.
    ///
    /// # Errors
    /// [`AccessError::DomainMismatch`] if `query` does not match the
    /// attribute count; [`AccessError::NonFiniteValue`] for a non-finite
    /// query value.
    pub fn attribute_rankings(&self, query: &[f64]) -> Result<Vec<BucketOrder>, AccessError> {
        if query.len() != self.attributes.len() {
            return Err(AccessError::DomainMismatch {
                expected: self.attributes.len(),
                found: query.len(),
            });
        }
        if query.iter().any(|q| !q.is_finite()) {
            return Err(AccessError::NonFiniteValue {
                attribute: "<query>".to_owned(),
            });
        }
        let mut keys = vec![0u64; self.n];
        Ok(self
            .attributes
            .iter()
            .zip(query)
            .map(|(a, &q)| {
                for &(v, row) in &a.entries {
                    // |v − q| is finite and non-negative, so its IEEE bit
                    // pattern is monotone in the value: sorting by the
                    // bits sorts by distance, and exact ties stay ties.
                    keys[row as usize] = (v - q).abs().to_bits();
                }
                BucketOrder::from_keys(&keys)
            })
            .collect())
    }

    /// How much the indexed attributes agree about `query`: the pairwise
    /// distance matrix of the attribute distance-rankings under `metric`,
    /// computed with the prepared batch engine (each attribute ranking
    /// prepared once). Small entries mean the attributes rank the records
    /// near-identically around this query — the regime where MEDRANK's
    /// majority rule terminates shallow.
    ///
    /// # Errors
    /// As [`Self::attribute_rankings`].
    pub fn attribute_agreement(
        &self,
        query: &[f64],
        metric: BatchMetric,
    ) -> Result<DistanceMatrix, AccessError> {
        let rankings = self.attribute_rankings(query)?;
        Ok(batch::pairwise_matrix(&rankings, metric)
            .expect("attribute rankings share the record domain"))
    }

    /// Finds the `k` records nearest to `query` (one value per indexed
    /// attribute) under median rank of per-attribute distance, reading
    /// each attribute index outward from the query point only as far as
    /// the majority rule requires.
    ///
    /// # Errors
    /// [`AccessError::DomainMismatch`] if `query` does not match the
    /// attribute count; [`AccessError::InvalidK`]; or
    /// [`AccessError::NonFiniteValue`] for a non-finite query value.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<SimilarityResult, AccessError> {
        if query.len() != self.attributes.len() {
            return Err(AccessError::DomainMismatch {
                expected: self.attributes.len(),
                found: query.len(),
            });
        }
        if query.iter().any(|q| !q.is_finite()) {
            return Err(AccessError::NonFiniteValue {
                attribute: "<query>".to_owned(),
            });
        }
        if k > self.n {
            return Err(AccessError::InvalidK {
                k,
                domain_size: self.n,
            });
        }
        let m = self.attributes.len();
        let majority = (m / 2) as u32;

        // Two cursors per attribute: `down` (next index below the query
        // insertion point) and `up` (next at/above). Popping yields rows
        // in nondecreasing |value − query| order; ties resolved toward
        // the upper cursor, then row id, for determinism.
        struct Cursor {
            down: isize,
            up: usize,
        }
        let mut cursors: Vec<Cursor> = self
            .attributes
            .iter()
            .zip(query)
            .map(|(a, &q)| {
                let up = a.entries.partition_point(|&(v, _)| v < q);
                Cursor {
                    down: up as isize - 1,
                    up,
                }
            })
            .collect();

        let mut stats = AccessStats::new(m);
        let mut counts = vec![0u32; self.n];
        let mut emitted = vec![false; self.n];
        let mut top = Vec::with_capacity(k);

        while top.len() < k {
            let mut any = false;
            let mut round_winners: Vec<ElementId> = Vec::new();
            for (ai, cur) in cursors.iter_mut().enumerate() {
                let entries = &self.attributes[ai].entries;
                let q = query[ai];
                // Pop the nearer of the two cursor candidates.
                let down_d = (cur.down >= 0)
                    .then(|| (q - entries[cur.down as usize].0).abs());
                let up_d = (cur.up < entries.len()).then(|| (entries[cur.up].0 - q).abs());
                let row = match (down_d, up_d) {
                    (None, None) => continue,
                    (Some(_), None) => {
                        let r = entries[cur.down as usize].1;
                        cur.down -= 1;
                        r
                    }
                    (None, Some(_)) => {
                        let r = entries[cur.up].1;
                        cur.up += 1;
                        r
                    }
                    (Some(d), Some(u)) => {
                        if d < u {
                            let r = entries[cur.down as usize].1;
                            cur.down -= 1;
                            r
                        } else {
                            let r = entries[cur.up].1;
                            cur.up += 1;
                            r
                        }
                    }
                };
                any = true;
                stats.sorted_depth[ai] += 1;
                counts[row as usize] += 1;
                if counts[row as usize] == majority + 1 && !emitted[row as usize] {
                    round_winners.push(row);
                }
            }
            round_winners.sort_unstable();
            for r in round_winners {
                if top.len() < k && !emitted[r as usize] {
                    emitted[r as usize] = true;
                    top.push(r);
                }
            }
            if !any {
                break;
            }
        }
        Ok(SimilarityResult { top, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{AttrKind, TableBuilder};

    fn points(coords: &[(f64, f64)]) -> Table {
        let mut t = TableBuilder::new();
        t.column("x", AttrKind::Float);
        t.column("y", AttrKind::Float);
        for &(x, y) in coords {
            t.row(vec![AttrValue::Float(x), AttrValue::Float(y)]);
        }
        t.finish().unwrap()
    }

    #[test]
    fn exact_match_is_found_at_depth_one() {
        let t = points(&[(0.0, 0.0), (5.0, 5.0), (9.0, 1.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let r = idx.nearest(&[5.0, 5.0], 1).unwrap();
        assert_eq!(r.top, vec![1]);
        assert_eq!(r.stats.max_depth(), 1);
        assert_eq!(idx.attribute_names(), vec!["x", "y"]);
    }

    #[test]
    fn nearest_by_median_rank() {
        // Record 1 is nearest in both attributes to the query (4, 4).
        let t = points(&[(0.0, 9.0), (4.5, 3.5), (9.0, 0.0), (5.0, 8.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let r = idx.nearest(&[4.0, 4.0], 1).unwrap();
        assert_eq!(r.top, vec![1]);
    }

    #[test]
    fn top_k_drains_whole_table() {
        let t = points(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let r = idx.nearest(&[0.0, 0.0], 3).unwrap();
        assert_eq!(r.top, vec![0, 1, 2]);
    }

    #[test]
    fn matches_offline_median_of_distance_rankings() {
        // Differential check: the winner's refined median distance-rank
        // is minimal among all records.
        let coords: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let a = (i * 37 % 100) as f64 / 3.0;
                let b = (i * 61 % 100) as f64 / 7.0;
                (a, b)
            })
            .collect();
        let t = points(&coords);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let query = [10.0, 5.0];
        let r = idx.nearest(&query, 1).unwrap();
        let w = r.top[0] as usize;
        // Offline: rank by |x − qx| and |y − qy|; winner must be in the
        // top half of both... precisely: its max rank over both lists is
        // within the MEDRANK depth bound.
        let rank_in = |f: &dyn Fn(usize) -> f64| -> Vec<usize> {
            let mut ids: Vec<usize> = (0..coords.len()).collect();
            ids.sort_by(|&a, &b| f(a).partial_cmp(&f(b)).unwrap().then(a.cmp(&b)));
            let mut rank = vec![0; coords.len()];
            for (pos, &id) in ids.iter().enumerate() {
                rank[id] = pos;
            }
            rank
        };
        let rx = rank_in(&|i| (coords[i].0 - query[0]).abs());
        let ry = rank_in(&|i| (coords[i].1 - query[1]).abs());
        // m = 2 ⇒ majority needs both lists; the winner minimizes (up to
        // cursor tie-handling) the max of its two ranks.
        let win_score = rx[w].max(ry[w]);
        let best_possible = (0..coords.len()).map(|i| rx[i].max(ry[i])).min().unwrap();
        assert!(
            win_score <= best_possible + 2,
            "winner {w} has max-rank {win_score}, best possible {best_possible}"
        );
        // Sub-linear access.
        assert!(r.stats.total_accesses() < 2 * coords.len() as u64);
    }

    #[test]
    fn int_attributes_work() {
        let mut t = TableBuilder::new();
        t.column("price", AttrKind::Int);
        for p in [100i64, 250, 260, 900] {
            t.row(vec![AttrValue::Int(p)]);
        }
        let t = t.finish().unwrap();
        let idx = SimilarityIndex::build(&t, &["price"]).unwrap();
        let r = idx.nearest(&[255.0], 2).unwrap();
        assert_eq!(r.top.len(), 2);
        assert!(r.top.contains(&1) && r.top.contains(&2));
    }

    #[test]
    fn attribute_rankings_rank_by_distance_with_ties() {
        // Distances to query x = 5: rows 0, 1, 2, 3 → 5, 1, 1, 4.
        let t = points(&[(0.0, 0.0), (4.0, 0.0), (6.0, 0.0), (9.0, 0.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let rankings = idx.attribute_rankings(&[5.0, 0.0]).unwrap();
        assert_eq!(rankings.len(), 2);
        let rx = &rankings[0];
        assert!(rx.is_tied(1, 2), "equal distances must tie");
        assert!(rx.prefers(1, 3) && rx.prefers(3, 0));
        // Every row is at y = 0, so the y-ranking is one bucket.
        assert_eq!(rankings[1].num_buckets(), 1);
    }

    #[test]
    fn attribute_agreement_is_zero_iff_rankings_coincide() {
        // y = x for every record, so both attributes induce the same
        // distance ranking for any query on the diagonal.
        let t = points(&[(1.0, 1.0), (4.0, 4.0), (9.0, 9.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        let mx = idx.attribute_agreement(&[3.0, 3.0], BatchMetric::KProfX2).unwrap();
        assert_eq!(mx.get(0, 1), 0);
        // An off-diagonal query breaks the agreement.
        let mx = idx.attribute_agreement(&[1.0, 9.0], BatchMetric::KProfX2).unwrap();
        assert!(mx.get(0, 1) > 0);
    }

    #[test]
    fn attribute_rankings_errors() {
        let t = points(&[(0.0, 0.0), (1.0, 1.0)]);
        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        assert!(idx.attribute_rankings(&[1.0]).is_err());
        assert!(idx.attribute_rankings(&[1.0, f64::INFINITY]).is_err());
        assert!(idx.attribute_agreement(&[1.0], BatchMetric::FHaus).is_err());
    }

    #[test]
    fn errors() {
        let t = points(&[(0.0, 0.0)]);
        assert!(SimilarityIndex::build(&t, &[]).is_err());
        assert!(SimilarityIndex::build(&t, &["z"]).is_err());
        let mut t2 = TableBuilder::new();
        t2.column("tag", AttrKind::Text);
        t2.row(vec![AttrValue::text("a")]);
        assert!(SimilarityIndex::build(&t2.finish().unwrap(), &["tag"]).is_err());

        let idx = SimilarityIndex::build(&t, &["x", "y"]).unwrap();
        assert!(idx.nearest(&[1.0], 1).is_err());
        assert!(idx.nearest(&[1.0, f64::NAN], 1).is_err());
        assert!(idx.nearest(&[1.0, 1.0], 5).is_err());
    }
}
