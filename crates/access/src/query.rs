//! Preference queries: the end-to-end fielded-search flow.
//!
//! A [`PreferenceQuery`] lists the user's per-attribute preferences
//! (each an [`OrderSpec`]), plans one partial ranking per attribute, and
//! aggregates them with MEDRANK — reading, in the sorted-access model, as
//! few records per index as the instance allows.

use crate::db::{OrderSpec, Table};
use crate::error::AccessError;
use crate::medrank::{medrank_top_k, MedrankResult};
use crate::model::AccessStats;
use bucketrank_core::{BucketOrder, ElementId};

/// A multi-attribute preference query over a [`Table`].
#[derive(Debug, Clone)]
pub struct PreferenceQuery {
    specs: Vec<OrderSpec>,
    k: usize,
    weights: Option<Vec<f64>>,
}

/// The answer to a [`PreferenceQuery`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The top-k record ids, best first.
    pub top: Vec<ElementId>,
    /// Access accounting per attribute index.
    pub stats: AccessStats,
    /// The per-attribute partial rankings the planner produced (one per
    /// order spec, in spec order).
    pub rankings: Vec<BucketOrder>,
}

impl PreferenceQuery {
    /// Builds a query from per-attribute preferences; defaults to `k = 1`
    /// with equal attribute weights.
    pub fn new(specs: Vec<OrderSpec>) -> Self {
        PreferenceQuery {
            specs,
            k: 1,
            weights: None,
        }
    }

    /// Sets the number of results wanted.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Weights the attributes (one weight per order spec): "price matters
    /// twice as much as airline". Aggregation switches to weighted
    /// MEDRANK.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// The order specs.
    pub fn specs(&self) -> &[OrderSpec] {
        &self.specs
    }

    /// Plans the per-attribute rankings without running the aggregation.
    ///
    /// # Errors
    /// Any ranking-construction error from [`Table::ranking`].
    pub fn plan(&self, table: &Table) -> Result<Vec<BucketOrder>, AccessError> {
        if self.specs.is_empty() {
            return Err(AccessError::NoSources);
        }
        self.specs.iter().map(|s| table.ranking(s)).collect()
    }

    /// Plans and runs the query with MEDRANK (weighted when weights were
    /// supplied).
    ///
    /// # Errors
    /// Planning errors, [`AccessError::NoSources`],
    /// [`AccessError::InvalidK`] if `k` exceeds the table size, or
    /// [`AccessError::DomainMismatch`] for malformed weights.
    pub fn run(&self, table: &Table) -> Result<QueryResult, AccessError> {
        let rankings = self.plan(table)?;
        let MedrankResult { top, stats } = match &self.weights {
            Some(w) => crate::medrank::medrank_top_k_weighted(&rankings, w, self.k)?,
            None => medrank_top_k(&rankings, self.k)?,
        };
        Ok(QueryResult {
            top,
            stats,
            rankings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{AttrKind, AttrValue, Binning, Direction, TableBuilder};

    fn flights() -> Table {
        let mut t = TableBuilder::new();
        t.column("price", AttrKind::Int);
        t.column("stops", AttrKind::Int);
        t.column("airline", AttrKind::Text);
        // id: (price, stops, airline)
        t.row(vec![AttrValue::Int(320), AttrValue::Int(0), AttrValue::text("blue")]);
        t.row(vec![AttrValue::Int(250), AttrValue::Int(1), AttrValue::text("blue")]);
        t.row(vec![AttrValue::Int(250), AttrValue::Int(0), AttrValue::text("red")]);
        t.row(vec![AttrValue::Int(410), AttrValue::Int(2), AttrValue::text("red")]);
        t.row(vec![AttrValue::Int(180), AttrValue::Int(3), AttrValue::text("gray")]);
        t.finish().unwrap()
    }

    #[test]
    fn end_to_end_flight_search() {
        let q = PreferenceQuery::new(vec![
            OrderSpec::numeric("price", Direction::Asc)
                .with_binning(Binning::Thresholds(vec![200.0, 300.0]))
                .unwrap(),
            OrderSpec::numeric("stops", Direction::Asc),
            OrderSpec::text_preference("airline", ["blue"]),
        ])
        .with_k(2);
        let r = q.run(&flights()).unwrap();
        assert_eq!(r.rankings.len(), 3);
        // Flight 0 (nonstop, preferred airline) tops stops and airline and
        // wins in round 1; flight 1 (preferred airline, mid price bucket)
        // reaches a majority in round 2.
        assert_eq!(r.top, vec![0, 1]);
        // MEDRANK stopped after two rounds: 6 accesses, far below a full
        // scan of each index (15).
        assert_eq!(r.stats.total_accesses(), 6);
    }

    #[test]
    fn plan_exposes_rankings() {
        let q = PreferenceQuery::new(vec![OrderSpec::numeric("stops", Direction::Asc)]);
        let plan = q.plan(&flights()).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].display(), "[0 2 | 1 | 3 | 4]");
        assert_eq!(q.specs().len(), 1);
    }

    #[test]
    fn empty_spec_list_rejected() {
        let q = PreferenceQuery::new(vec![]);
        assert!(matches!(q.plan(&flights()), Err(AccessError::NoSources)));
    }

    #[test]
    fn bad_attribute_propagates() {
        let q = PreferenceQuery::new(vec![OrderSpec::numeric("altitude", Direction::Asc)]);
        assert!(matches!(
            q.run(&flights()),
            Err(AccessError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn weighted_query_biases_toward_heavy_attribute() {
        // Weight "stops" overwhelmingly: the nonstop flights dominate.
        let q = PreferenceQuery::new(vec![
            OrderSpec::numeric("price", Direction::Asc),
            OrderSpec::numeric("stops", Direction::Asc),
        ])
        .with_k(2)
        .with_weights(vec![1.0, 10.0]);
        let r = q.run(&flights()).unwrap();
        // Nonstop flights are 0 and 2.
        let mut got = r.top.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
        // Bad weights propagate as errors.
        let bad = PreferenceQuery::new(vec![OrderSpec::numeric("price", Direction::Asc)])
            .with_weights(vec![1.0, 2.0]);
        assert!(matches!(
            bad.run(&flights()),
            Err(AccessError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn k_too_large_rejected() {
        let q = PreferenceQuery::new(vec![OrderSpec::numeric("price", Direction::Asc)]).with_k(99);
        assert!(matches!(q.run(&flights()), Err(AccessError::InvalidK { .. })));
    }
}
