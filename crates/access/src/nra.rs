//! NRA — "No Random Access" top-k (Fagin, Lotem, Naor \[12\]), the second
//! classical algorithm of the instance-optimality framework the paper's
//! Section 6 builds on.
//!
//! NRA consumes the score lists by sorted access only (like MEDRANK, and
//! unlike TA) and maintains, for every element seen so far, a **lower
//! bound** (seen scores + 0 for unseen lists) and an **upper bound**
//! (seen scores + the current cursor score of each unseen list) on its
//! aggregate. It stops when `k` elements have lower bounds at least the
//! best upper bound of everything else. Output ranks are therefore
//! certified without a single random access — the same access discipline
//! MEDRANK uses, at the price of bound bookkeeping.

use crate::error::AccessError;
use crate::model::AccessStats;
use crate::ta::ScoreList;
use bucketrank_core::ElementId;

/// Result of an NRA run.
#[derive(Debug, Clone)]
pub struct NraResult {
    /// The top-k elements with their aggregate-score bounds
    /// `(element, lower, upper)`, best first by lower bound.
    pub top: Vec<(ElementId, f64, f64)>,
    /// Access accounting (sorted accesses only; `random_accesses` stays
    /// zero by construction).
    pub stats: AccessStats,
}

/// Runs NRA for the top `k` elements under the **sum** aggregate over
/// descending-sorted score lists, with sorted access only.
///
/// Scores must be non-negative (the missing-list lower bound is 0).
///
/// # Errors
/// [`AccessError::NoSources`], [`AccessError::DomainMismatch`],
/// [`AccessError::InvalidK`], or [`AccessError::NonFiniteValue`] if any
/// list contains a negative score.
pub fn nra_top_k(lists: &[ScoreList], k: usize) -> Result<NraResult, AccessError> {
    let first = lists.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for l in lists {
        if l.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: l.len(),
            });
        }
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }
    // Non-negativity is a precondition of the 0-lower-bound; the smallest
    // score is the last sorted entry, so this check is O(m).
    for l in lists {
        if n > 0 && l.sorted_entry(n - 1).1 < 0.0 {
            return Err(AccessError::NonFiniteValue {
                attribute: "<score list>".to_owned(),
            });
        }
    }
    let m = lists.len();
    let mut stats = AccessStats::new(m);

    // Per element: scores seen per list (NaN = unseen), count seen.
    let mut seen_score = vec![f64::NAN; n * m];
    let mut seen_any = vec![false; n];
    let mut cursor = vec![f64::INFINITY; m];

    for depth in 0..n {
        for (li, list) in lists.iter().enumerate() {
            let (e, s) = list.sorted_entry(depth);
            stats.sorted_depth[li] = depth as u64 + 1;
            cursor[li] = s;
            seen_score[e as usize * m + li] = s;
            seen_any[e as usize] = true;
        }

        // Bounds for all seen elements.
        let mut bounded: Vec<(ElementId, f64, f64)> = Vec::new();
        for e in 0..n {
            if !seen_any[e] {
                continue;
            }
            let mut lo = 0.0;
            let mut hi = 0.0;
            for li in 0..m {
                let s = seen_score[e * m + li];
                if s.is_nan() {
                    hi += cursor[li];
                } else {
                    lo += s;
                    hi += s;
                }
            }
            bounded.push((e as ElementId, lo, hi));
        }
        if bounded.len() < k {
            continue;
        }
        // Candidates: k largest lower bounds (ties by id for determinism).
        bounded.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite bounds")
                .then(a.0.cmp(&b.0))
        });
        let kth_lower = bounded[k - 1].1;
        // Threshold: the best upper bound among non-candidates, and the
        // upper bound of a completely unseen element (sum of cursors).
        let unseen_upper: f64 = cursor.iter().sum();
        let mut rival_upper = if (bounded.len() as u64) < n as u64 {
            unseen_upper
        } else {
            f64::NEG_INFINITY
        };
        for &(_, _, hi) in &bounded[k..] {
            rival_upper = rival_upper.max(hi);
        }
        if kth_lower >= rival_upper {
            bounded.truncate(k);
            return Ok(NraResult {
                top: bounded,
                stats,
            });
        }
    }
    // Exhausted all lists: bounds are exact.
    let mut bounded: Vec<(ElementId, f64, f64)> = (0..n)
        .map(|e| {
            let lo: f64 = (0..m).map(|li| seen_score[e * m + li]).sum();
            (e as ElementId, lo, lo)
        })
        .collect();
    bounded.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite bounds")
            .then(a.0.cmp(&b.0))
    });
    bounded.truncate(k);
    Ok(NraResult {
        top: bounded,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists(scores: &[&[f64]]) -> Vec<ScoreList> {
        scores
            .iter()
            .map(|s| ScoreList::from_scores(s).unwrap())
            .collect()
    }

    fn exact_top(lists: &[ScoreList], k: usize) -> Vec<ElementId> {
        let n = lists[0].len();
        let mut v: Vec<(ElementId, f64)> = (0..n)
            .map(|e| {
                (
                    e as ElementId,
                    lists.iter().map(|l| l.score(e as ElementId)).sum(),
                )
            })
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v.into_iter().take(k).map(|(e, _)| e).collect()
    }

    #[test]
    fn finds_exact_top_k_set() {
        let ls = lists(&[
            &[0.9, 0.5, 0.1, 0.3, 0.7],
            &[0.8, 0.6, 0.2, 0.4, 0.1],
            &[0.7, 0.9, 0.3, 0.1, 0.2],
        ]);
        for k in 1..=5 {
            let r = nra_top_k(&ls, k).unwrap();
            let got: Vec<ElementId> = r.top.iter().map(|&(e, _, _)| e).collect();
            assert_eq!(got, exact_top(&ls, k), "k = {k}");
            // Lower bounds never exceed upper bounds.
            for &(_, lo, hi) in &r.top {
                assert!(lo <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn no_random_accesses_ever() {
        let ls = lists(&[&[0.5, 0.9, 0.1], &[0.4, 0.8, 0.2]]);
        let r = nra_top_k(&ls, 2).unwrap();
        assert!(r.stats.random_accesses.iter().all(|&x| x == 0));
    }

    #[test]
    fn early_termination_with_dominant_element() {
        let n = 500;
        let mut s1: Vec<f64> = (0..n).map(|i| 0.5 - i as f64 / (4 * n) as f64).collect();
        let mut s2 = s1.clone();
        s1[3] = 10.0;
        s2[3] = 10.0;
        let ls = lists(&[&s1, &s2]);
        let r = nra_top_k(&ls, 1).unwrap();
        assert_eq!(r.top[0].0, 3);
        assert!(
            r.stats.max_depth() < 20,
            "depth = {}",
            r.stats.max_depth()
        );
    }

    #[test]
    fn flat_scores_force_deep_reads_but_stay_correct() {
        let ls = lists(&[&[0.5; 6], &[0.5; 6]]);
        let r = nra_top_k(&ls, 2).unwrap();
        let got: Vec<ElementId> = r.top.iter().map(|&(e, _, _)| e).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(nra_top_k(&[], 1), Err(AccessError::NoSources)));
        let a = ScoreList::from_scores(&[1.0, 2.0]).unwrap();
        let b = ScoreList::from_scores(&[1.0, 2.0, 3.0]).unwrap();
        assert!(nra_top_k(&[a.clone(), b], 1).is_err());
        assert!(nra_top_k(std::slice::from_ref(&a), 5).is_err());
        let neg = ScoreList::from_scores(&[-1.0, 0.0]).unwrap();
        assert!(nra_top_k(&[neg], 1).is_err());
    }
}
