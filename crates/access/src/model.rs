//! Sorted-access cursors and access accounting.
//!
//! The model of \[11\]/\[12\] as used in Section 6: each input partial
//! ranking is available only through *sorted access* — a cursor that
//! yields elements in rank order, one per access, without revealing
//! anything about elements not yet delivered. The cost of an algorithm is
//! the number of accesses it performs; an algorithm is instance-optimal
//! if on every instance its cost is within a constant factor of the best
//! possible for that instance.
//!
//! Ties are delivered bucket by bucket; within a bucket the delivery
//! order is ascending element id (an arbitrary-but-deterministic full
//! refinement, which is all a sequential-access client can observe).

use bucketrank_core::{BucketOrder, ElementId};

/// Access counters for a multi-source run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Sorted-access depth reached in each source.
    pub sorted_depth: Vec<u64>,
    /// Random accesses per source (zero for pure sorted-access
    /// algorithms like MEDRANK).
    pub random_accesses: Vec<u64>,
}

impl AccessStats {
    /// Creates zeroed counters for `m` sources.
    pub fn new(m: usize) -> Self {
        AccessStats {
            sorted_depth: vec![0; m],
            random_accesses: vec![0; m],
        }
    }

    /// Total accesses of both kinds across all sources.
    pub fn total_accesses(&self) -> u64 {
        self.sorted_depth.iter().sum::<u64>() + self.random_accesses.iter().sum::<u64>()
    }

    /// The maximum sorted depth over the sources — the number of
    /// round-robin rounds a synchronized algorithm performed.
    pub fn max_depth(&self) -> u64 {
        self.sorted_depth.iter().copied().max().unwrap_or(0)
    }
}

/// A sorted-access cursor over a [`BucketOrder`].
///
/// ```
/// use bucketrank_access::RankingCursor;
/// use bucketrank_core::BucketOrder;
///
/// let s = BucketOrder::from_buckets(4, vec![vec![2], vec![0, 3], vec![1]]).unwrap();
/// let mut c = RankingCursor::new(&s);
/// assert_eq!(c.next(), Some(2));
/// assert_eq!(c.next(), Some(0)); // tie delivered in id order
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RankingCursor<'a> {
    order: &'a BucketOrder,
    bucket: usize,
    offset: usize,
    depth: u64,
}

impl<'a> RankingCursor<'a> {
    /// Opens a cursor at the top of the ranking.
    pub fn new(order: &'a BucketOrder) -> Self {
        RankingCursor {
            order,
            bucket: 0,
            offset: 0,
            depth: 0,
        }
    }

    /// Delivers the next element in rank order (ties by ascending id),
    /// or `None` when the ranking is exhausted. Each delivery costs one
    /// sorted access.
    #[allow(clippy::should_implement_trait)] // deliberate: not an Iterator, accesses have cost
    pub fn next(&mut self) -> Option<ElementId> {
        let buckets = self.order.buckets();
        while self.bucket < buckets.len() {
            let b = &buckets[self.bucket];
            if self.offset < b.len() {
                let e = b[self.offset];
                self.offset += 1;
                self.depth += 1;
                return Some(e);
            }
            self.bucket += 1;
            self.offset = 0;
        }
        None
    }

    /// Number of elements delivered so far.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Whether the cursor has delivered every element.
    pub fn is_exhausted(&self) -> bool {
        self.depth as usize >= self.order.len()
    }

    /// The index of the bucket the cursor is currently inside (the bucket
    /// of the most recently delivered element), if any delivery happened.
    pub fn current_bucket(&self) -> Option<usize> {
        if self.depth == 0 {
            None
        } else if self.offset == 0 {
            Some(self.bucket - 1)
        } else {
            Some(self.bucket)
        }
    }

    /// Rewinds to the top, resetting the depth counter.
    pub fn reset(&mut self) {
        self.bucket = 0;
        self.offset = 0;
        self.depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_delivers_in_rank_then_id_order() {
        let s = BucketOrder::from_buckets(5, vec![vec![4, 1], vec![0], vec![3, 2]]).unwrap();
        let mut c = RankingCursor::new(&s);
        let mut seen = Vec::new();
        while let Some(e) = c.next() {
            seen.push(e);
        }
        assert_eq!(seen, vec![1, 4, 0, 2, 3]);
        assert_eq!(c.depth(), 5);
        assert!(c.is_exhausted());
        assert_eq!(c.next(), None);
        assert_eq!(c.depth(), 5, "exhausted next() costs nothing");
    }

    #[test]
    fn cursor_reset() {
        let s = BucketOrder::identity(3);
        let mut c = RankingCursor::new(&s);
        c.next();
        c.next();
        assert_eq!(c.depth(), 2);
        c.reset();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.next(), Some(0));
    }

    #[test]
    fn current_bucket_tracking() {
        let s = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
        let mut c = RankingCursor::new(&s);
        assert_eq!(c.current_bucket(), None);
        c.next();
        assert_eq!(c.current_bucket(), Some(0));
        c.next();
        assert_eq!(c.current_bucket(), Some(0));
        c.next();
        assert_eq!(c.current_bucket(), Some(1));
    }

    #[test]
    fn stats_totals() {
        let mut st = AccessStats::new(3);
        st.sorted_depth[0] = 5;
        st.sorted_depth[2] = 7;
        st.random_accesses[1] = 2;
        assert_eq!(st.total_accesses(), 14);
        assert_eq!(st.max_depth(), 7);
        assert_eq!(AccessStats::new(0).max_depth(), 0);
    }

    #[test]
    fn empty_ranking_cursor() {
        let s = BucketOrder::trivial(0);
        let mut c = RankingCursor::new(&s);
        assert!(c.is_exhausted());
        assert_eq!(c.next(), None);
    }
}
