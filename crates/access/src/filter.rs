//! Selection predicates over tables: the filter half of the paper's
//! "rank (and/or filter) the records" (Section 1).
//!
//! A [`Selection`] is a conjunction of per-attribute predicates. Filtering
//! produces a [`View`] — a sub-table with its own dense row ids plus the
//! mapping back to the base table — so the ranking/aggregation pipeline
//! runs unchanged on the filtered domain.

use crate::db::{AttrValue, Table};
use crate::error::AccessError;
use bucketrank_core::ElementId;

/// A predicate on one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Integer attribute within the inclusive range.
    IntRange {
        /// Attribute name.
        attribute: String,
        /// Lower bound (inclusive).
        min: i64,
        /// Upper bound (inclusive).
        max: i64,
    },
    /// Float attribute within the inclusive range.
    FloatRange {
        /// Attribute name.
        attribute: String,
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Text attribute equal to one of the given values.
    TextIn {
        /// Attribute name.
        attribute: String,
        /// Accepted values.
        values: Vec<String>,
    },
}

impl Predicate {
    /// The attribute this predicate constrains.
    pub fn attribute(&self) -> &str {
        match self {
            Predicate::IntRange { attribute, .. }
            | Predicate::FloatRange { attribute, .. }
            | Predicate::TextIn { attribute, .. } => attribute,
        }
    }

    fn matches(&self, v: &AttrValue) -> Result<bool, AccessError> {
        match (self, v) {
            (Predicate::IntRange { min, max, .. }, AttrValue::Int(x)) => {
                Ok(*x >= *min && *x <= *max)
            }
            (Predicate::FloatRange { min, max, .. }, AttrValue::Float(x)) => {
                Ok(*x >= *min && *x <= *max)
            }
            (Predicate::TextIn { values, .. }, AttrValue::Text(s)) => {
                Ok(values.iter().any(|v| v == s))
            }
            _ => Err(AccessError::TypeMismatch {
                attribute: self.attribute().to_owned(),
                expected: "a value matching the predicate's kind",
            }),
        }
    }
}

/// A conjunction of predicates.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    predicates: Vec<Predicate>,
}

impl Selection {
    /// The empty (always-true) selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a predicate to the conjunction.
    pub fn and(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// The predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Evaluates the conjunction on row `row` of `table`.
    ///
    /// # Errors
    /// [`AccessError::UnknownAttribute`] / [`AccessError::TypeMismatch`].
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool, AccessError> {
        for p in &self.predicates {
            let v = table
                .value(row, p.attribute())
                .ok_or_else(|| AccessError::UnknownAttribute {
                    name: p.attribute().to_owned(),
                })?;
            if !p.matches(v)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// A filtered view over a base table: the surviving rows with dense ids.
#[derive(Debug)]
pub struct View<'a> {
    base: &'a Table,
    rows: Vec<usize>,
}

impl<'a> View<'a> {
    /// Applies a selection to a table.
    ///
    /// # Errors
    /// [`AccessError::UnknownAttribute`] / [`AccessError::TypeMismatch`].
    pub fn filter(base: &'a Table, selection: &Selection) -> Result<Self, AccessError> {
        let mut rows = Vec::new();
        for row in 0..base.len() {
            if selection.matches(base, row)? {
                rows.push(row);
            }
        }
        Ok(View { base, rows })
    }

    /// Number of surviving rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The base-table row behind view row `id`.
    pub fn base_row(&self, id: ElementId) -> Option<usize> {
        self.rows.get(id as usize).copied()
    }

    /// Materializes the view as a standalone [`Table`] plus the base-row
    /// mapping (view row id → base row id).
    pub fn materialize(&self) -> (Table, Vec<usize>) {
        (self.base.project_rows(&self.rows), self.rows.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{AttrKind, Direction, OrderSpec, TableBuilder};
    use crate::query::PreferenceQuery;

    fn table() -> Table {
        let mut t = TableBuilder::new();
        t.column("cuisine", AttrKind::Text);
        t.column("distance", AttrKind::Float);
        t.column("stars", AttrKind::Int);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(2.0), AttrValue::Int(4)]);
        t.row(vec![AttrValue::text("sushi"), AttrValue::Float(9.0), AttrValue::Int(5)]);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(14.0), AttrValue::Int(3)]);
        t.row(vec![AttrValue::text("pizza"), AttrValue::Float(3.5), AttrValue::Int(4)]);
        t.finish().unwrap()
    }

    #[test]
    fn filters_conjunctively() {
        let t = table();
        let sel = Selection::new()
            .and(Predicate::TextIn {
                attribute: "cuisine".into(),
                values: vec!["thai".into(), "sushi".into()],
            })
            .and(Predicate::FloatRange {
                attribute: "distance".into(),
                min: 0.0,
                max: 10.0,
            });
        let v = View::filter(&t, &sel).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.base_row(0), Some(0));
        assert_eq!(v.base_row(1), Some(1));
        assert_eq!(v.base_row(5), None);
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_selection_keeps_everything() {
        let t = table();
        let v = View::filter(&t, &Selection::new()).unwrap();
        assert_eq!(v.len(), t.len());
    }

    #[test]
    fn int_range() {
        let t = table();
        let sel = Selection::new().and(Predicate::IntRange {
            attribute: "stars".into(),
            min: 4,
            max: 5,
        });
        let v = View::filter(&t, &sel).unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn materialized_view_supports_full_pipeline() {
        let t = table();
        let sel = Selection::new().and(Predicate::IntRange {
            attribute: "stars".into(),
            min: 4,
            max: 5,
        });
        let (sub, mapping) = View::filter(&t, &sel).unwrap().materialize();
        assert_eq!(sub.len(), 3);
        let q = PreferenceQuery::new(vec![
            OrderSpec::numeric("stars", Direction::Desc),
            OrderSpec::numeric("distance", Direction::Asc),
        ])
        .with_k(1);
        let r = q.run(&sub).unwrap();
        // Winner in the view maps back to a base row with ≥ 4 stars.
        let base = mapping[r.top[0] as usize];
        assert!(matches!(t.value(base, "stars"), Some(&AttrValue::Int(s)) if s >= 4));
    }

    #[test]
    fn errors_surface() {
        let t = table();
        let sel = Selection::new().and(Predicate::IntRange {
            attribute: "zip".into(),
            min: 0,
            max: 1,
        });
        assert!(matches!(
            View::filter(&t, &sel),
            Err(AccessError::UnknownAttribute { .. })
        ));
        let sel = Selection::new().and(Predicate::IntRange {
            attribute: "cuisine".into(),
            min: 0,
            max: 1,
        });
        assert!(matches!(
            View::filter(&t, &sel),
            Err(AccessError::TypeMismatch { .. })
        ));
    }
}
