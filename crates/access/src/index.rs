//! Persistent per-attribute indexes: sort once, query many times.
//!
//! [`Table::ranking`] sorts the whole column on every call — fine for
//! one-shot experiments, wasteful for a serving path where the same
//! catalog answers many preference queries. [`IndexedTable`] keeps each
//! column's rows pre-sorted (ascending by the attribute's natural order)
//! so that building the partial ranking for an [`OrderSpec`] is a single
//! linear grouping pass over the index: no comparison sort per query,
//! direction handled by scanning the index forwards or backwards, and
//! binning applied on the fly (bins are contiguous in a sorted column).

use crate::db::{AttrKind, AttrValue, Direction, OrderRule, OrderSpec, Table};
use crate::error::AccessError;
use bucketrank_core::{BucketOrder, ElementId};
use std::collections::HashMap;

/// One column's index: row ids sorted ascending by the column value, with
/// a parallel array of group keys (rows with equal values share a key).
#[derive(Debug, Clone)]
struct ColumnIndex {
    /// Row ids in ascending value order.
    sorted_rows: Vec<ElementId>,
    /// `value_key[i]` identifies the value of `sorted_rows[i]`; equal
    /// values get equal keys, ascending with the value. For numeric
    /// columns this is the (binnable) numeric value as ordered bits; for
    /// text columns it is a dense code in lexicographic order.
    numeric: Option<Vec<f64>>,
    /// For text columns: the value per sorted row.
    text: Option<Vec<String>>,
}

/// A [`Table`] with pre-built per-column indexes.
#[derive(Debug)]
pub struct IndexedTable {
    table: Table,
    indexes: HashMap<String, ColumnIndex>,
}

impl IndexedTable {
    /// Builds indexes for every column. `O(cols · n log n)` once.
    ///
    /// # Errors
    /// [`AccessError::NonFiniteValue`] on NaN/inf floats.
    pub fn build(table: Table) -> Result<Self, AccessError> {
        let mut indexes = HashMap::new();
        let names: Vec<(String, AttrKind)> = table
            .schema()
            .iter()
            .map(|(n, k)| (n.to_owned(), k))
            .collect();
        for (name, kind) in names {
            let n = table.len();
            let mut rows: Vec<ElementId> = (0..n as ElementId).collect();
            match kind {
                AttrKind::Int | AttrKind::Float => {
                    let mut vals = Vec::with_capacity(n);
                    for row in 0..n {
                        let v = match table.value(row, &name) {
                            Some(&AttrValue::Int(x)) => x as f64,
                            Some(&AttrValue::Float(x)) => {
                                if !x.is_finite() {
                                    return Err(AccessError::NonFiniteValue {
                                        attribute: name.clone(),
                                    });
                                }
                                x
                            }
                            _ => unreachable!("schema guarantees the kind"),
                        };
                        vals.push(v);
                    }
                    rows.sort_by(|&a, &b| {
                        vals[a as usize]
                            .partial_cmp(&vals[b as usize])
                            .expect("finite")
                            .then(a.cmp(&b))
                    });
                    let numeric = rows.iter().map(|&r| vals[r as usize]).collect();
                    indexes.insert(
                        name.clone(),
                        ColumnIndex {
                            sorted_rows: rows,
                            numeric: Some(numeric),
                            text: None,
                        },
                    );
                }
                AttrKind::Text => {
                    let vals: Vec<String> = (0..n)
                        .map(|row| match table.value(row, &name) {
                            Some(AttrValue::Text(s)) => s.clone(),
                            _ => unreachable!("schema guarantees the kind"),
                        })
                        .collect();
                    rows.sort_by(|&a, &b| {
                        vals[a as usize].cmp(&vals[b as usize]).then(a.cmp(&b))
                    });
                    let text = rows.iter().map(|&r| vals[r as usize].clone()).collect();
                    indexes.insert(
                        name.clone(),
                        ColumnIndex {
                            sorted_rows: rows,
                            numeric: None,
                            text: Some(text),
                        },
                    );
                }
            }
        }
        Ok(IndexedTable { table, indexes })
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Builds the partial ranking for an order spec from the index: one
    /// linear pass, no sorting.
    ///
    /// # Errors
    /// [`AccessError::UnknownAttribute`] / [`AccessError::TypeMismatch`].
    pub fn ranking(&self, spec: &OrderSpec) -> Result<BucketOrder, AccessError> {
        let idx = self
            .indexes
            .get(&spec.attribute)
            .ok_or_else(|| AccessError::UnknownAttribute {
                name: spec.attribute.clone(),
            })?;
        let n = self.table.len();
        match &spec.rule {
            OrderRule::Numeric { direction, binning } => {
                let vals = idx.numeric.as_ref().ok_or_else(|| AccessError::TypeMismatch {
                    attribute: spec.attribute.clone(),
                    expected: "a numeric attribute",
                })?;
                // Group ascending, then reverse buckets for Desc.
                let key_of = |v: f64| -> i64 {
                    match binning {
                        Some(b) => b.bin(v),
                        None => 0, // grouped by exact value below
                    }
                };
                let mut buckets: Vec<Vec<ElementId>> = Vec::new();
                for (i, &row) in idx.sorted_rows.iter().enumerate() {
                    let new_group = match i {
                        0 => true,
                        _ => match binning {
                            Some(_) => key_of(vals[i]) != key_of(vals[i - 1]),
                            None => vals[i] != vals[i - 1],
                        },
                    };
                    if new_group {
                        buckets.push(Vec::new());
                    }
                    buckets.last_mut().expect("group opened").push(row);
                }
                if matches!(direction, Direction::Desc) {
                    buckets.reverse();
                }
                Ok(BucketOrder::from_buckets(n, buckets)
                    .expect("index covers every row exactly once"))
            }
            OrderRule::TextPreference { preferred } => {
                let texts = idx.text.as_ref().ok_or_else(|| AccessError::TypeMismatch {
                    attribute: spec.attribute.clone(),
                    expected: "a text attribute",
                })?;
                let rank_of: HashMap<&str, usize> = preferred
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), i))
                    .collect();
                let bottom = preferred.len();
                // One pass over the index: distribute rows into the
                // preference slots (within a slot, index order = id order
                // within equal text values, matching Table::ranking).
                let mut buckets: Vec<Vec<ElementId>> = vec![Vec::new(); bottom + 1];
                for (i, &row) in idx.sorted_rows.iter().enumerate() {
                    let slot = rank_of.get(texts[i].as_str()).copied().unwrap_or(bottom);
                    buckets[slot].push(row);
                }
                let buckets: Vec<Vec<ElementId>> =
                    buckets.into_iter().filter(|b| !b.is_empty()).collect();
                Ok(BucketOrder::from_buckets(n, buckets)
                    .expect("index covers every row exactly once"))
            }
        }
    }

    /// Plans the rankings for a whole preference query from the indexes.
    ///
    /// # Errors
    /// As [`IndexedTable::ranking`]; [`AccessError::NoSources`] for an
    /// empty spec list.
    pub fn plan(&self, specs: &[OrderSpec]) -> Result<Vec<BucketOrder>, AccessError> {
        if specs.is_empty() {
            return Err(AccessError::NoSources);
        }
        specs.iter().map(|s| self.ranking(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Binning, TableBuilder};
    use crate::medrank::medrank_top_k;

    fn restaurant_table() -> Table {
        let mut t = TableBuilder::new();
        t.column("cuisine", AttrKind::Text);
        t.column("distance", AttrKind::Float);
        t.column("stars", AttrKind::Int);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(2.0), AttrValue::Int(4)]);
        t.row(vec![AttrValue::text("sushi"), AttrValue::Float(9.0), AttrValue::Int(5)]);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(14.0), AttrValue::Int(3)]);
        t.row(vec![AttrValue::text("pizza"), AttrValue::Float(3.5), AttrValue::Int(4)]);
        t.finish().unwrap()
    }

    fn specs() -> Vec<OrderSpec> {
        vec![
            OrderSpec::text_preference("cuisine", ["thai", "sushi"]),
            OrderSpec::numeric("distance", Direction::Asc)
                .with_binning(Binning::Width(10.0))
                .unwrap(),
            OrderSpec::numeric("stars", Direction::Desc),
            OrderSpec::numeric("distance", Direction::Asc),
            OrderSpec::numeric("stars", Direction::Asc),
        ]
    }

    #[test]
    fn index_rankings_match_table_rankings() {
        let t = restaurant_table();
        let it = IndexedTable::build(restaurant_table()).unwrap();
        for spec in specs() {
            assert_eq!(
                it.ranking(&spec).unwrap(),
                t.ranking(&spec).unwrap(),
                "spec {spec:?}"
            );
        }
    }

    #[test]
    fn randomized_agreement_with_table_path() {
        use bucketrank_workloads_free::random_catalog;
        for seed in 0..20u64 {
            let t = random_catalog(seed, 60);
            let it = IndexedTable::build(random_catalog(seed, 60)).unwrap();
            for spec in [
                OrderSpec::numeric("x", Direction::Asc),
                OrderSpec::numeric("x", Direction::Desc),
                OrderSpec::numeric("x", Direction::Asc)
                    .with_binning(Binning::Width(3.0))
                    .unwrap(),
                OrderSpec::numeric("y", Direction::Desc)
                    .with_binning(Binning::Width(10.0))
                    .unwrap(),
                OrderSpec::text_preference("tag", ["a", "c"]),
                OrderSpec::text_preference("tag", ["zzz"]),
            ] {
                assert_eq!(
                    it.ranking(&spec).unwrap(),
                    t.ranking(&spec).unwrap(),
                    "seed {seed}, spec {spec:?}"
                );
            }
        }
    }

    /// Tiny rand-free catalog generator for the differential test.
    mod bucketrank_workloads_free {
        use super::*;

        pub fn random_catalog(seed: u64, n: usize) -> Table {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = move |m: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % m
            };
            let mut t = TableBuilder::new();
            t.column("x", AttrKind::Int);
            t.column("y", AttrKind::Float);
            t.column("tag", AttrKind::Text);
            let tags = ["a", "b", "c", "d"];
            for _ in 0..n {
                let x = next(10) as i64;
                let y = next(100) as f64 / 3.0;
                let tag = tags[next(4) as usize];
                t.row(vec![AttrValue::Int(x), AttrValue::Float(y), AttrValue::text(tag)]);
            }
            t.finish().unwrap()
        }
    }

    #[test]
    fn plan_feeds_medrank() {
        let it = IndexedTable::build(restaurant_table()).unwrap();
        let plan = it
            .plan(&[
                OrderSpec::text_preference("cuisine", ["thai"]),
                OrderSpec::numeric("stars", Direction::Desc),
            ])
            .unwrap();
        let r = medrank_top_k(&plan, 1).unwrap();
        assert_eq!(r.top.len(), 1);
        assert!(it.plan(&[]).is_err());
    }

    #[test]
    fn errors() {
        let it = IndexedTable::build(restaurant_table()).unwrap();
        assert!(matches!(
            it.ranking(&OrderSpec::numeric("zip", Direction::Asc)),
            Err(AccessError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            it.ranking(&OrderSpec::numeric("cuisine", Direction::Asc)),
            Err(AccessError::TypeMismatch { .. })
        ));
        assert!(matches!(
            it.ranking(&OrderSpec::text_preference("stars", ["4"])),
            Err(AccessError::TypeMismatch { .. })
        ));
        assert_eq!(it.table().len(), 4);

        let mut bad = TableBuilder::new();
        bad.column("v", AttrKind::Float);
        bad.row(vec![AttrValue::Float(f64::INFINITY)]);
        assert!(matches!(
            IndexedTable::build(bad.finish().unwrap()),
            Err(AccessError::NonFiniteValue { .. })
        ));
    }
}
