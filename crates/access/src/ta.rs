//! The Threshold Algorithm (TA) of Fagin, Lotem and Naor \[12\], as an
//! access-cost baseline for score-based top-k over sorted lists.
//!
//! MEDRANK needs only sorted access and no numeric scores; TA is the
//! classical alternative when attribute *scores* exist and random access
//! is available. Experiment E6 compares the two on access counts, and
//! both against the full-scan cost that average-rank (Borda) aggregation
//! necessarily pays.

use crate::error::AccessError;
use crate::model::AccessStats;
use bucketrank_core::ElementId;

/// One scored, descending-sorted list with random access.
#[derive(Debug, Clone)]
pub struct ScoreList {
    /// `(element, score)` pairs sorted by descending score.
    sorted: Vec<(ElementId, f64)>,
    /// `score_of[e]` for random access.
    score_of: Vec<f64>,
}

impl ScoreList {
    /// Builds a list from per-element scores (higher is better).
    ///
    /// # Errors
    /// [`AccessError::NonFiniteValue`] if any score is not finite.
    pub fn from_scores(scores: &[f64]) -> Result<Self, AccessError> {
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(AccessError::NonFiniteValue {
                attribute: "<score list>".to_owned(),
            });
        }
        let mut sorted: Vec<(ElementId, f64)> = scores
            .iter()
            .enumerate()
            .map(|(e, &s)| (e as ElementId, s))
            .collect();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(ScoreList {
            sorted,
            score_of: scores.to_vec(),
        })
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.score_of.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.score_of.is_empty()
    }

    /// The `(element, score)` pair at sorted-access depth `d` (0-based).
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    pub fn sorted_entry(&self, d: usize) -> (ElementId, f64) {
        self.sorted[d]
    }

    /// Random access: the score of element `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn score(&self, e: ElementId) -> f64 {
        self.score_of[e as usize]
    }
}

/// Result of a TA run.
#[derive(Debug, Clone)]
pub struct TaResult {
    /// Top-k `(element, aggregate_score)`, best first.
    pub top: Vec<(ElementId, f64)>,
    /// Access accounting (sorted depths and random accesses per list).
    pub stats: AccessStats,
}

/// Runs TA for the top `k` elements under the **sum** aggregate (any
/// monotone aggregate works; sum = mean up to scaling).
///
/// # Errors
/// [`AccessError::NoSources`], [`AccessError::DomainMismatch`], or
/// [`AccessError::InvalidK`].
pub fn ta_top_k(lists: &[ScoreList], k: usize) -> Result<TaResult, AccessError> {
    let first = lists.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for l in lists {
        if l.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: l.len(),
            });
        }
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }

    let m = lists.len();
    let mut stats = AccessStats::new(m);
    let mut seen = vec![false; n];
    // Current top-k candidates: (score, element), kept sorted descending.
    let mut top: Vec<(ElementId, f64)> = Vec::with_capacity(k + 1);
    let mut last_seen_scores = vec![f64::INFINITY; m];

    for depth in 0..n {
        for (li, list) in lists.iter().enumerate() {
            let (e, s) = list.sorted[depth];
            stats.sorted_depth[li] = depth as u64 + 1;
            last_seen_scores[li] = s;
            if !seen[e as usize] {
                seen[e as usize] = true;
                // Random-access every *other* list for e's score.
                let mut agg = 0.0;
                for (lj, other) in lists.iter().enumerate() {
                    if lj == li {
                        agg += s;
                    } else {
                        stats.random_accesses[lj] += 1;
                        agg += other.score_of[e as usize];
                    }
                }
                insert_candidate(&mut top, (e, agg), k);
            }
        }
        // Threshold: aggregate of the cursor scores.
        let threshold: f64 = last_seen_scores.iter().sum();
        if top.len() == k && top[k - 1].1 >= threshold {
            break;
        }
    }
    Ok(TaResult { top, stats })
}

fn insert_candidate(top: &mut Vec<(ElementId, f64)>, cand: (ElementId, f64), k: usize) {
    let pos = top
        .iter()
        .position(|&(e, s)| (s, std::cmp::Reverse(e)) < (cand.1, std::cmp::Reverse(cand.0)))
        .unwrap_or(top.len());
    top.insert(pos, cand);
    top.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists(scores: &[&[f64]]) -> Vec<ScoreList> {
        scores
            .iter()
            .map(|s| ScoreList::from_scores(s).unwrap())
            .collect()
    }

    #[test]
    fn finds_the_best_aggregate() {
        let ls = lists(&[
            &[0.9, 0.5, 0.1, 0.3],
            &[0.8, 0.6, 0.2, 0.4],
            &[0.7, 0.9, 0.3, 0.1],
        ]);
        let r = ta_top_k(&ls, 1).unwrap();
        assert_eq!(r.top[0].0, 0);
        assert!((r.top[0].1 - 2.4).abs() < 1e-12);
    }

    #[test]
    fn top_k_ordering_correct() {
        let ls = lists(&[&[1.0, 0.8, 0.6, 0.4], &[0.9, 1.0, 0.5, 0.6]]);
        let r = ta_top_k(&ls, 3).unwrap();
        let exact: Vec<ElementId> = {
            let mut v: Vec<(ElementId, f64)> = (0..4)
                .map(|e| {
                    (
                        e as ElementId,
                        ls.iter().map(|l| l.score_of[e]).sum::<f64>(),
                    )
                })
                .collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            v.into_iter().take(3).map(|(e, _)| e).collect()
        };
        let got: Vec<ElementId> = r.top.iter().map(|&(e, _)| e).collect();
        assert_eq!(got, exact);
    }

    #[test]
    fn early_termination_on_clear_winner() {
        // A single dominant element: TA should stop far before n.
        let n = 100;
        let mut s1: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / n as f64).collect();
        let mut s2 = s1.clone();
        s1[7] = 5.0;
        s2[7] = 5.0;
        let ls = lists(&[&s1, &s2]);
        let r = ta_top_k(&ls, 1).unwrap();
        assert_eq!(r.top[0].0, 7);
        assert!(r.stats.max_depth() < 10, "depth = {}", r.stats.max_depth());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(ta_top_k(&[], 1), Err(AccessError::NoSources)));
        let a = ScoreList::from_scores(&[1.0, 2.0]).unwrap();
        let b = ScoreList::from_scores(&[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            ta_top_k(&[a.clone(), b], 1),
            Err(AccessError::DomainMismatch { .. })
        ));
        assert!(matches!(
            ta_top_k(std::slice::from_ref(&a), 5),
            Err(AccessError::InvalidK { .. })
        ));
        assert!(ScoreList::from_scores(&[f64::NAN]).is_err());
        assert!(!a.is_empty());
    }

    #[test]
    fn ties_and_duplicates() {
        let ls = lists(&[&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]]);
        let r = ta_top_k(&ls, 2).unwrap();
        assert_eq!(r.top.len(), 2);
        // Deterministic id tie-break.
        assert_eq!(r.top[0].0, 0);
        assert_eq!(r.top[1].0, 1);
    }
}
