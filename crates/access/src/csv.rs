//! Loading tables from CSV text.
//!
//! A deliberately small CSV dialect, sufficient for catalog data: comma
//! separator, optional double-quoting (with `""` escapes), no embedded
//! newlines inside quoted fields, first row may be a header. Column kinds
//! are declared by the caller; values are parsed accordingly (`Int`,
//! `Float`, `Text`).

use crate::db::{AttrKind, AttrValue, Table, TableBuilder};
use crate::error::AccessError;

/// Splits one CSV record into fields (commas, optional double quotes).
pub fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Options for [`table_from_csv`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvOptions {
    /// Whether the first non-empty row is a header naming the columns.
    /// Without a header, columns are named `c0, c1, …`.
    pub has_header: bool,
}

/// Parses CSV text into a [`Table`] with the declared column kinds.
///
/// With a header, `kinds` are matched to header columns positionally and
/// the header supplies the names; without one, columns are named
/// `c0, c1, …`.
///
/// # Errors
/// [`AccessError::RowArityMismatch`] on ragged rows;
/// [`AccessError::TypeMismatch`] when a value fails to parse as its
/// declared kind.
pub fn table_from_csv(
    content: &str,
    kinds: &[AttrKind],
    opts: CsvOptions,
) -> Result<Table, AccessError> {
    let mut lines = content
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty());
    let mut builder = TableBuilder::new();
    let names: Vec<String> = if opts.has_header {
        let header = lines.next().ok_or(AccessError::RowArityMismatch {
            got: 0,
            expected: kinds.len(),
        })?;
        let names = split_record(header);
        if names.len() != kinds.len() {
            return Err(AccessError::RowArityMismatch {
                got: names.len(),
                expected: kinds.len(),
            });
        }
        names
    } else {
        (0..kinds.len()).map(|i| format!("c{i}")).collect()
    };
    for (name, &kind) in names.iter().zip(kinds) {
        builder.column(name.clone(), kind);
    }
    for line in lines {
        let fields = split_record(line);
        if fields.len() != kinds.len() {
            return Err(AccessError::RowArityMismatch {
                got: fields.len(),
                expected: kinds.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for ((field, &kind), name) in fields.iter().zip(kinds).zip(&names) {
            let v = parse_value(field.trim(), kind).ok_or_else(|| AccessError::TypeMismatch {
                attribute: name.clone(),
                expected: kind_name(kind),
            })?;
            row.push(v);
        }
        builder.row(row);
    }
    builder.finish()
}

fn parse_value(field: &str, kind: AttrKind) -> Option<AttrValue> {
    match kind {
        AttrKind::Int => field.parse::<i64>().ok().map(AttrValue::Int),
        AttrKind::Float => field
            .parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(AttrValue::Float),
        AttrKind::Text => Some(AttrValue::text(field)),
    }
}

fn kind_name(kind: AttrKind) -> &'static str {
    match kind {
        AttrKind::Int => "an integer",
        AttrKind::Float => "a finite float",
        AttrKind::Text => "text",
    }
}

/// Serializes a table back to CSV (header row included; text fields are
/// quoted when they contain commas or quotes). Round-trips through
/// [`table_from_csv`] with the same kinds.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().iter().map(|(n, _)| n).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..table.len() {
        let mut cells = Vec::with_capacity(names.len());
        for name in &names {
            let cell = match table.value(row, name) {
                Some(AttrValue::Int(x)) => x.to_string(),
                Some(AttrValue::Float(x)) => {
                    // Round-trippable float formatting.
                    format!("{x:?}")
                }
                Some(AttrValue::Text(s)) => {
                    if s.contains(',') || s.contains('"') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s.clone()
                    }
                }
                None => unreachable!("schema names come from the table"),
            };
            cells.push(cell);
        }
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses a compact schema string like `price:int,distance:float,name:text`
/// into `(names, kinds)`.
///
/// # Errors
/// [`AccessError::TypeMismatch`] on an unknown kind keyword.
pub fn parse_schema(spec: &str) -> Result<(Vec<String>, Vec<AttrKind>), AccessError> {
    let mut names = Vec::new();
    let mut kinds = Vec::new();
    for part in spec.split(',') {
        let (name, kind) = part
            .split_once(':')
            .ok_or_else(|| AccessError::TypeMismatch {
                attribute: part.to_owned(),
                expected: "name:kind",
            })?;
        let kind = match kind.trim() {
            "int" => AttrKind::Int,
            "float" => AttrKind::Float,
            "text" => AttrKind::Text,
            _ => {
                return Err(AccessError::TypeMismatch {
                    attribute: name.trim().to_owned(),
                    expected: "one of int|float|text",
                })
            }
        };
        names.push(name.trim().to_owned());
        kinds.push(kind);
    }
    Ok((names, kinds))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
cuisine,distance,stars
thai,2.0,4
sushi,9.5,5
\"pizza, deep dish\",3.5,4
";

    #[test]
    fn split_record_handles_quotes() {
        assert_eq!(split_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(
            split_record("\"x, y\",z"),
            vec!["x, y".to_owned(), "z".to_owned()]
        );
        assert_eq!(split_record("\"he said \"\"hi\"\"\",2"), vec![
            "he said \"hi\"".to_owned(),
            "2".to_owned()
        ]);
        assert_eq!(split_record(""), vec![""]);
        assert_eq!(split_record("a,"), vec!["a", ""]);
    }

    #[test]
    fn loads_with_header() {
        let t = table_from_csv(
            CSV,
            &[AttrKind::Text, AttrKind::Float, AttrKind::Int],
            CsvOptions { has_header: true },
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(0, "cuisine"), Some(&AttrValue::text("thai")));
        assert_eq!(t.value(2, "cuisine"), Some(&AttrValue::text("pizza, deep dish")));
        assert_eq!(t.value(1, "stars"), Some(&AttrValue::Int(5)));
    }

    #[test]
    fn loads_without_header() {
        let t = table_from_csv(
            "1,2.5\n3,4.5\n",
            &[AttrKind::Int, AttrKind::Float],
            CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(1, "c0"), Some(&AttrValue::Int(3)));
    }

    #[test]
    fn type_errors_are_reported() {
        let e = table_from_csv(
            "a\nnot-a-number\n",
            &[AttrKind::Int],
            CsvOptions { has_header: true },
        )
        .unwrap_err();
        assert!(matches!(e, AccessError::TypeMismatch { .. }));
        let e = table_from_csv(
            "x,y\n1\n",
            &[AttrKind::Int, AttrKind::Int],
            CsvOptions { has_header: true },
        )
        .unwrap_err();
        assert!(matches!(e, AccessError::RowArityMismatch { got: 1, .. }));
        // NaN rejected.
        let e = table_from_csv("NaN\n", &[AttrKind::Float], CsvOptions::default()).unwrap_err();
        assert!(matches!(e, AccessError::TypeMismatch { .. }));
    }

    #[test]
    fn csv_write_read_round_trip() {
        let kinds = [AttrKind::Text, AttrKind::Float, AttrKind::Int];
        let t = table_from_csv(CSV, &kinds, CsvOptions { has_header: true }).unwrap();
        let text = table_to_csv(&t);
        let t2 = table_from_csv(&text, &kinds, CsvOptions { has_header: true }).unwrap();
        assert_eq!(t.len(), t2.len());
        for row in 0..t.len() {
            for (name, _) in t.schema().iter() {
                assert_eq!(t.value(row, name), t2.value(row, name), "{name} row {row}");
            }
        }
        // Quoted field survived.
        assert!(text.contains("\"pizza, deep dish\""));
    }

    #[test]
    fn schema_spec_parsing() {
        let (names, kinds) = parse_schema("price:int, distance:float,name:text").unwrap();
        assert_eq!(names, vec!["price", "distance", "name"]);
        assert_eq!(kinds, vec![AttrKind::Int, AttrKind::Float, AttrKind::Text]);
        assert!(parse_schema("oops").is_err());
        assert!(parse_schema("x:complex").is_err());
    }

    #[test]
    fn end_to_end_query_over_csv() {
        use crate::db::{Direction, OrderSpec};
        use crate::query::PreferenceQuery;
        let t = table_from_csv(
            CSV,
            &[AttrKind::Text, AttrKind::Float, AttrKind::Int],
            CsvOptions { has_header: true },
        )
        .unwrap();
        let q = PreferenceQuery::new(vec![
            OrderSpec::numeric("stars", Direction::Desc),
            OrderSpec::numeric("distance", Direction::Asc),
        ])
        .with_k(1);
        let r = q.run(&t).unwrap();
        assert_eq!(r.top.len(), 1);
    }
}
