//! The fielded-search substrate: an in-memory table whose few-valued
//! attributes induce partial rankings.
//!
//! This reproduces the paper's motivating scenario (Section 1): catalog
//! and parametric searches rank an underlying database by several
//! attributes; attributes with few distinct values (cuisine, number of
//! connections, star rating) — or numeric attributes the user coarsens
//! ("any distance up to ten miles is the same to me") — produce rankings
//! with many ties, i.e. bucket orders.

use crate::error::AccessError;
use bucketrank_core::BucketOrder;
use std::collections::HashMap;
use std::fmt;

/// The kind of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// 64-bit integer (e.g. star rating, number of connections).
    Int,
    /// Finite float (e.g. distance, price).
    Float,
    /// Categorical text (e.g. cuisine, airline).
    Text,
}

impl AttrKind {
    fn name(self) -> &'static str {
        match self {
            AttrKind::Int => "an integer attribute",
            AttrKind::Float => "a float attribute",
            AttrKind::Text => "a text attribute",
        }
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer value.
    Int(i64),
    /// Float value (must be finite to participate in rankings).
    Float(f64),
    /// Categorical text value.
    Text(String),
}

impl AttrValue {
    /// Convenience constructor for text values.
    pub fn text<S: Into<String>>(s: S) -> Self {
        AttrValue::Text(s.into())
    }

    fn kind(&self) -> AttrKind {
        match self {
            AttrValue::Int(_) => AttrKind::Int,
            AttrValue::Float(_) => AttrKind::Float,
            AttrValue::Text(_) => AttrKind::Text,
        }
    }
}

/// Sort direction for numeric order specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Smaller is better (price, distance, connections).
    #[default]
    Asc,
    /// Larger is better (star rating, resolution).
    Desc,
}

/// Optional coarsening of a numeric attribute before ranking — the
/// mechanism by which even fine-grained numeric attributes produce ties.
#[derive(Debug, Clone, PartialEq)]
pub enum Binning {
    /// Fixed-width bins starting at 0 (e.g. `Width(10.0)`: "any distance
    /// up to ten miles is the same").
    Width(f64),
    /// Explicit ascending bin upper bounds; values above the last bound
    /// form a final bin.
    Thresholds(Vec<f64>),
}

impl Binning {
    /// The bin index of a value (bins are ordered by the attribute's
    /// natural ascending order; [`Direction`] is applied afterwards).
    pub fn bin(&self, v: f64) -> i64 {
        match self {
            Binning::Width(w) => (v / w).floor() as i64,
            Binning::Thresholds(ts) => ts.partition_point(|&t| v > t) as i64,
        }
    }
}

/// How to turn one attribute into a partial ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// Attribute name.
    pub attribute: String,
    /// The ranking rule for the attribute's kind.
    pub rule: OrderRule,
}

/// The ranking rule of an [`OrderSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum OrderRule {
    /// Rank numerically (Int or Float), optionally binned.
    Numeric {
        /// Sort direction.
        direction: Direction,
        /// Optional coarsening.
        binning: Option<Binning>,
    },
    /// Rank a text attribute by an explicit preference list: listed
    /// categories in order, everything unlisted tied in a final bucket.
    TextPreference {
        /// Categories from most to least preferred.
        preferred: Vec<String>,
    },
}

impl OrderSpec {
    /// Numeric spec with the given direction and no binning.
    pub fn numeric<S: Into<String>>(attribute: S, direction: Direction) -> Self {
        OrderSpec {
            attribute: attribute.into(),
            rule: OrderRule::Numeric {
                direction,
                binning: None,
            },
        }
    }

    /// Adds binning to a numeric spec.
    ///
    /// # Errors
    /// [`AccessError::NonNumericBinning`] if the spec ranks by text
    /// preference — binning coarsens a numeric key and has no meaning
    /// for categorical preference lists.
    pub fn with_binning(mut self, b: Binning) -> Result<Self, AccessError> {
        match &mut self.rule {
            OrderRule::Numeric { binning, .. } => *binning = Some(b),
            OrderRule::TextPreference { .. } => {
                return Err(AccessError::NonNumericBinning {
                    attribute: self.attribute,
                })
            }
        }
        Ok(self)
    }

    /// Text-preference spec: `preferred` categories in order, everything
    /// else tied at the bottom.
    pub fn text_preference<S, I, T>(attribute: S, preferred: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        OrderSpec {
            attribute: attribute.into(),
            rule: OrderRule::TextPreference {
                preferred: preferred.into_iter().map(Into::into).collect(),
            },
        }
    }
}

/// A table schema: named, typed columns.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<(String, AttrKind)>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Column count.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index and kind of a named column.
    pub fn column(&self, name: &str) -> Option<(usize, AttrKind)> {
        self.index.get(name).map(|&i| (i, self.columns[i].1))
    }

    /// Iterates `(name, kind)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AttrKind)> {
        self.columns.iter().map(|(n, k)| (n.as_str(), *k))
    }
}

/// An in-memory table of records.
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<AttrValue>>,
}

impl Table {
    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at `(row, column name)`.
    pub fn value(&self, row: usize, attribute: &str) -> Option<&AttrValue> {
        let (col, _) = self.schema.column(attribute)?;
        self.rows.get(row).map(|r| &r[col])
    }

    /// A new table holding the given rows (in the given order) under the
    /// same schema. Used by filtered views.
    ///
    /// # Panics
    /// Panics if a row index is out of range.
    pub fn project_rows(&self, rows: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: rows.iter().map(|&r| self.rows[r].clone()).collect(),
        }
    }

    /// Builds the partial ranking induced by an [`OrderSpec`] — the
    /// "index scan" of the motivating scenario. Rows are the domain
    /// (element id = row id).
    ///
    /// # Errors
    /// [`AccessError::UnknownAttribute`] / [`AccessError::TypeMismatch`] /
    /// [`AccessError::NonFiniteValue`].
    pub fn ranking(&self, spec: &OrderSpec) -> Result<BucketOrder, AccessError> {
        let (col, kind) = self
            .schema
            .column(&spec.attribute)
            .ok_or_else(|| AccessError::UnknownAttribute {
                name: spec.attribute.clone(),
            })?;
        match &spec.rule {
            OrderRule::Numeric { direction, binning } => {
                let mut keys: Vec<i64> = Vec::with_capacity(self.rows.len());
                for row in &self.rows {
                    let key = match (&row[col], binning) {
                        (AttrValue::Int(v), None) => *v,
                        (AttrValue::Int(v), Some(b)) => b.bin(*v as f64),
                        (AttrValue::Float(v), Some(b)) => {
                            if !v.is_finite() {
                                return Err(AccessError::NonFiniteValue {
                                    attribute: spec.attribute.clone(),
                                });
                            }
                            b.bin(*v)
                        }
                        (AttrValue::Float(v), None) => {
                            if !v.is_finite() {
                                return Err(AccessError::NonFiniteValue {
                                    attribute: spec.attribute.clone(),
                                });
                            }
                            // Unbinned floats: rank by total order on bits
                            // of the finite float (sign-corrected).
                            sortable_bits(*v)
                        }
                        (AttrValue::Text(_), _) => {
                            return Err(AccessError::TypeMismatch {
                                attribute: spec.attribute.clone(),
                                expected: "a numeric attribute",
                            })
                        }
                    };
                    keys.push(key);
                }
                Ok(match direction {
                    Direction::Asc => BucketOrder::from_keys(&keys),
                    Direction::Desc => BucketOrder::from_keys_desc(&keys),
                })
            }
            OrderRule::TextPreference { preferred } => {
                if kind != AttrKind::Text {
                    return Err(AccessError::TypeMismatch {
                        attribute: spec.attribute.clone(),
                        expected: "a text attribute",
                    });
                }
                let rank_of: HashMap<&str, i64> = preferred
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), i as i64))
                    .collect();
                let bottom = preferred.len() as i64;
                let mut keys = Vec::with_capacity(self.rows.len());
                for row in &self.rows {
                    let AttrValue::Text(s) = &row[col] else {
                        return Err(AccessError::TypeMismatch {
                            attribute: spec.attribute.clone(),
                            expected: "a text attribute",
                        });
                    };
                    keys.push(*rank_of.get(s.as_str()).unwrap_or(&bottom));
                }
                Ok(BucketOrder::from_keys(&keys))
            }
        }
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("columns", &self.schema.arity())
            .field("rows", &self.rows.len())
            .finish()
    }
}

/// Maps a finite float to an `i64` whose order matches the float order
/// (the standard sign-flip trick: negatives have all bits inverted,
/// non-negatives have the sign bit set; the result is then shifted back
/// into signed range).
fn sortable_bits(v: f64) -> i64 {
    const TOP: u64 = 1 << 63;
    let v = if v == 0.0 { 0.0 } else { v }; // -0.0 ties with 0.0
    let u = v.to_bits();
    let key = if u & TOP != 0 { !u } else { u | TOP };
    (key ^ TOP) as i64
}

/// Incremental table builder.
#[derive(Debug, Default)]
pub struct TableBuilder {
    schema: Schema,
    rows: Vec<Vec<AttrValue>>,
    error: Option<AccessError>,
}

impl TableBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the next column.
    pub fn column<S: Into<String>>(&mut self, name: S, kind: AttrKind) -> &mut Self {
        let name = name.into();
        let idx = self.schema.columns.len();
        self.schema.index.insert(name.clone(), idx);
        self.schema.columns.push((name, kind));
        self
    }

    /// Appends a record. Errors are deferred to [`TableBuilder::finish`].
    pub fn row(&mut self, values: Vec<AttrValue>) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        if values.len() != self.schema.arity() {
            self.error = Some(AccessError::RowArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
            return self;
        }
        for (v, (name, kind)) in values.iter().zip(&self.schema.columns) {
            if v.kind() != *kind {
                self.error = Some(AccessError::TypeMismatch {
                    attribute: name.clone(),
                    expected: kind.name(),
                });
                return self;
            }
        }
        self.rows.push(values);
        self
    }

    /// Validates and produces the table.
    ///
    /// # Errors
    /// The first row/typing error encountered while building.
    pub fn finish(self) -> Result<Table, AccessError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Table {
            schema: self.schema,
            rows: self.rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restaurant_table() -> Table {
        let mut t = TableBuilder::new();
        t.column("cuisine", AttrKind::Text);
        t.column("distance", AttrKind::Float);
        t.column("stars", AttrKind::Int);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(2.0), AttrValue::Int(4)]);
        t.row(vec![AttrValue::text("sushi"), AttrValue::Float(9.0), AttrValue::Int(5)]);
        t.row(vec![AttrValue::text("thai"), AttrValue::Float(14.0), AttrValue::Int(3)]);
        t.row(vec![AttrValue::text("pizza"), AttrValue::Float(3.5), AttrValue::Int(4)]);
        t.finish().unwrap()
    }

    #[test]
    fn int_ranking_with_ties() {
        let t = restaurant_table();
        let r = t
            .ranking(&OrderSpec::numeric("stars", Direction::Desc))
            .unwrap();
        // 5 stars first, then the two 4-star places tied, then 3.
        assert_eq!(r.display(), "[1 | 0 3 | 2]");
    }

    #[test]
    fn binned_float_ranking() {
        let t = restaurant_table();
        let spec = OrderSpec::numeric("distance", Direction::Asc)
            .with_binning(Binning::Width(10.0))
            .unwrap();
        let r = t.ranking(&spec).unwrap();
        // Distances 2.0, 9.0, 3.5 share the 0–10 bucket; 14.0 trails.
        assert_eq!(r.display(), "[0 1 3 | 2]");
    }

    #[test]
    fn unbinned_float_ranking_is_fine_grained() {
        let t = restaurant_table();
        let r = t
            .ranking(&OrderSpec::numeric("distance", Direction::Asc))
            .unwrap();
        assert!(r.is_full());
        assert_eq!(r.as_permutation(), Some(vec![0, 3, 1, 2]));
    }

    #[test]
    fn text_preference_ranking() {
        let t = restaurant_table();
        let r = t
            .ranking(&OrderSpec::text_preference("cuisine", ["thai", "sushi"]))
            .unwrap();
        // thai {0, 2} then sushi {1}, pizza unlisted at the bottom.
        assert_eq!(r.display(), "[0 2 | 1 | 3]");
    }

    #[test]
    fn thresholds_binning() {
        let b = Binning::Thresholds(vec![1.0, 5.0]);
        assert_eq!(b.bin(0.5), 0);
        assert_eq!(b.bin(1.0), 0);
        assert_eq!(b.bin(3.0), 1);
        assert_eq!(b.bin(99.0), 2);
        let w = Binning::Width(10.0);
        assert_eq!(w.bin(0.0), 0);
        assert_eq!(w.bin(9.99), 0);
        assert_eq!(w.bin(10.0), 1);
    }

    #[test]
    fn sortable_bits_orders_floats() {
        let vals = [-5.5, -0.0, 0.0, 0.25, 3.0, 1e9];
        for w in vals.windows(2) {
            assert!(
                sortable_bits(w[0]) <= sortable_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        assert!(sortable_bits(-1.0) < sortable_bits(1.0));
    }

    #[test]
    fn schema_lookup_and_values() {
        let t = restaurant_table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.schema().arity(), 3);
        assert_eq!(t.schema().column("stars").unwrap().1, AttrKind::Int);
        assert_eq!(t.value(1, "cuisine"), Some(&AttrValue::text("sushi")));
        assert_eq!(t.value(9, "cuisine"), None);
        assert_eq!(t.value(0, "zip"), None);
        let names: Vec<&str> = t.schema().iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["cuisine", "distance", "stars"]);
    }

    #[test]
    fn builder_errors() {
        let mut t = TableBuilder::new();
        t.column("a", AttrKind::Int);
        t.row(vec![AttrValue::Int(1), AttrValue::Int(2)]);
        assert!(matches!(
            t.finish(),
            Err(AccessError::RowArityMismatch { got: 2, expected: 1 })
        ));

        let mut t = TableBuilder::new();
        t.column("a", AttrKind::Int);
        t.row(vec![AttrValue::text("oops")]);
        t.row(vec![AttrValue::Int(1)]); // after an error, rows are ignored
        assert!(matches!(t.finish(), Err(AccessError::TypeMismatch { .. })));
    }

    #[test]
    fn ranking_errors() {
        let t = restaurant_table();
        assert!(matches!(
            t.ranking(&OrderSpec::numeric("zip", Direction::Asc)),
            Err(AccessError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            t.ranking(&OrderSpec::numeric("cuisine", Direction::Asc)),
            Err(AccessError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.ranking(&OrderSpec::text_preference("stars", ["4"])),
            Err(AccessError::TypeMismatch { .. })
        ));

        let mut bad = TableBuilder::new();
        bad.column("x", AttrKind::Float);
        bad.row(vec![AttrValue::Float(f64::NAN)]);
        let bad = bad.finish().unwrap(); // NaN caught at ranking time
        assert!(matches!(
            bad.ranking(&OrderSpec::numeric("x", Direction::Asc)),
            Err(AccessError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn int_binning() {
        let mut t = TableBuilder::new();
        t.column("connections", AttrKind::Int);
        for c in [0i64, 1, 1, 2, 3] {
            t.row(vec![AttrValue::Int(c)]);
        }
        let t = t.finish().unwrap();
        let spec = OrderSpec::numeric("connections", Direction::Asc)
            .with_binning(Binning::Thresholds(vec![0.0, 1.0]))
            .unwrap();
        let r = t.ranking(&spec).unwrap();
        // Nonstop | one stop | more.
        assert_eq!(r.display(), "[0 | 1 2 | 3 4]");
    }

    #[test]
    fn binning_on_text_is_a_typed_error() {
        let err = OrderSpec::text_preference("cuisine", ["thai"])
            .with_binning(Binning::Width(1.0))
            .unwrap_err();
        assert_eq!(
            err,
            AccessError::NonNumericBinning {
                attribute: "cuisine".into()
            }
        );
        assert!(err.to_string().contains("numeric specs only"), "{err}");
    }
}
