//! Error type for the access layer.

use std::fmt;

/// Errors produced by the access model and the fielded-search substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccessError {
    /// No ranking sources were supplied.
    NoSources,
    /// Sources disagree on the domain size.
    DomainMismatch {
        /// Domain size of the first source.
        expected: usize,
        /// Differing domain size encountered.
        found: usize,
    },
    /// `k` exceeds the domain size.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// The domain size.
        domain_size: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The attribute that was requested.
        name: String,
    },
    /// A row value does not match the declared attribute kind, or an
    /// order spec does not apply to the attribute's kind.
    TypeMismatch {
        /// The attribute involved.
        attribute: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A row has the wrong number of values.
    RowArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of columns in the schema.
        expected: usize,
    },
    /// A float value was not finite (NaN/inf cannot be ranked).
    NonFiniteValue {
        /// The attribute involved.
        attribute: String,
    },
    /// Binning was requested on a spec that does not rank numerically.
    NonNumericBinning {
        /// The attribute involved.
        attribute: String,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NoSources => write!(f, "at least one ranking source is required"),
            AccessError::DomainMismatch { expected, found } => write!(
                f,
                "sources must share a domain (expected size {expected}, found {found})"
            ),
            AccessError::InvalidK { k, domain_size } => {
                write!(f, "k = {k} exceeds the domain size {domain_size}")
            }
            AccessError::UnknownAttribute { name } => {
                write!(f, "unknown attribute {name:?}")
            }
            AccessError::TypeMismatch {
                attribute,
                expected,
            } => write!(f, "attribute {attribute:?} is not {expected}"),
            AccessError::RowArityMismatch { got, expected } => {
                write!(f, "row has {got} values but the schema has {expected} columns")
            }
            AccessError::NonFiniteValue { attribute } => {
                write!(f, "attribute {attribute:?} contains a non-finite float")
            }
            AccessError::NonNumericBinning { attribute } => {
                write!(
                    f,
                    "binning applies to numeric specs only, but {attribute:?} ranks by text preference"
                )
            }
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AccessError::UnknownAttribute {
            name: "zip".into()
        }
        .to_string()
        .contains("zip"));
        assert!(AccessError::RowArityMismatch {
            got: 2,
            expected: 3
        }
        .to_string()
        .contains("2 values"));
    }
}
