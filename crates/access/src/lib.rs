//! The database-friendly access model of Section 6: sorted-access cursors
//! over partial rankings, the instance-optimal MEDRANK algorithm, a
//! Threshold Algorithm baseline, and an in-memory fielded-search substrate
//! that reproduces the paper's motivating scenario (sorting a catalog by
//! few-valued attributes yields partial rankings; aggregation must read as
//! little of each as possible).
//!
//! # Example
//!
//! ```
//! use bucketrank_access::db::{AttrKind, AttrValue, Binning, Direction, OrderSpec, TableBuilder};
//! use bucketrank_access::query::PreferenceQuery;
//!
//! let mut t = TableBuilder::new();
//! t.column("cuisine", AttrKind::Text);
//! t.column("distance", AttrKind::Float);
//! t.column("stars", AttrKind::Int);
//! t.row(vec![AttrValue::text("thai"), AttrValue::Float(2.0), AttrValue::Int(4)]);
//! t.row(vec![AttrValue::text("sushi"), AttrValue::Float(9.0), AttrValue::Int(5)]);
//! t.row(vec![AttrValue::text("thai"), AttrValue::Float(14.0), AttrValue::Int(3)]);
//! let table = t.finish().unwrap();
//!
//! let query = PreferenceQuery::new(vec![
//!     OrderSpec::text_preference("cuisine", ["thai", "sushi"]),
//!     OrderSpec::numeric("distance", Direction::Asc).with_binning(Binning::Width(10.0)).unwrap(),
//!     OrderSpec::numeric("stars", Direction::Desc),
//! ])
//! .with_k(1);
//!
//! let result = query.run(&table).unwrap();
//! assert_eq!(result.top, vec![0]); // the close thai place with 4 stars
//! assert!(result.stats.total_accesses() <= 9); // never worse than a full scan
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod db;
mod error;
pub mod filter;
pub mod index;
pub mod medrank;
pub mod model;
pub mod nra;
pub mod query;
pub mod similarity;
pub mod ta;

pub use error::AccessError;
pub use model::{AccessStats, RankingCursor};
