//! MEDRANK: instance-optimal median-rank aggregation under sorted access
//! (Section 6, after Fagin–Kumar–Sivakumar SIGMOD 2003).
//!
//! The paper's instantiation for the top element: *"access each of the
//! partial rankings, one element at a time, until some database object is
//! seen in more than m/2 of the inputs; output this object as the top
//! result."* The generalized top-k version keeps reading round-robin and
//! emits objects in the order they achieve a majority. Among algorithms
//! restricted to sequential (sorted) access, this is instance-optimal: it
//! stops as soon as *any* correct algorithm could.
//!
//! Theorem 9 supplies the quality guarantee: the emitted top-k list — an
//! ordering consistent with the median ranks — is within a factor 3 of
//! the best possible top-k list under the `Fprof` objective (and, via
//! Theorem 7, within a constant factor under all four metrics).

use crate::error::AccessError;
use crate::model::{AccessStats, RankingCursor};
use bucketrank_core::{BucketOrder, ElementId};

/// Result of a MEDRANK run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MedrankResult {
    /// The `k` winners, in the order they achieved a majority
    /// (ties within a round broken by ascending element id).
    pub top: Vec<ElementId>,
    /// Access accounting: how deep each input was read.
    pub stats: AccessStats,
}

impl MedrankResult {
    /// The winners as a top-k [`BucketOrder`] over the full domain.
    pub fn as_top_k(&self, n: usize) -> BucketOrder {
        BucketOrder::top_k(n, &self.top).expect("winners are distinct domain elements")
    }
}

/// Runs generalized MEDRANK for the top `k` elements over the given
/// partial rankings, reading each input through a sorted-access cursor,
/// one element per input per round, until `k` elements have been seen in
/// more than half of the inputs.
///
/// # Errors
/// [`AccessError::NoSources`], [`AccessError::DomainMismatch`], or
/// [`AccessError::InvalidK`].
pub fn medrank_top_k(inputs: &[BucketOrder], k: usize) -> Result<MedrankResult, AccessError> {
    let first = inputs.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for s in inputs {
        if s.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: s.len(),
            });
        }
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }

    let m = inputs.len();
    let majority = (m / 2) as u32; // winner when count > m/2 ⟺ count ≥ majority + 1
    let mut cursors: Vec<RankingCursor<'_>> = inputs.iter().map(RankingCursor::new).collect();
    let mut counts = vec![0u32; n];
    let mut emitted = vec![false; n];
    let mut top = Vec::with_capacity(k);

    'rounds: while top.len() < k {
        let mut any_progress = false;
        // One access per source per round; winners are collected per
        // round and emitted in ascending id for determinism.
        let mut round_winners: Vec<ElementId> = Vec::new();
        for c in &mut cursors {
            let Some(e) = c.next() else { continue };
            any_progress = true;
            counts[e as usize] += 1;
            if counts[e as usize] == majority + 1 && !emitted[e as usize] {
                round_winners.push(e);
            }
        }
        round_winners.sort_unstable();
        for e in round_winners {
            if top.len() < k && !emitted[e as usize] {
                emitted[e as usize] = true;
                top.push(e);
            }
        }
        if !any_progress {
            break 'rounds; // all cursors exhausted (cannot happen for k ≤ n)
        }
    }

    let mut stats = AccessStats::new(m);
    for (i, c) in cursors.iter().enumerate() {
        stats.sorted_depth[i] = c.depth();
    }
    Ok(MedrankResult { top, stats })
}

/// Convenience wrapper for the paper's top-1 instantiation.
///
/// # Errors
/// As [`medrank_top_k`].
pub fn medrank_winner(inputs: &[BucketOrder]) -> Result<(ElementId, AccessStats), AccessError> {
    let r = medrank_top_k(inputs, 1)?;
    let w = *r.top.first().expect("k = 1 always yields a winner");
    Ok((w, r.stats))
}

/// Bucket-atomic MEDRANK: each round advances every cursor by one whole
/// **bucket** (paying one access per element inside), so tied elements
/// become visible together — the semantically faithful delivery mode for
/// partial rankings, where a tie has no internal order to reveal.
///
/// Element-at-a-time MEDRANK ([`medrank_top_k`]) can split a tie across
/// rounds and let the within-bucket delivery order influence who reaches
/// a majority first; this variant cannot. The price is coarser access
/// granularity: a huge bucket is paid for in full the moment the cursor
/// enters it. Winners within a round are emitted by ascending element id.
///
/// # Errors
/// As [`medrank_top_k`].
pub fn medrank_top_k_buckets(
    inputs: &[BucketOrder],
    k: usize,
) -> Result<MedrankResult, AccessError> {
    let first = inputs.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for s in inputs {
        if s.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: s.len(),
            });
        }
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }
    let m = inputs.len();
    let majority = (m / 2) as u32;
    let mut next_bucket = vec![0usize; m];
    let mut stats = AccessStats::new(m);
    let mut counts = vec![0u32; n];
    let mut emitted = vec![false; n];
    let mut top = Vec::with_capacity(k);

    while top.len() < k {
        let mut any_progress = false;
        let mut round_winners: Vec<ElementId> = Vec::new();
        for (i, s) in inputs.iter().enumerate() {
            let Some(bucket) = s.buckets().get(next_bucket[i]) else {
                continue;
            };
            next_bucket[i] += 1;
            any_progress = true;
            stats.sorted_depth[i] += bucket.len() as u64;
            for &e in bucket {
                counts[e as usize] += 1;
                if counts[e as usize] == majority + 1 && !emitted[e as usize] {
                    round_winners.push(e);
                }
            }
        }
        round_winners.sort_unstable();
        for e in round_winners {
            if top.len() < k && !emitted[e as usize] {
                emitted[e as usize] = true;
                top.push(e);
            }
        }
        if !any_progress {
            break;
        }
    }
    Ok(MedrankResult { top, stats })
}

/// Weighted MEDRANK: source `i` counts with weight `weights[i]`; an
/// element wins once the summed weight of sources that have shown it
/// strictly exceeds half the total weight. With equal weights this is
/// exactly [`medrank_top_k`]. The weighted-median connection mirrors
/// `aggregate::median::weighted_median_positions`.
///
/// # Errors
/// As [`medrank_top_k`]; weight/source count mismatches or non-positive
/// total weight are reported as [`AccessError::DomainMismatch`].
pub fn medrank_top_k_weighted(
    inputs: &[BucketOrder],
    weights: &[f64],
    k: usize,
) -> Result<MedrankResult, AccessError> {
    let first = inputs.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for s in inputs {
        if s.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: s.len(),
            });
        }
    }
    if weights.len() != inputs.len()
        || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
        || weights.iter().sum::<f64>() <= 0.0
    {
        return Err(AccessError::DomainMismatch {
            expected: inputs.len(),
            found: weights.len(),
        });
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }
    let half = weights.iter().sum::<f64>() / 2.0;
    let mut cursors: Vec<RankingCursor<'_>> = inputs.iter().map(RankingCursor::new).collect();
    let mut mass = vec![0.0f64; n];
    let mut emitted = vec![false; n];
    let mut top = Vec::with_capacity(k);

    while top.len() < k {
        let mut any = false;
        let mut round_winners: Vec<ElementId> = Vec::new();
        for (c, &w) in cursors.iter_mut().zip(weights) {
            let Some(e) = c.next() else { continue };
            any = true;
            let before = mass[e as usize];
            mass[e as usize] += w;
            if before <= half && mass[e as usize] > half && !emitted[e as usize] {
                round_winners.push(e);
            }
        }
        round_winners.sort_unstable();
        for e in round_winners {
            if top.len() < k && !emitted[e as usize] {
                emitted[e as usize] = true;
                top.push(e);
            }
        }
        if !any {
            break;
        }
    }
    let mut stats = AccessStats::new(inputs.len());
    for (i, c) in cursors.iter().enumerate() {
        stats.sorted_depth[i] = c.depth();
    }
    Ok(MedrankResult { top, stats })
}

/// The instance-optimality certificate: the smallest round-robin depth at
/// which **any** sequential-access algorithm could certify `k` majority
/// winners on this instance — i.e. the first depth `d` such that at least
/// `k` elements appear within the top `d` deliveries of more than half
/// the cursors. MEDRANK's [`AccessStats::max_depth`] equals exactly this
/// (asserted in the tests), which is the paper's instance-optimality
/// claim in executable form.
///
/// # Errors
/// As [`medrank_top_k`].
pub fn certificate_depth(inputs: &[BucketOrder], k: usize) -> Result<u64, AccessError> {
    let first = inputs.first().ok_or(AccessError::NoSources)?;
    let n = first.len();
    for s in inputs {
        if s.len() != n {
            return Err(AccessError::DomainMismatch {
                expected: n,
                found: s.len(),
            });
        }
    }
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }
    let m = inputs.len();
    let majority = (m / 2) as u32;
    let mut cursors: Vec<RankingCursor<'_>> = inputs.iter().map(RankingCursor::new).collect();
    let mut counts = vec![0u32; n];
    let mut winners = 0usize;
    let mut depth = 0u64;
    while winners < k {
        depth += 1;
        let mut progressed = false;
        for c in &mut cursors {
            if let Some(e) = c.next() {
                progressed = true;
                counts[e as usize] += 1;
                if counts[e as usize] == majority + 1 {
                    winners += 1;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    Ok(depth)
}

/// Serves a top-`k` list directly from a maintained median-rank vector
/// — the streaming counterpart of [`medrank_top_k`]. Where MEDRANK pays
/// sorted accesses per query to *discover* majority elements, an engine
/// that already maintains every element's median under voter churn
/// (`aggregate::dynamic::DynamicProfile`) answers here with a sort of
/// `n` ids and **zero** accesses: the `k` elements with the smallest
/// medians, ties broken by ascending element id — the same selection
/// the batch `aggregate::median::aggregate_top_k` makes, so Theorem 9's
/// factor-3 guarantee carries over unchanged.
///
/// # Errors
/// [`AccessError::InvalidK`] if `k` exceeds the vector's length.
pub fn top_k_from_medians(
    medians: &[bucketrank_core::Pos],
    k: usize,
) -> Result<Vec<ElementId>, AccessError> {
    let n = medians.len();
    if k > n {
        return Err(AccessError::InvalidK { k, domain_size: n });
    }
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.sort_unstable_by_key(|&e| (medians[e as usize], e));
    ids.truncate(k);
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn top_k_from_medians_selects_smallest_with_id_tiebreak() {
        use bucketrank_core::Pos;
        let medians = vec![
            Pos::from_rank(3),
            Pos::from_rank(1),
            Pos::from_half_units(3), // 1.5, between ranks 1 and 2
            Pos::from_rank(1),
        ];
        assert_eq!(top_k_from_medians(&medians, 0).unwrap(), vec![]);
        assert_eq!(top_k_from_medians(&medians, 3).unwrap(), vec![1, 3, 2]);
        assert_eq!(top_k_from_medians(&medians, 4).unwrap(), vec![1, 3, 2, 0]);
        assert!(matches!(
            top_k_from_medians(&medians, 5),
            Err(AccessError::InvalidK { k: 5, domain_size: 4 })
        ));
    }

    #[test]
    fn unanimous_winner_found_at_depth_one() {
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[1, 3, 2, 4]),
            keys(&[1, 4, 3, 2]),
        ];
        let (w, stats) = medrank_winner(&inputs).unwrap();
        assert_eq!(w, 0);
        assert_eq!(stats.max_depth(), 1, "winner on every top must stop at depth 1");
        assert_eq!(stats.total_accesses(), 3);
    }

    #[test]
    fn majority_winner() {
        // Element 1 is top for 2 of 3 inputs: seen twice after round 1.
        let inputs = vec![
            keys(&[2, 1, 3]),
            keys(&[2, 1, 3]),
            keys(&[1, 3, 2]),
        ];
        let (w, stats) = medrank_winner(&inputs).unwrap();
        assert_eq!(w, 1);
        assert_eq!(stats.max_depth(), 1);
    }

    #[test]
    fn deep_winner_costs_more() {
        // No element reaches a majority until depth 2.
        let inputs = vec![
            keys(&[1, 2, 3, 4]),
            keys(&[4, 1, 2, 3]),
            keys(&[3, 4, 1, 2]),
        ];
        let (w, stats) = medrank_winner(&inputs).unwrap();
        // Round 1 delivers {0, 1, 2}, no majority. Round 2 delivers
        // {1, 2, 3}: element 1 is now seen twice (> 3/2) and wins.
        assert_eq!(w, 1);
        assert_eq!(stats.max_depth(), 2);
    }

    #[test]
    fn top_k_emits_in_majority_order() {
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5]),
            keys(&[1, 2, 4, 3, 5]),
            keys(&[2, 1, 3, 5, 4]),
        ];
        let r = medrank_top_k(&inputs, 3).unwrap();
        assert_eq!(r.top.len(), 3);
        assert_eq!(r.top[0], 0);
        assert_eq!(r.top[1], 1);
        assert_eq!(r.top[2], 2);
        let order = r.as_top_k(5);
        assert_eq!(order.top_k_len(), Some(3));
    }

    #[test]
    fn handles_ties_in_inputs() {
        // All inputs tie everything: delivery is id order; element 0 wins.
        let inputs = vec![BucketOrder::trivial(4); 3];
        let (w, _) = medrank_winner(&inputs).unwrap();
        assert_eq!(w, 0);
        // Top-4 drains the whole domain.
        let r = medrank_top_k(&inputs, 4).unwrap();
        assert_eq!(r.top, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_input_majority_is_one() {
        // m = 1: majority is count > 1/2, i.e. first sight wins.
        let s = keys(&[3, 1, 2]);
        let r = medrank_top_k(std::slice::from_ref(&s), 2).unwrap();
        assert_eq!(r.top, vec![1, 2]);
        assert_eq!(r.stats.sorted_depth[0], 2);
    }

    #[test]
    fn top_n_returns_whole_domain() {
        let inputs = vec![keys(&[1, 2, 3]), keys(&[3, 2, 1])];
        let r = medrank_top_k(&inputs, 3).unwrap();
        assert_eq!(r.top.len(), 3);
    }

    #[test]
    fn never_reads_past_domain() {
        let inputs = vec![keys(&[1, 2]), keys(&[2, 1]), keys(&[1, 1])];
        let r = medrank_top_k(&inputs, 2).unwrap();
        for &d in &r.stats.sorted_depth {
            assert!(d <= 2);
        }
        assert_eq!(r.top.len(), 2);
    }

    #[test]
    fn errors() {
        assert_eq!(medrank_top_k(&[], 1), Err(AccessError::NoSources));
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(matches!(
            medrank_top_k(&[a.clone(), b], 1),
            Err(AccessError::DomainMismatch { .. })
        ));
        assert!(matches!(
            medrank_top_k(std::slice::from_ref(&a), 5),
            Err(AccessError::InvalidK { .. })
        ));
    }

    #[test]
    fn weighted_medrank_reduces_to_unweighted() {
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5]),
            keys(&[5, 4, 3, 2, 1]),
            keys(&[2, 3, 1, 5, 4]),
        ];
        for k in 1..=5 {
            let a = medrank_top_k(&inputs, k).unwrap();
            let b = medrank_top_k_weighted(&inputs, &[1.0, 1.0, 1.0], k).unwrap();
            assert_eq!(a.top, b.top, "k = {k}");
            assert_eq!(a.stats, b.stats, "k = {k}");
        }
    }

    #[test]
    fn heavy_source_dominates() {
        // Source 0 outweighs the other two combined: its top element wins
        // at depth 1 regardless of the others.
        let inputs = vec![
            keys(&[3, 1, 2]), // prefers element 1
            keys(&[1, 2, 3]),
            keys(&[1, 3, 2]),
        ];
        let r = medrank_top_k_weighted(&inputs, &[5.0, 1.0, 1.0], 1).unwrap();
        assert_eq!(r.top, vec![1]);
        assert_eq!(r.stats.max_depth(), 1);
    }

    #[test]
    fn weighted_medrank_rejects_bad_weights() {
        let inputs = vec![keys(&[1, 2]), keys(&[2, 1])];
        assert!(medrank_top_k_weighted(&inputs, &[1.0], 1).is_err());
        assert!(medrank_top_k_weighted(&inputs, &[1.0, -2.0], 1).is_err());
        assert!(medrank_top_k_weighted(&inputs, &[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn medrank_depth_equals_certificate() {
        // Instance optimality in executable form: MEDRANK's depth equals
        // the minimal depth at which any sequential algorithm could
        // certify k majority winners.
        let profiles = [
            vec![keys(&[1, 2, 3, 4]), keys(&[4, 1, 2, 3]), keys(&[3, 4, 1, 2])],
            vec![keys(&[1, 1, 2]), keys(&[2, 1, 1]), keys(&[1, 2, 1])],
            vec![keys(&[1, 2, 3, 4, 5]); 5],
            vec![BucketOrder::trivial(4); 3],
        ];
        for inputs in &profiles {
            let n = inputs[0].len();
            for k in 1..=n {
                let r = medrank_top_k(inputs, k).unwrap();
                let cert = certificate_depth(inputs, k).unwrap();
                assert_eq!(r.stats.max_depth(), cert, "k = {k}, inputs {inputs:?}");
            }
        }
        assert!(certificate_depth(&[], 1).is_err());
    }

    #[test]
    fn bucket_mode_matches_element_mode_on_full_rankings() {
        // With singleton buckets the two delivery modes are identical.
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5]),
            keys(&[5, 4, 3, 2, 1]),
            keys(&[2, 3, 1, 5, 4]),
        ];
        for k in 1..=5 {
            let a = medrank_top_k(&inputs, k).unwrap();
            let b = medrank_top_k_buckets(&inputs, k).unwrap();
            assert_eq!(a.top, b.top, "k = {k}");
            assert_eq!(a.stats, b.stats, "k = {k}");
        }
    }

    #[test]
    fn bucket_mode_sees_whole_ties_at_once() {
        // One input with a big top bucket: every member is counted in
        // round 1, so the winner is decided by the OTHER inputs' order —
        // element-mode would instead drip the bucket out by id.
        let tied = BucketOrder::from_buckets(4, vec![vec![0, 1, 2, 3]]).unwrap();
        let pref = keys(&[4, 1, 2, 3]); // prefers element 1
        let inputs = vec![tied.clone(), tied, pref];
        let r = medrank_top_k_buckets(&inputs, 1).unwrap();
        // After round 1: counts = {0:2, 1:3, 2:2, 3:2}; element 1 has a
        // majority (3 > 1.5) and so do 0, 2, 3 (2 > 1.5) — id order would
        // pick 0; but all are winners in the same round, so the smallest
        // id among round winners is emitted first.
        assert_eq!(r.top, vec![0]);
        // Access cost reflects whole-bucket reads.
        assert_eq!(r.stats.sorted_depth[0], 4);
        assert_eq!(r.stats.sorted_depth[2], 1);
    }

    #[test]
    fn bucket_mode_winner_has_majority() {
        // Property: the reported winner really is seen in > m/2 inputs
        // within the rounds executed.
        let inputs = vec![
            BucketOrder::from_buckets(5, vec![vec![0, 1], vec![2, 3, 4]]).unwrap(),
            BucketOrder::from_buckets(5, vec![vec![4], vec![0, 2], vec![1, 3]]).unwrap(),
            keys(&[2, 1, 3, 4, 5]),
        ];
        let r = medrank_top_k_buckets(&inputs, 2).unwrap();
        assert_eq!(r.top.len(), 2);
        for &w in &r.top {
            let seen = inputs
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    // Bucket index of w must lie within the rounds read.
                    let rounds = {
                        // Recover rounds from depth: count buckets read.
                        let mut total = 0u64;
                        let mut buckets_read = 0usize;
                        for b in s.buckets() {
                            if total >= r.stats.sorted_depth[*i] {
                                break;
                            }
                            total += b.len() as u64;
                            buckets_read += 1;
                        }
                        buckets_read
                    };
                    s.bucket_index(w) < rounds
                })
                .count();
            assert!(seen * 2 > inputs.len(), "winner {w} lacks a majority");
        }
    }

    #[test]
    fn bucket_mode_errors() {
        assert_eq!(medrank_top_k_buckets(&[], 1), Err(AccessError::NoSources));
        let a = BucketOrder::trivial(2);
        assert!(matches!(
            medrank_top_k_buckets(std::slice::from_ref(&a), 5),
            Err(AccessError::InvalidK { .. })
        ));
    }

    #[test]
    fn instance_optimality_depth_bound() {
        // The depth MEDRANK reaches for the winner is exactly the first
        // round at which any majority exists — no sequential-access
        // algorithm can certify a median winner earlier.
        let inputs = vec![
            keys(&[1, 2, 3, 4, 5]),
            keys(&[5, 4, 3, 2, 1]),
            keys(&[2, 3, 1, 5, 4]),
        ];
        let (_, stats) = medrank_winner(&inputs).unwrap();
        let d = stats.max_depth() as usize;
        // Replay: verify no element had a majority at any depth < d.
        for depth in 1..d {
            let mut counts = [0u32; 5];
            for s in &inputs {
                let mut c = RankingCursor::new(s);
                for _ in 0..depth {
                    if let Some(e) = c.next() {
                        counts[e as usize] += 1;
                    }
                }
            }
            assert!(
                counts.iter().all(|&c| c <= 1),
                "majority existed before MEDRANK stopped"
            );
        }
    }
}
