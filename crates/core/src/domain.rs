//! Named domains: interning external labels to dense element ids.

use std::collections::HashMap;
use std::fmt;

/// A dense element identifier, valid within one [`Domain`] (or, for the
/// label-free APIs, simply an index into `0..n`).
pub type ElementId = u32;

/// A fixed domain `D` of named elements.
///
/// All rankings in the paper share one fixed domain. Hot paths work on dense
/// `ElementId`s (`0..n`); `Domain` is the boundary object that interns
/// human-readable labels (restaurant names, URLs, …) to ids and back.
///
/// # Example
///
/// ```
/// use bucketrank_core::Domain;
///
/// let mut d = Domain::new();
/// let thai = d.intern("Thai Palace");
/// let sushi = d.intern("Sushi Go");
/// assert_eq!(d.intern("Thai Palace"), thai); // idempotent
/// assert_eq!(d.label(sushi), Some("Sushi Go"));
/// assert_eq!(d.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct Domain {
    labels: Vec<String>,
    index: HashMap<String, ElementId>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a domain from an iterator of labels. Duplicate labels map to
    /// the same id.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut d = Domain::new();
        for l in labels {
            d.intern(l);
        }
        d
    }

    /// Interns a label, returning its element id (allocating a new id for a
    /// previously unseen label).
    pub fn intern<S: Into<String>>(&mut self, label: S) -> ElementId {
        let label = label.into();
        if let Some(&id) = self.index.get(&label) {
            return id;
        }
        let id = self.labels.len() as ElementId;
        self.index.insert(label.clone(), id);
        self.labels.push(label);
        id
    }

    /// Looks up an existing label without interning.
    pub fn id(&self, label: &str) -> Option<ElementId> {
        self.index.get(label).copied()
    }

    /// The label of an element id, if in range.
    pub fn label(&self, id: ElementId) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// Number of elements in the domain.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (i as ElementId, l.as_str()))
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Domain")
            .field("len", &self.labels.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut d = Domain::new();
        let a = d.intern("a");
        let b = d.intern("b");
        assert_ne!(a, b);
        assert_eq!(d.id("a"), Some(a));
        assert_eq!(d.id("missing"), None);
        assert_eq!(d.label(b), Some("b"));
        assert_eq!(d.label(99), None);
    }

    #[test]
    fn from_labels_dedupes() {
        let d = Domain::from_labels(["x", "y", "x"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn iter_in_id_order() {
        let d = Domain::from_labels(["p", "q", "r"]);
        let got: Vec<_> = d.iter().collect();
        assert_eq!(got, vec![(0, "p"), (1, "q"), (2, "r")]);
    }

    #[test]
    fn empty() {
        let d = Domain::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
