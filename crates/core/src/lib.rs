//! Core data model for *rankings with ties* (bucket orders / partial rankings).
//!
//! This crate implements the objects of Fagin, Kumar, Mahdian, Sivakumar and
//! Vee, *"Comparing and Aggregating Rankings with Ties"* (PODS 2004):
//!
//! * [`BucketOrder`] — a transitive binary relation whose domain is
//!   partitioned into ordered *buckets*; elements in the same bucket are
//!   tied. A *full ranking* (permutation) is the special case where every
//!   bucket is a singleton, and a *top-k list* is `k` singleton buckets
//!   followed by one bottom bucket.
//! * [`Pos`] — exact bucket positions. The paper's
//!   `pos(B_i) = Σ_{j<i}|B_j| + (|B_i|+1)/2` is always a multiple of `1/2`,
//!   so positions are stored in integer *half-units* (`2×` the paper's
//!   value) and all downstream metrics are exact integer arithmetic.
//! * [`refine`] — the refinement relation `σ ⪯ τ` and the tie-breaking
//!   operator `τ∗σ` ("refine σ, breaking ties by τ") of Section 2, plus an
//!   iterator over all full refinements used for brute-force verification.
//! * [`TypeSeq`] — the *type* of a partial ranking (the sequence of bucket
//!   sizes, Appendix A.1).
//! * [`consistent`] — consistency between score functions and partial
//!   rankings, the induced ranking `f̄`, and the projection `⟨f⟩_α` of a
//!   score function onto a type (Lemma 27 / Lemma 34).
//! * [`alg`] — small shared algorithmic substrate (Fenwick tree, inversion
//!   counting) used by the metric implementations.
//!
//! # Example
//!
//! ```
//! use bucketrank_core::{BucketOrder, Pos};
//!
//! // Restaurants ranked by star rating: {0, 2} share 3 stars, {1} has 2.
//! let sigma = BucketOrder::from_buckets(3, vec![vec![0, 2], vec![1]]).unwrap();
//! assert_eq!(sigma.position(0), Pos::from_half_units(3)); // pos = 1.5
//! assert_eq!(sigma.position(1), Pos::from_half_units(6)); // pos = 3
//! assert!(!sigma.is_full());
//! assert!(sigma.is_tied(0, 2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod alg;
mod bucket_order;
pub mod consistent;
mod domain;
mod error;
pub mod ops;
pub mod parse;
mod pos;
pub mod profile;
pub mod refine;
mod typeseq;

pub use bucket_order::{BucketOrder, BucketOrderBuilder};
pub use domain::{Domain, ElementId};
pub use error::CoreError;
pub use pos::Pos;
pub use typeseq::{fubini, TypeSeq};
