//! Score functions vs partial rankings: consistency, the induced ranking
//! `f̄`, and the projection `⟨f⟩_α` onto a type (Appendix A.6.1).
//!
//! A function `f : D → ℝ` and a partial ranking `σ` are *consistent* when
//! no pair has `f(i) < f(j)` but `σ(i) > σ(j)`. `⟨f⟩` is the set of partial
//! rankings consistent with `f`, and `⟨f⟩_α` its subset with type `α`.
//! Lemma 27 shows any member of `⟨f⟩_α` minimizes `L1(·, f)` among partial
//! rankings of type `α` — the key step in turning a median score vector
//! into a near-optimal top-k list or bucket order.

use crate::{BucketOrder, CoreError, ElementId, Pos, TypeSeq};

/// Whether the score vector `f` (indexed by element id) is consistent with
/// `sigma`: there is no pair with `f(i) < f(j)` and `σ(i) > σ(j)`.
///
/// Runs in `O(n)`: a violation exists exactly when some earlier bucket's
/// maximum score exceeds a later bucket's minimum score.
///
/// # Errors
/// Returns [`CoreError::DomainMismatch`] if `f.len() != sigma.len()`.
pub fn consistent_with(f: &[Pos], sigma: &BucketOrder) -> Result<bool, CoreError> {
    if f.len() != sigma.len() {
        return Err(CoreError::DomainMismatch {
            left: f.len(),
            right: sigma.len(),
        });
    }
    // violation ⟺ ∃ buckets B_i before B_j with x ∈ B_i, y ∈ B_j and
    // f(x) > f(y) ⟺ max f(B_i) > min f(B_j) for some i < j.
    let mut running_max: Option<Pos> = None;
    for b in sigma.buckets() {
        let mut lo = f[b[0] as usize];
        let mut hi = lo;
        for &e in &b[1..] {
            let v = f[e as usize];
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if let Some(m) = running_max {
            if m > lo {
                return Ok(false);
            }
        }
        running_max = Some(match running_max {
            Some(m) if m > hi => m,
            _ => hi,
        });
    }
    Ok(true)
}

/// The partial ranking `f̄` *induced* by a score vector (Section 6): rank
/// by `f` ascending, equal scores tied.
pub fn induced_ranking(f: &[Pos]) -> BucketOrder {
    BucketOrder::from_keys(f)
}

/// The canonical member of `⟨f⟩_α`: sort elements by `f` (ties by element
/// id, making the choice deterministic) and cut into buckets of the sizes
/// prescribed by `alpha`.
///
/// By Lemma 27 the result minimizes `L1(·, f)` over all partial rankings of
/// type `alpha`. With `alpha = TypeSeq::top_k(n, k)` this is exactly the
/// paper's "top k objects of `f`, ordered according to `f`, ties broken
/// arbitrarily" (Theorem 9).
///
/// # Errors
/// Returns [`CoreError::TypeSizeMismatch`] if `alpha` does not sum to
/// `f.len()`.
pub fn project_to_type(f: &[Pos], alpha: &TypeSeq) -> Result<BucketOrder, CoreError> {
    let n = f.len();
    if alpha.domain_size() != n {
        return Err(CoreError::TypeSizeMismatch {
            type_total: alpha.domain_size(),
            domain_size: n,
        });
    }
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.sort_by(|&a, &b| f[a as usize].cmp(&f[b as usize]).then(a.cmp(&b)));
    let mut buckets = Vec::with_capacity(alpha.num_buckets());
    let mut cursor = 0usize;
    for &s in alpha.sizes() {
        buckets.push(ids[cursor..cursor + s].to_vec());
        cursor += s;
    }
    BucketOrder::from_buckets(n, buckets)
}

/// Enumerates **every** bucket order on a domain of size `n` (all ordered
/// set partitions — the Fubini number of them). Brute-force verification
/// only; `n ≤ 7` is practical (47 293 orders at `n = 7`).
pub fn all_bucket_orders(n: usize) -> Vec<BucketOrder> {
    let mut out = Vec::new();
    let mut buckets: Vec<Vec<ElementId>> = Vec::new();
    place(0, n, &mut buckets, &mut out);
    out
}

fn place(
    e: usize,
    n: usize,
    buckets: &mut Vec<Vec<ElementId>>,
    out: &mut Vec<BucketOrder>,
) {
    if e == n {
        out.push(
            BucketOrder::from_buckets(n, buckets.clone()).expect("partition covers the domain"),
        );
        return;
    }
    let id = e as ElementId;
    // Join an existing bucket.
    for bi in 0..buckets.len() {
        buckets[bi].push(id);
        place(e + 1, n, buckets, out);
        buckets[bi].pop();
    }
    // Open a new bucket in any gap.
    for gap in 0..=buckets.len() {
        buckets.insert(gap, vec![id]);
        place(e + 1, n, buckets, out);
        buckets.remove(gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fubini;
    use std::collections::HashSet;

    fn pos_vec(vals: &[i64]) -> Vec<Pos> {
        vals.iter().map(|&v| Pos::from_half_units(v)).collect()
    }

    /// Definition-level consistency check.
    fn consistent_naive(f: &[Pos], sigma: &BucketOrder) -> bool {
        let n = f.len() as ElementId;
        for i in 0..n {
            for j in 0..n {
                if f[i as usize] < f[j as usize] && sigma.prefers(j, i) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn consistency_examples() {
        let sigma = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
        assert!(consistent_with(&pos_vec(&[2, 2, 10]), &sigma).unwrap());
        // The constant function is consistent with everything.
        assert!(consistent_with(&pos_vec(&[5, 5, 5]), &sigma).unwrap());
        // f puts 2 strictly below 0, but σ puts 0 ahead.
        assert!(!consistent_with(&pos_vec(&[4, 4, 2]), &sigma).unwrap());
        assert!(consistent_with(&pos_vec(&[1, 2]), &sigma).is_err());
    }

    #[test]
    fn consistency_fast_equals_naive_exhaustive() {
        let fs: Vec<Vec<Pos>> = vec![
            pos_vec(&[1, 1, 1]),
            pos_vec(&[1, 2, 3]),
            pos_vec(&[3, 2, 1]),
            pos_vec(&[1, 1, 2]),
            pos_vec(&[2, 1, 1]),
            pos_vec(&[1, 3, 1]),
        ];
        for sigma in all_bucket_orders(3) {
            for f in &fs {
                assert_eq!(
                    consistent_with(f, &sigma).unwrap(),
                    consistent_naive(f, &sigma),
                    "f = {f:?}, σ = {sigma:?}"
                );
            }
        }
    }

    #[test]
    fn induced_ranking_groups_equal_scores() {
        let f = pos_vec(&[4, 2, 4, 7]);
        let r = induced_ranking(&f);
        assert_eq!(r.display(), "[1 | 0 2 | 3]");
        assert!(consistent_with(&f, &r).unwrap());
    }

    #[test]
    fn project_to_type_is_consistent_and_typed() {
        let f = pos_vec(&[6, 2, 6, 1, 9]);
        let alpha = TypeSeq::new(vec![2, 3]).unwrap();
        let p = project_to_type(&f, &alpha).unwrap();
        assert_eq!(p.type_seq(), alpha);
        assert!(consistent_with(&f, &p).unwrap());
        // The two smallest scores (elements 3 and 1) form the first bucket.
        assert_eq!(p.buckets()[0], vec![1, 3]);
    }

    #[test]
    fn project_top_k_orders_by_score() {
        let f = pos_vec(&[6, 2, 8, 1, 9]);
        let alpha = TypeSeq::top_k(5, 2).unwrap();
        let p = project_to_type(&f, &alpha).unwrap();
        assert_eq!(p.display(), "[3 | 1 | 0 2 4]");
    }

    #[test]
    fn project_type_mismatch() {
        let f = pos_vec(&[1, 2]);
        let alpha = TypeSeq::new(vec![3]).unwrap();
        assert!(project_to_type(&f, &alpha).is_err());
    }

    #[test]
    fn all_bucket_orders_counts_match_fubini() {
        for n in 0..=5 {
            let orders = all_bucket_orders(n);
            assert_eq!(orders.len() as u128, fubini(n).unwrap(), "n = {n}");
            let distinct: HashSet<_> = orders.iter().map(|o| o.display()).collect();
            assert_eq!(distinct.len(), orders.len(), "duplicates at n = {n}");
        }
    }
}
