//! Ergonomic construction of ranking *profiles* from labeled data.
//!
//! The algorithmic layers work on dense element ids over one fixed
//! domain. Real inputs arrive as lists of names, often mentioning only
//! the items a source ranked (a search engine's top ten, a judge's
//! shortlist). [`ProfileBuilder`] collects labeled rankings, interns the
//! union of all labels as the domain, and finalizes every ranking over
//! it — either demanding full coverage or placing unmentioned items in an
//! implicit bottom bucket (turning each source into exactly the paper's
//! top-k-style partial ranking).
//!
//! ```
//! use bucketrank_core::profile::{MissingPolicy, ProfileBuilder};
//!
//! let mut b = ProfileBuilder::new();
//! b.ranking().bucket(["thai"]).bucket(["sushi", "pizza"]).done();
//! b.ranking().bucket(["sushi"]).done(); // mentions only one item
//! let profile = b.finish(MissingPolicy::BottomBucket).unwrap();
//!
//! assert_eq!(profile.domain().len(), 3);
//! let second = &profile.rankings()[1];
//! // "thai" and "pizza" were unmentioned: tied in the bottom bucket.
//! let thai = profile.domain().id("thai").unwrap();
//! let pizza = profile.domain().id("pizza").unwrap();
//! assert!(second.is_tied(thai, pizza));
//! ```

use crate::{BucketOrder, CoreError, Domain, ElementId};

/// What to do with domain elements a ranking does not mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingPolicy {
    /// Place all unmentioned elements in one bottom bucket (the paper's
    /// top-k convention).
    #[default]
    BottomBucket,
    /// Reject rankings that do not cover the full domain.
    Error,
}

/// A finalized profile: the shared domain and the rankings over it.
#[derive(Debug, Clone)]
pub struct Profile {
    domain: Domain,
    rankings: Vec<BucketOrder>,
}

impl Profile {
    /// The interned domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The rankings, in insertion order.
    pub fn rankings(&self) -> &[BucketOrder] {
        &self.rankings
    }

    /// Decomposes into `(domain, rankings)`.
    pub fn into_parts(self) -> (Domain, Vec<BucketOrder>) {
        (self.domain, self.rankings)
    }

    /// Finalizes one more labeled ranking over this profile's **frozen**
    /// domain — the streaming intake path. After `finish`, continuously
    /// arriving votes are completed one at a time against the existing
    /// domain (e.g. to feed an incremental engine such as
    /// `aggregate::dynamic::DynamicProfile`) without rebuilding the
    /// profile. Unlike [`ProfileBuilder`], the domain does not grow: a
    /// label outside it is an error, not a new element. The profile
    /// itself is not modified.
    ///
    /// # Errors
    /// [`CoreError::UnknownLabel`] for a label outside the domain;
    /// [`CoreError::DuplicateElement`] if a label appears twice;
    /// [`CoreError::MissingElement`] under [`MissingPolicy::Error`]
    /// when the ranking does not cover the domain.
    pub fn complete_ranking<S: AsRef<str>>(
        &self,
        buckets: &[&[S]],
        missing: MissingPolicy,
    ) -> Result<BucketOrder, CoreError> {
        let n = self.domain.len();
        let mut seen = vec![false; n];
        let mut interned: Vec<Vec<ElementId>> = Vec::with_capacity(buckets.len());
        for b in buckets {
            let mut ids = Vec::with_capacity(b.len());
            for l in *b {
                let l = l.as_ref();
                let e = self.domain.id(l).ok_or_else(|| CoreError::UnknownLabel {
                    label: l.to_string(),
                })?;
                if seen[e as usize] {
                    return Err(CoreError::DuplicateElement { element: e });
                }
                seen[e as usize] = true;
                ids.push(e);
            }
            interned.push(ids);
        }
        if matches!(missing, MissingPolicy::BottomBucket) {
            let rest: Vec<ElementId> = (0..n as ElementId)
                .filter(|&e| !seen[e as usize])
                .collect();
            if !rest.is_empty() {
                interned.push(rest);
            }
        }
        BucketOrder::from_buckets(n, interned)
    }
}

/// Collects labeled rankings; see the [module docs](self).
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    domain: Domain,
    /// Each ranking as bucket lists of interned ids.
    raw: Vec<Vec<Vec<ElementId>>>,
}

impl ProfileBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the next ranking; finish it with [`RankingBuilder::done`]
    /// (dropping the guard without `done` discards the ranking).
    pub fn ranking(&mut self) -> RankingBuilder<'_> {
        RankingBuilder {
            parent: self,
            buckets: Vec::new(),
        }
    }

    /// Adds a whole ranking at once: each inner slice is a bucket.
    pub fn push_ranking<S: AsRef<str>>(&mut self, buckets: &[&[S]]) -> &mut Self {
        let interned: Vec<Vec<ElementId>> = buckets
            .iter()
            .map(|b| b.iter().map(|l| self.domain.intern(l.as_ref())).collect())
            .collect();
        self.raw.push(interned);
        self
    }

    /// Number of rankings collected so far.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether no rankings were collected.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Finalizes all rankings over the union domain.
    ///
    /// # Errors
    /// [`CoreError::DuplicateElement`] if a ranking mentions a label
    /// twice; [`CoreError::MissingElement`] under
    /// [`MissingPolicy::Error`] when a ranking does not cover the domain.
    pub fn finish(self, missing: MissingPolicy) -> Result<Profile, CoreError> {
        let n = self.domain.len();
        let mut rankings = Vec::with_capacity(self.raw.len());
        for buckets in self.raw {
            let mut buckets = buckets;
            match missing {
                MissingPolicy::BottomBucket => {
                    let mut seen = vec![false; n];
                    for b in &buckets {
                        for &e in b {
                            if seen[e as usize] {
                                return Err(CoreError::DuplicateElement { element: e });
                            }
                            seen[e as usize] = true;
                        }
                    }
                    let rest: Vec<ElementId> = (0..n as ElementId)
                        .filter(|&e| !seen[e as usize])
                        .collect();
                    if !rest.is_empty() {
                        buckets.push(rest);
                    }
                }
                MissingPolicy::Error => {}
            }
            rankings.push(BucketOrder::from_buckets(n, buckets)?);
        }
        Ok(Profile {
            domain: self.domain,
            rankings,
        })
    }
}

/// Guard for building one ranking inside a [`ProfileBuilder`].
#[derive(Debug)]
pub struct RankingBuilder<'a> {
    parent: &'a mut ProfileBuilder,
    buckets: Vec<Vec<ElementId>>,
}

impl RankingBuilder<'_> {
    /// Appends the next bucket of tied labels.
    #[must_use = "finish the ranking with done()"]
    pub fn bucket<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let b: Vec<ElementId> = labels
            .into_iter()
            .map(|l| self.parent.domain.intern(l.as_ref()))
            .collect();
        self.buckets.push(b);
        self
    }

    /// Commits the ranking to the profile.
    pub fn done(self) {
        self.parent.raw.push(self.buckets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_bucket_policy_completes_rankings() {
        let mut b = ProfileBuilder::new();
        b.ranking().bucket(["a"]).bucket(["b"]).done();
        b.ranking().bucket(["c"]).done();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let p = b.finish(MissingPolicy::BottomBucket).unwrap();
        assert_eq!(p.domain().len(), 3);
        let c = p.domain().id("c").unwrap();
        let a = p.domain().id("a").unwrap();
        let bb = p.domain().id("b").unwrap();
        // First ranking: c unmentioned → bottom.
        assert!(p.rankings()[0].prefers(a, c));
        // Second: a, b tied at the bottom behind c.
        assert!(p.rankings()[1].prefers(c, a));
        assert!(p.rankings()[1].is_tied(a, bb));
    }

    #[test]
    fn error_policy_requires_coverage() {
        let mut b = ProfileBuilder::new();
        b.push_ranking(&[&["x", "y"]]);
        b.push_ranking(&[&["x"]]); // misses y
        let e = b.finish(MissingPolicy::Error).unwrap_err();
        assert!(matches!(e, CoreError::MissingElement { .. }));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = ProfileBuilder::new();
        b.push_ranking(&[&["x"], &["x"]]);
        assert!(matches!(
            b.finish(MissingPolicy::BottomBucket),
            Err(CoreError::DuplicateElement { .. })
        ));
    }

    #[test]
    fn dropped_guard_discards_ranking() {
        let mut b = ProfileBuilder::new();
        {
            let _incomplete = b.ranking().bucket(["a"]);
            // dropped without done()
        }
        b.ranking().bucket(["a"]).done();
        let p = b.finish(MissingPolicy::BottomBucket).unwrap();
        assert_eq!(p.rankings().len(), 1);
    }

    #[test]
    fn profile_feeds_the_pipeline() {
        // End-to-end smoke: everything downstream accepts the rankings.
        let mut b = ProfileBuilder::new();
        b.push_ranking(&[&["a"], &["b", "c"], &["d"]]);
        b.push_ranking(&[&["b"], &["a"]]);
        b.push_ranking(&[&["d", "c"]]);
        let p = b.finish(MissingPolicy::BottomBucket).unwrap();
        let (domain, rankings) = p.into_parts();
        assert_eq!(domain.len(), 4);
        assert!(rankings.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn complete_ranking_streams_over_the_frozen_domain() {
        let mut b = ProfileBuilder::new();
        b.push_ranking(&[&["a"], &["b", "c"], &["d"]]);
        let p = b.finish(MissingPolicy::BottomBucket).unwrap();

        // A late vote mentioning a subset: the rest goes to the bottom.
        let r = p
            .complete_ranking(&[&["c"], &["a"]], MissingPolicy::BottomBucket)
            .unwrap();
        assert_eq!(r.len(), 4);
        let (a, c, d) = (
            p.domain().id("a").unwrap(),
            p.domain().id("c").unwrap(),
            p.domain().id("d").unwrap(),
        );
        assert!(r.prefers(c, a));
        assert!(r.prefers(a, d));
        // The domain is frozen: new labels are typed errors, not growth.
        assert_eq!(
            p.complete_ranking(&[&["z"]], MissingPolicy::BottomBucket),
            Err(CoreError::UnknownLabel {
                label: "z".to_string()
            })
        );
        assert_eq!(p.domain().len(), 4);
        // Duplicates and missing coverage keep the batch semantics.
        assert!(matches!(
            p.complete_ranking(&[&["a"], &["a"]], MissingPolicy::BottomBucket),
            Err(CoreError::DuplicateElement { .. })
        ));
        assert!(matches!(
            p.complete_ranking(&[&["a"]], MissingPolicy::Error),
            Err(CoreError::MissingElement { .. })
        ));
        // Matches what the batch builder would have produced.
        let mut b2 = ProfileBuilder::new();
        b2.push_ranking(&[&["a"], &["b", "c"], &["d"]]);
        b2.push_ranking(&[&["c"], &["a"]]);
        let p2 = b2.finish(MissingPolicy::BottomBucket).unwrap();
        assert_eq!(&p2.rankings()[1], &r);
    }

    #[test]
    fn empty_profile_is_fine() {
        let p = ProfileBuilder::new()
            .finish(MissingPolicy::BottomBucket)
            .unwrap();
        assert!(p.rankings().is_empty());
        assert!(p.domain().is_empty());
    }
}
