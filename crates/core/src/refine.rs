//! Refinements of partial rankings and the tie-breaking operator `τ∗σ`.
//!
//! Section 2 of the paper: `σ` is a *refinement* of `τ` (written `σ ⪯ τ`)
//! when `τ(i) < τ(j)` implies `σ(i) < σ(j)`; ties of `τ` may be broken
//! freely by `σ`. The `τ`-refinement of `σ`, written `τ∗σ`, refines `σ` by
//! breaking its ties according to `τ` (pairs tied in both stay tied). The
//! operator `∗` is associative, so `ρ∗τ∗σ` is well defined.

use crate::{BucketOrder, CoreError, ElementId};

/// Whether `sigma ⪯ tau`: `sigma` refines `tau`.
///
/// Runs in `O(n)`: each bucket of `sigma` must lie inside one bucket of
/// `tau`, and the induced map from `sigma`-buckets to `tau`-buckets must be
/// non-decreasing.
///
/// # Errors
/// Returns [`CoreError::DomainMismatch`] if the two orders have different
/// domain sizes.
pub fn is_refinement(sigma: &BucketOrder, tau: &BucketOrder) -> Result<bool, CoreError> {
    if sigma.len() != tau.len() {
        return Err(CoreError::DomainMismatch {
            left: sigma.len(),
            right: tau.len(),
        });
    }
    let mut prev_tau_bucket: Option<usize> = None;
    for bucket in sigma.buckets() {
        let tb = tau.bucket_index(bucket[0]);
        if bucket.iter().any(|&e| tau.bucket_index(e) != tb) {
            return Ok(false);
        }
        if let Some(prev) = prev_tau_bucket {
            if tb < prev {
                return Ok(false);
            }
        }
        prev_tau_bucket = Some(tb);
    }
    Ok(true)
}

/// The `τ`-refinement `τ∗σ` of `σ` (Section 2): refine `σ`, breaking each
/// tie by `τ`'s order; pairs tied in both remain tied.
///
/// When `τ` is a full ranking, the result is a full ranking.
///
/// # Errors
/// Returns [`CoreError::DomainMismatch`] on differing domains.
pub fn star(tau: &BucketOrder, sigma: &BucketOrder) -> Result<BucketOrder, CoreError> {
    star_chain(&[tau], sigma)
}

/// The iterated refinement `τ_1 ∗ τ_2 ∗ … ∗ τ_m ∗ σ` (associativity makes
/// the grouping irrelevant): ties of `σ` are broken by `τ_m` first, with
/// remaining ties broken by `τ_{m−1}`, and so on; `τ_1` has the final say
/// on pairs tied everywhere else.
///
/// Implemented as one stable sort by the lexicographic key
/// `(σ-bucket, τ_m-bucket, …, τ_1-bucket)`, which is `O(n·m + n log n)`.
///
/// # Errors
/// Returns [`CoreError::DomainMismatch`] on differing domains.
pub fn star_chain(taus: &[&BucketOrder], sigma: &BucketOrder) -> Result<BucketOrder, CoreError> {
    let n = sigma.len();
    for t in taus {
        if t.len() != n {
            return Err(CoreError::DomainMismatch {
                left: t.len(),
                right: n,
            });
        }
    }
    // Key for element e: σ-bucket, then τ buckets from innermost (last) out.
    let key = |e: ElementId| -> Vec<u32> {
        let mut k = Vec::with_capacity(1 + taus.len());
        k.push(sigma.bucket_index(e) as u32);
        for t in taus.iter().rev() {
            k.push(t.bucket_index(e) as u32);
        }
        k
    };
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    let keys: Vec<Vec<u32>> = ids.iter().map(|&e| key(e)).collect();
    ids.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    let mut buckets: Vec<Vec<ElementId>> = Vec::new();
    let mut prev: Option<&[u32]> = None;
    for &e in &ids {
        let k = keys[e as usize].as_slice();
        if prev == Some(k) {
            buckets.last_mut().expect("nonempty").push(e);
        } else {
            buckets.push(vec![e]);
            prev = Some(k);
        }
    }
    BucketOrder::from_buckets(n, buckets)
}

/// The number of full refinements of `sigma`: the product of the
/// factorials of its bucket sizes. Returns `None` on overflow.
pub fn count_full_refinements(sigma: &BucketOrder) -> Option<u128> {
    let mut total: u128 = 1;
    for b in sigma.buckets() {
        for i in 2..=b.len() as u128 {
            total = total.checked_mul(i)?;
        }
    }
    Some(total)
}

/// Iterator over **all** full refinements of a bucket order, in a
/// deterministic order. Intended for brute-force verification on small
/// domains (the count grows as the product of bucket-size factorials).
///
/// ```
/// use bucketrank_core::BucketOrder;
/// use bucketrank_core::refine::{full_refinements, count_full_refinements};
///
/// let s = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
/// let all: Vec<_> = full_refinements(&s).collect();
/// assert_eq!(all.len() as u128, count_full_refinements(&s).unwrap());
/// assert!(all.iter().all(|f| f.is_full()));
/// ```
pub fn full_refinements(sigma: &BucketOrder) -> FullRefinements {
    let per_bucket: Vec<Vec<Vec<ElementId>>> = sigma
        .buckets()
        .iter()
        .map(|b| permutations(b))
        .collect();
    FullRefinements {
        n: sigma.len(),
        per_bucket,
        odometer: vec![0; sigma.num_buckets()],
        done: false,
    }
}

/// See [`full_refinements`].
#[derive(Debug)]
pub struct FullRefinements {
    n: usize,
    per_bucket: Vec<Vec<Vec<ElementId>>>,
    odometer: Vec<usize>,
    done: bool,
}

impl Iterator for FullRefinements {
    type Item = BucketOrder;

    fn next(&mut self) -> Option<BucketOrder> {
        if self.done {
            return None;
        }
        let mut perm = Vec::with_capacity(self.n);
        for (bi, &pi) in self.odometer.iter().enumerate() {
            perm.extend_from_slice(&self.per_bucket[bi][pi]);
        }
        // Advance the odometer.
        let mut i = self.odometer.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.odometer[i] += 1;
            if self.odometer[i] < self.per_bucket[i].len() {
                break;
            }
            self.odometer[i] = 0;
        }
        Some(BucketOrder::from_permutation(&perm).expect("valid by construction"))
    }
}

fn permutations(items: &[ElementId]) -> Vec<Vec<ElementId>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    heap_permute(&mut work, items.len(), &mut out);
    out
}

fn heap_permute(work: &mut Vec<ElementId>, k: usize, out: &mut Vec<Vec<ElementId>>) {
    if k <= 1 {
        out.push(work.clone());
        return;
    }
    for i in 0..k {
        heap_permute(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    /// Definition-level refinement check: `τ(i) < τ(j) ⇒ σ(i) < σ(j)`.
    fn is_refinement_naive(sigma: &BucketOrder, tau: &BucketOrder) -> bool {
        let n = sigma.len() as ElementId;
        for i in 0..n {
            for j in 0..n {
                if tau.prefers(i, j) && !sigma.prefers(i, j) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn refinement_examples() {
        let tau = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let s1 = bo(4, vec![vec![0], vec![1], vec![2, 3]]);
        let s2 = bo(4, vec![vec![1], vec![0], vec![3], vec![2]]);
        let bad = bo(4, vec![vec![2], vec![0, 1], vec![3]]);
        assert!(is_refinement(&s1, &tau).unwrap());
        assert!(is_refinement(&s2, &tau).unwrap());
        assert!(!is_refinement(&bad, &tau).unwrap());
        // Every order refines the trivial order; reflexivity holds.
        assert!(is_refinement(&tau, &BucketOrder::trivial(4)).unwrap());
        assert!(is_refinement(&tau, &tau).unwrap());
        // Domain mismatch is an error.
        assert!(is_refinement(&tau, &BucketOrder::trivial(5)).is_err());
    }

    #[test]
    fn refinement_fast_equals_naive_exhaustive() {
        let orders = crate::consistent::all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                assert_eq!(
                    is_refinement(a, b).unwrap(),
                    is_refinement_naive(a, b),
                    "a = {a:?}, b = {b:?}"
                );
            }
        }
    }

    #[test]
    fn star_breaks_ties_by_tau() {
        // σ = [0 1 2 | 3], τ = [2 | 0 3 | 1]
        let sigma = bo(4, vec![vec![0, 1, 2], vec![3]]);
        let tau = bo(4, vec![vec![2], vec![0, 3], vec![1]]);
        let r = star(&tau, &sigma).unwrap();
        // Within σ's first bucket, τ orders 2 < 0 < 1; 3 unaffected.
        assert_eq!(r.display(), "[2 | 0 | 1 | 3]");
        assert!(is_refinement(&r, &sigma).unwrap());
    }

    #[test]
    fn star_keeps_double_ties() {
        let sigma = bo(3, vec![vec![0, 1, 2]]);
        let tau = bo(3, vec![vec![0, 1], vec![2]]);
        let r = star(&tau, &sigma).unwrap();
        assert_eq!(r.display(), "[0 1 | 2]");
        assert!(r.is_tied(0, 1));
    }

    #[test]
    fn star_with_full_tau_is_full() {
        let sigma = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let tau = BucketOrder::from_permutation(&[3, 1, 2, 0]).unwrap();
        let r = star(&tau, &sigma).unwrap();
        assert!(r.is_full());
        assert_eq!(r.as_permutation(), Some(vec![1, 0, 3, 2]));
    }

    #[test]
    fn star_is_associative() {
        let rho = bo(4, vec![vec![3], vec![2], vec![1], vec![0]]);
        let tau = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let sigma = bo(4, vec![vec![0, 1, 2, 3]]);
        // ρ∗(τ∗σ) == (ρ∗τ)∗σ — both equal star_chain([ρ, τ], σ).
        let a = star(&rho, &star(&tau, &sigma).unwrap()).unwrap();
        let b = star(&star(&rho, &tau).unwrap(), &sigma).unwrap();
        let c = star_chain(&[&rho, &tau], &sigma).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn star_domain_mismatch() {
        let sigma = BucketOrder::trivial(3);
        let tau = BucketOrder::trivial(4);
        assert!(star(&tau, &sigma).is_err());
    }

    #[test]
    fn full_refinements_enumeration() {
        let s = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let all: HashSet<Vec<ElementId>> = full_refinements(&s)
            .map(|f| f.as_permutation().unwrap())
            .collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&vec![0, 1, 2, 3]));
        assert!(all.contains(&vec![1, 0, 3, 2]));
        for f in full_refinements(&s) {
            assert!(is_refinement(&f, &s).unwrap());
        }
        assert_eq!(count_full_refinements(&s), Some(4));
    }

    #[test]
    fn full_refinements_of_full_ranking_is_itself() {
        let f = BucketOrder::from_permutation(&[1, 0, 2]).unwrap();
        let all: Vec<_> = full_refinements(&f).collect();
        assert_eq!(all, vec![f]);
    }

    #[test]
    fn full_refinements_of_trivial_is_all_permutations() {
        let t = BucketOrder::trivial(4);
        let all: HashSet<Vec<ElementId>> = full_refinements(&t)
            .map(|f| f.as_permutation().unwrap())
            .collect();
        assert_eq!(all.len(), 24);
        assert_eq!(count_full_refinements(&t), Some(24));
    }

    #[test]
    fn count_overflow_is_none() {
        // 30! ≈ 2.7e32 fits in u128; 40! ≈ 8.2e47 does not.
        assert!(count_full_refinements(&BucketOrder::trivial(30)).is_some());
        assert!(count_full_refinements(&BucketOrder::trivial(40)).is_none());
    }
}
