//! Bucket orders: linear orders with ties, the paper's central object.

use crate::{CoreError, ElementId, Pos, TypeSeq};
use std::cmp::Ordering;
use std::fmt;

/// A *bucket order* over the domain `{0, 1, …, n−1}`: an ordered partition
/// of the domain into nonempty buckets. Elements in the same bucket are
/// tied; `x ◁ y` holds exactly when the bucket of `x` precedes the bucket
/// of `y`.
///
/// The associated *partial ranking* `σ` maps each element to the position
/// of its bucket, `σ(x) = pos(B) = Σ_{j<i}|B_j| + (|B_i|+1)/2`, available
/// exactly (in half-units) via [`BucketOrder::position`].
///
/// Buckets are stored with their elements sorted ascending, so structural
/// equality (`==`, `Hash`) coincides with semantic equality of the ranking.
///
/// # Example
///
/// ```
/// use bucketrank_core::BucketOrder;
///
/// // Two ways to build the same ranking with a tie between 1 and 3.
/// let a = BucketOrder::from_buckets(4, vec![vec![2], vec![3, 1], vec![0]]).unwrap();
/// let b = BucketOrder::from_keys(&[3, 2, 1, 2]); // rank by key ascending
/// assert_eq!(a, b);
/// assert!(a.prefers(2, 3));
/// assert!(a.is_tied(1, 3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BucketOrder {
    n: usize,
    /// Buckets in rank order; each bucket's elements sorted ascending.
    buckets: Vec<Vec<ElementId>>,
    /// Element id → index of its bucket.
    bucket_of: Vec<u32>,
    /// Bucket index → position (half-units).
    bucket_pos: Vec<Pos>,
}

impl BucketOrder {
    /// Builds a bucket order from an ordered list of buckets covering the
    /// domain `{0, …, n−1}` exactly once each.
    pub fn from_buckets(
        n: usize,
        buckets: Vec<Vec<ElementId>>,
    ) -> Result<BucketOrder, CoreError> {
        let mut bucket_of = vec![u32::MAX; n];
        for (bi, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                return Err(CoreError::EmptyBucket { index: bi });
            }
            for &e in bucket {
                let slot = bucket_of
                    .get_mut(e as usize)
                    .ok_or(CoreError::ElementOutOfRange {
                        element: e,
                        domain_size: n,
                    })?;
                if *slot != u32::MAX {
                    return Err(CoreError::DuplicateElement { element: e });
                }
                *slot = bi as u32;
            }
        }
        if let Some(e) = bucket_of.iter().position(|&b| b == u32::MAX) {
            return Err(CoreError::MissingElement { element: e as u32 });
        }
        let mut buckets = buckets;
        for b in &mut buckets {
            b.sort_unstable();
        }
        let bucket_pos = Self::compute_positions(&buckets);
        Ok(BucketOrder {
            n,
            buckets,
            bucket_of,
            bucket_pos,
        })
    }

    /// Builds a full ranking from a permutation: `perm[r]` is the element at
    /// rank `r + 1`.
    pub fn from_permutation(perm: &[ElementId]) -> Result<BucketOrder, CoreError> {
        let buckets = perm.iter().map(|&e| vec![e]).collect();
        BucketOrder::from_buckets(perm.len(), buckets)
    }

    /// Ranks the domain by a key per element, ascending (smaller key is
    /// ranked ahead); equal keys tie. This is how a database sort on a
    /// few-valued attribute produces a partial ranking.
    pub fn from_keys<K: Ord>(keys: &[K]) -> BucketOrder {
        let n = keys.len();
        let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
        ids.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b)));
        let mut buckets: Vec<Vec<ElementId>> = Vec::new();
        for &e in &ids {
            match buckets.last() {
                Some(last) if keys[last[0] as usize] == keys[e as usize] => {
                    buckets.last_mut().expect("nonempty").push(e);
                }
                _ => buckets.push(vec![e]),
            }
        }
        BucketOrder::from_buckets(n, buckets).expect("keys cover the domain by construction")
    }

    /// Ranks the domain by a key per element, descending (larger key is
    /// ranked ahead); equal keys tie.
    pub fn from_keys_desc<K: Ord>(keys: &[K]) -> BucketOrder {
        let n = keys.len();
        let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
        ids.sort_by(|&a, &b| keys[b as usize].cmp(&keys[a as usize]).then(a.cmp(&b)));
        let mut buckets: Vec<Vec<ElementId>> = Vec::new();
        for &e in &ids {
            match buckets.last() {
                Some(last) if keys[last[0] as usize] == keys[e as usize] => {
                    buckets.last_mut().expect("nonempty").push(e);
                }
                _ => buckets.push(vec![e]),
            }
        }
        BucketOrder::from_buckets(n, buckets).expect("keys cover the domain by construction")
    }

    /// Builds a top-k list: the given elements as singleton buckets in
    /// order, followed by one bottom bucket holding the rest of the domain.
    pub fn top_k(n: usize, top: &[ElementId]) -> Result<BucketOrder, CoreError> {
        if top.len() > n {
            return Err(CoreError::InvalidK {
                k: top.len(),
                domain_size: n,
            });
        }
        let mut seen = vec![false; n];
        let mut buckets: Vec<Vec<ElementId>> = Vec::with_capacity(top.len() + 1);
        for &e in top {
            let slot = seen
                .get_mut(e as usize)
                .ok_or(CoreError::ElementOutOfRange {
                    element: e,
                    domain_size: n,
                })?;
            if *slot {
                return Err(CoreError::DuplicateElement { element: e });
            }
            *slot = true;
            buckets.push(vec![e]);
        }
        let rest: Vec<ElementId> = (0..n as ElementId)
            .filter(|&e| !seen[e as usize])
            .collect();
        if !rest.is_empty() {
            buckets.push(rest);
        }
        BucketOrder::from_buckets(n, buckets)
    }

    /// The bucket order with a single bucket: everything tied.
    pub fn trivial(n: usize) -> BucketOrder {
        if n == 0 {
            return BucketOrder {
                n: 0,
                buckets: vec![],
                bucket_of: vec![],
                bucket_pos: vec![],
            };
        }
        let all: Vec<ElementId> = (0..n as ElementId).collect();
        BucketOrder::from_buckets(n, vec![all]).expect("single full bucket is valid")
    }

    /// The identity full ranking `0 ◁ 1 ◁ … ◁ n−1`.
    pub fn identity(n: usize) -> BucketOrder {
        let perm: Vec<ElementId> = (0..n as ElementId).collect();
        BucketOrder::from_permutation(&perm).expect("identity permutation is valid")
    }

    fn compute_positions(buckets: &[Vec<ElementId>]) -> Vec<Pos> {
        let mut out = Vec::with_capacity(buckets.len());
        let mut before = 0usize;
        for b in buckets {
            out.push(Pos::from_half_units((2 * before + b.len() + 1) as i64));
            before += b.len();
        }
        out
    }

    /// Domain size `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets, in rank order; each bucket's elements sorted ascending.
    #[inline]
    pub fn buckets(&self) -> &[Vec<ElementId>] {
        &self.buckets
    }

    /// The index of the bucket containing `x`.
    ///
    /// # Panics
    /// Panics if `x` is outside the domain.
    #[inline]
    pub fn bucket_index(&self, x: ElementId) -> usize {
        self.bucket_of[x as usize] as usize
    }

    /// Element id → bucket index, as one contiguous slice (entry `e` is
    /// `bucket_index(e)`). Hot loops — the prepared metric kernels in
    /// `bucketrank-metrics` — index this directly instead of paying a
    /// method call per element.
    #[inline]
    pub fn bucket_indices(&self) -> &[u32] {
        &self.bucket_of
    }

    /// The partial ranking value `σ(x) = pos(bucket of x)`, exactly.
    ///
    /// # Panics
    /// Panics if `x` is outside the domain.
    #[inline]
    pub fn position(&self, x: ElementId) -> Pos {
        self.bucket_pos[self.bucket_of[x as usize] as usize]
    }

    /// The position of bucket `i`.
    #[inline]
    pub fn bucket_position(&self, i: usize) -> Pos {
        self.bucket_pos[i]
    }

    /// The *F-profile*: the vector `⟨σ(x) : x ∈ D⟩` of element positions.
    pub fn positions(&self) -> Vec<Pos> {
        (0..self.n as ElementId).map(|x| self.position(x)).collect()
    }

    /// Whether `x` is ahead of `y` (`σ(x) < σ(y)`).
    #[inline]
    pub fn prefers(&self, x: ElementId, y: ElementId) -> bool {
        self.bucket_of[x as usize] < self.bucket_of[y as usize]
    }

    /// Whether `x` and `y` are tied (same bucket).
    #[inline]
    pub fn is_tied(&self, x: ElementId, y: ElementId) -> bool {
        self.bucket_of[x as usize] == self.bucket_of[y as usize]
    }

    /// Compares two elements by rank: `Less` means `x` is ahead of `y`,
    /// `Equal` means tied.
    #[inline]
    pub fn cmp_elements(&self, x: ElementId, y: ElementId) -> Ordering {
        self.bucket_of[x as usize].cmp(&self.bucket_of[y as usize])
    }

    /// The type (sequence of bucket sizes) of this bucket order.
    pub fn type_seq(&self) -> TypeSeq {
        TypeSeq::new(self.buckets.iter().map(Vec::len).collect())
            .expect("buckets are nonempty by construction")
    }

    /// Whether this is a full ranking (all buckets singletons).
    pub fn is_full(&self) -> bool {
        self.buckets.len() == self.n
    }

    /// If this is a top-k list (`k` singleton buckets, then at most one
    /// bottom bucket), returns `k`. Full rankings return `Some(n)`.
    pub fn top_k_len(&self) -> Option<usize> {
        self.type_seq().is_top_k()
    }

    /// The reverse `σ^R` with `σ^R(d) = |D| + 1 − σ(d)`: the bucket
    /// sequence reversed.
    pub fn reverse(&self) -> BucketOrder {
        let buckets: Vec<Vec<ElementId>> = self.buckets.iter().rev().cloned().collect();
        BucketOrder::from_buckets(self.n, buckets).expect("reversal preserves validity")
    }

    /// If this is a full ranking, the permutation `rank → element`.
    pub fn as_permutation(&self) -> Option<Vec<ElementId>> {
        if !self.is_full() {
            return None;
        }
        Some(self.buckets.iter().map(|b| b[0]).collect())
    }

    /// A canonical full refinement: ties broken by ascending element id.
    pub fn arbitrary_full_refinement(&self) -> BucketOrder {
        let mut perm = Vec::with_capacity(self.n);
        for b in &self.buckets {
            perm.extend_from_slice(b); // buckets are stored sorted
        }
        BucketOrder::from_permutation(&perm).expect("refinement covers the domain")
    }

    /// Iterates over elements in rank order, yielding `(bucket_index, id)`.
    pub fn iter_ranked(&self) -> impl Iterator<Item = (usize, ElementId)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.iter().map(move |&e| (bi, e)))
    }

    /// Restricts the ranking to a sub-domain: `keep[i]` is the element
    /// (in this order's domain) that becomes element `i` of the result.
    /// Relative order and ties are preserved; empty buckets vanish.
    ///
    /// This is the "projection onto a subset" used when comparing
    /// rankings over different domains via their common elements.
    ///
    /// # Errors
    /// [`CoreError::ElementOutOfRange`] / [`CoreError::DuplicateElement`].
    pub fn restrict(&self, keep: &[ElementId]) -> Result<BucketOrder, CoreError> {
        let mut new_id = vec![u32::MAX; self.n];
        for (i, &e) in keep.iter().enumerate() {
            let slot = new_id
                .get_mut(e as usize)
                .ok_or(CoreError::ElementOutOfRange {
                    element: e,
                    domain_size: self.n,
                })?;
            if *slot != u32::MAX {
                return Err(CoreError::DuplicateElement { element: e });
            }
            *slot = i as u32;
        }
        let mut buckets: Vec<Vec<ElementId>> = Vec::new();
        for b in &self.buckets {
            let kept: Vec<ElementId> = b
                .iter()
                .filter_map(|&e| {
                    let id = new_id[e as usize];
                    (id != u32::MAX).then_some(id)
                })
                .collect();
            if !kept.is_empty() {
                buckets.push(kept);
            }
        }
        BucketOrder::from_buckets(keep.len(), buckets)
    }

    /// Renders the order as e.g. `[0 2 | 1 | 3]` (buckets separated by `|`).
    pub fn display(&self) -> String {
        let mut s = String::from("[");
        for (bi, b) in self.buckets.iter().enumerate() {
            if bi > 0 {
                s.push_str(" | ");
            }
            for (i, e) in b.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&e.to_string());
            }
        }
        s.push(']');
        s
    }
}

impl fmt::Debug for BucketOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BucketOrder{}", self.display())
    }
}

/// An incremental builder that appends buckets in rank order.
///
/// ```
/// use bucketrank_core::BucketOrderBuilder;
///
/// let mut b = BucketOrderBuilder::new(4);
/// b.push_bucket([3]);
/// b.push_bucket([0, 1]);
/// b.push_bucket([2]);
/// let order = b.finish().unwrap();
/// assert_eq!(order.display(), "[3 | 0 1 | 2]");
/// ```
#[derive(Debug, Clone)]
pub struct BucketOrderBuilder {
    n: usize,
    buckets: Vec<Vec<ElementId>>,
}

impl BucketOrderBuilder {
    /// Starts a builder for a domain of size `n`.
    pub fn new(n: usize) -> Self {
        BucketOrderBuilder {
            n,
            buckets: Vec::new(),
        }
    }

    /// Appends the next bucket (following all buckets pushed so far).
    pub fn push_bucket<I: IntoIterator<Item = ElementId>>(&mut self, bucket: I) -> &mut Self {
        self.buckets.push(bucket.into_iter().collect());
        self
    }

    /// Validates and produces the bucket order.
    pub fn finish(self) -> Result<BucketOrder, CoreError> {
        BucketOrder::from_buckets(self.n, self.buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            BucketOrder::from_buckets(3, vec![vec![0], vec![1]]),
            Err(CoreError::MissingElement { element: 2 })
        ));
        assert!(matches!(
            BucketOrder::from_buckets(2, vec![vec![0, 0], vec![1]]),
            Err(CoreError::DuplicateElement { element: 0 })
        ));
        assert!(matches!(
            BucketOrder::from_buckets(2, vec![vec![0, 5], vec![1]]),
            Err(CoreError::ElementOutOfRange { element: 5, .. })
        ));
        assert!(matches!(
            BucketOrder::from_buckets(2, vec![vec![0], vec![], vec![1]]),
            Err(CoreError::EmptyBucket { index: 1 })
        ));
    }

    #[test]
    fn positions_follow_paper() {
        // Example: B1 = {a, b}, B2 = {c}: pos(B1) = 1.5, pos(B2) = 3.
        let s = bo(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(s.position(0), Pos::from_half_units(3));
        assert_eq!(s.position(1), Pos::from_half_units(3));
        assert_eq!(s.position(2), Pos::from_half_units(6));
    }

    #[test]
    fn equality_is_semantic() {
        let a = bo(3, vec![vec![1, 0], vec![2]]);
        let b = bo(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(a, b);
        let c = bo(3, vec![vec![0], vec![1], vec![2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn from_keys_groups_ties() {
        let s = BucketOrder::from_keys(&[30, 10, 30, 20]);
        assert_eq!(s.display(), "[1 | 3 | 0 2]");
        let d = BucketOrder::from_keys_desc(&[30, 10, 30, 20]);
        assert_eq!(d.display(), "[0 2 | 3 | 1]");
    }

    #[test]
    fn permutation_round_trip() {
        let s = BucketOrder::from_permutation(&[2, 0, 1]).unwrap();
        assert!(s.is_full());
        assert_eq!(s.as_permutation(), Some(vec![2, 0, 1]));
        assert_eq!(s.position(2), Pos::from_rank(1));
        assert_eq!(s.position(0), Pos::from_rank(2));
    }

    #[test]
    fn top_k_shape() {
        let s = BucketOrder::top_k(5, &[4, 1]).unwrap();
        assert_eq!(s.display(), "[4 | 1 | 0 2 3]");
        assert_eq!(s.top_k_len(), Some(2));
        assert!(BucketOrder::top_k(3, &[0, 0]).is_err());
        assert!(BucketOrder::top_k(2, &[0, 1, 1]).is_err());
        // top-n is a full ranking
        let f = BucketOrder::top_k(3, &[2, 1, 0]).unwrap();
        assert!(f.is_full());
    }

    #[test]
    fn reverse_matches_formula() {
        let s = bo(4, vec![vec![0], vec![1, 2], vec![3]]);
        let r = s.reverse();
        let n1 = Pos::from_half_units(2 * (s.len() as i64 + 1));
        for x in 0..4 {
            assert_eq!(r.position(x), n1 - s.position(x), "element {x}");
        }
        assert_eq!(s.reverse().reverse(), s);
    }

    #[test]
    fn trivial_and_identity() {
        let t = BucketOrder::trivial(4);
        assert_eq!(t.num_buckets(), 1);
        for x in 0..4 {
            for y in 0..4 {
                assert!(t.is_tied(x, y));
            }
        }
        let i = BucketOrder::identity(3);
        assert!(i.prefers(0, 1));
        assert!(i.prefers(1, 2));

        let e = BucketOrder::trivial(0);
        assert!(e.is_empty());
        assert_eq!(e.num_buckets(), 0);
    }

    #[test]
    fn arbitrary_full_refinement_is_refinement() {
        let s = bo(4, vec![vec![2, 3], vec![0, 1]]);
        let f = s.arbitrary_full_refinement();
        assert!(f.is_full());
        assert_eq!(f.as_permutation(), Some(vec![2, 3, 0, 1]));
    }

    #[test]
    fn iter_ranked_visits_in_order() {
        let s = bo(3, vec![vec![1, 2], vec![0]]);
        let got: Vec<_> = s.iter_ranked().collect();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn builder() {
        let mut b = BucketOrderBuilder::new(3);
        b.push_bucket([2]).push_bucket([0, 1]);
        let s = b.finish().unwrap();
        assert_eq!(s.display(), "[2 | 0 1]");
    }

    #[test]
    fn restrict_preserves_order_and_ties() {
        let s = bo(6, vec![vec![0, 1], vec![2], vec![3, 4], vec![5]]);
        // Keep 1, 3, 4, 5 → renumbered 0, 1, 2, 3.
        let r = s.restrict(&[1, 3, 4, 5]).unwrap();
        assert_eq!(r.display(), "[0 | 1 2 | 3]");
        // Keep in a different order: renumbering follows `keep`.
        let r = s.restrict(&[5, 1]).unwrap();
        assert_eq!(r.display(), "[1 | 0]");
        // Empty restriction.
        let r = s.restrict(&[]).unwrap();
        assert!(r.is_empty());
        // Errors.
        assert!(s.restrict(&[9]).is_err());
        assert!(s.restrict(&[1, 1]).is_err());
    }

    #[test]
    fn restrict_full_stays_full() {
        let s = BucketOrder::from_permutation(&[3, 0, 2, 1]).unwrap();
        let r = s.restrict(&[0, 2, 3]).unwrap();
        assert!(r.is_full());
        // 3 first, then 0, then 2 → renumbered 2, 0, 1.
        assert_eq!(r.as_permutation(), Some(vec![2, 0, 1]));
    }

    #[test]
    fn type_seq_reflects_buckets() {
        let s = bo(5, vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert_eq!(s.type_seq().sizes(), &[2, 1, 2]);
    }
}
