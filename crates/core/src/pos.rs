//! Exact bucket positions in half-units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// An exact rank position, stored in *half-units* (twice the paper's value).
///
/// The position of a bucket, `pos(B_i) = Σ_{j<i}|B_j| + (|B_i|+1)/2`, is
/// always an integer multiple of `1/2`. Storing `2·pos` as an `i64` keeps
/// every position — and therefore every `L1`/footrule quantity built from
/// positions — exact. Use [`Pos::as_f64`] only at presentation boundaries.
///
/// `Pos` is also used for median score vectors during aggregation: the
/// *lower* (or upper) median of half-unit values is again a half-unit value,
/// which is exactly the integrality condition the paper's dynamic program
/// requires ("we make the additional assumption that `2f(i)` is integral",
/// Appendix A.6.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos(i64);

impl Pos {
    /// Zero position.
    pub const ZERO: Pos = Pos(0);

    /// Creates a position from a raw half-unit count (`2×` the rank value).
    #[inline]
    pub const fn from_half_units(h: i64) -> Self {
        Pos(h)
    }

    /// Creates a position from a whole rank value (e.g. a 1-based rank in a
    /// full ranking).
    #[inline]
    pub const fn from_rank(r: i64) -> Self {
        Pos(2 * r)
    }

    /// Raw half-unit count (`2×` the rank value).
    #[inline]
    pub const fn half_units(self) -> i64 {
        self.0
    }

    /// The position as a floating-point rank value (presentation only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 2.0
    }

    /// Absolute difference `|self − other|`, in half-units.
    ///
    /// This is the per-element contribution to the footrule/`L1` distance
    /// (scaled by 2 relative to the paper).
    #[inline]
    pub fn abs_diff(self, other: Pos) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Whether the position is a whole (non-fractional) rank.
    #[inline]
    pub const fn is_integral(self) -> bool {
        self.0 % 2 == 0
    }
}

impl Add for Pos {
    type Output = Pos;
    #[inline]
    fn add(self, rhs: Pos) -> Pos {
        Pos(self.0 + rhs.0)
    }
}

impl AddAssign for Pos {
    #[inline]
    fn add_assign(&mut self, rhs: Pos) {
        self.0 += rhs.0;
    }
}

impl Sub for Pos {
    type Output = Pos;
    #[inline]
    fn sub(self, rhs: Pos) -> Pos {
        Pos(self.0 - rhs.0)
    }
}

impl SubAssign for Pos {
    #[inline]
    fn sub_assign(&mut self, rhs: Pos) {
        self.0 -= rhs.0;
    }
}

impl Neg for Pos {
    type Output = Pos;
    #[inline]
    fn neg(self) -> Pos {
        Pos(-self.0)
    }
}

impl Sum for Pos {
    fn sum<I: Iterator<Item = Pos>>(iter: I) -> Pos {
        iter.fold(Pos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pos({})", self)
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 2 == 0 {
            write!(f, "{}", self.0 / 2)
        } else {
            let sign = if self.0 < 0 { "-" } else { "" };
            write!(f, "{sign}{}.5", self.0.unsigned_abs() / 2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_unit_round_trip() {
        let p = Pos::from_half_units(7);
        assert_eq!(p.half_units(), 7);
        assert_eq!(p.as_f64(), 3.5);
        assert!(!p.is_integral());
    }

    #[test]
    fn from_rank_is_integral() {
        let p = Pos::from_rank(4);
        assert_eq!(p.half_units(), 8);
        assert!(p.is_integral());
        assert_eq!(p.as_f64(), 4.0);
    }

    #[test]
    fn arithmetic() {
        let a = Pos::from_half_units(5);
        let b = Pos::from_half_units(2);
        assert_eq!((a + b).half_units(), 7);
        assert_eq!((a - b).half_units(), 3);
        assert_eq!((-a).half_units(), -5);
        assert_eq!(a.abs_diff(b), 3);
        assert_eq!(b.abs_diff(a), 3);
    }

    #[test]
    fn sum_and_default() {
        let s: Pos = [1, 2, 3].iter().map(|&h| Pos::from_half_units(h)).sum();
        assert_eq!(s.half_units(), 6);
        assert_eq!(Pos::default(), Pos::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pos::from_half_units(6).to_string(), "3");
        assert_eq!(Pos::from_half_units(7).to_string(), "3.5");
        assert_eq!(Pos::from_half_units(-3).to_string(), "-1.5");
        assert_eq!(Pos::from_half_units(-1).to_string(), "-0.5");
        assert_eq!(Pos::from_half_units(-4).to_string(), "-2");
        assert_eq!(format!("{:?}", Pos::from_half_units(7)), "Pos(3.5)");
    }

    #[test]
    fn ordering_matches_value_order() {
        assert!(Pos::from_half_units(3) < Pos::from_rank(2));
        assert!(Pos::from_rank(1) < Pos::from_half_units(3));
    }
}
