//! Shared algorithmic substrate: Fenwick tree and inversion counting.
//!
//! These power the `O(n log n)` metric computations in the metrics crate
//! (Kendall tau, the five pair statistics) while keeping a single, well
//! tested implementation.

/// A Fenwick (binary indexed) tree over `u64` counts, supporting point
/// updates and prefix sums in `O(log n)`.
///
/// ```
/// use bucketrank_core::alg::Fenwick;
///
/// let mut fw = Fenwick::new(8);
/// fw.add(3, 2);
/// fw.add(5, 1);
/// assert_eq!(fw.prefix_sum(3), 0);  // strictly before index 3
/// assert_eq!(fw.prefix_sum(4), 2);
/// assert_eq!(fw.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a tree over indices `0..n`.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Number of indexable slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn add(&mut self, i: usize, delta: u64) {
        assert!(i < self.len(), "index {i} out of range {}", self.len());
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counts at indices strictly below `i` (i.e. `0..i`).
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = i.min(self.len());
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of counts at indices `i..len()`.
    pub fn suffix_sum(&self, i: usize) -> u64 {
        self.total() - self.prefix_sum(i)
    }

    /// Total of all counts.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.len())
    }

    /// Resets all counts to zero, retaining capacity.
    pub fn clear(&mut self) {
        self.tree.fill(0);
    }
}

/// Counts inversions in a sequence of keys: pairs `i < j` with
/// `keys[i] > keys[j]`. Ties do **not** count as inversions.
///
/// `O(n log n)` via coordinate compression and a Fenwick tree. This is the
/// bubble-sort-distance characterization of the Kendall tau metric.
///
/// ```
/// use bucketrank_core::alg::count_inversions;
///
/// assert_eq!(count_inversions(&[1u32, 2, 3]), 0);
/// assert_eq!(count_inversions(&[3u32, 2, 1]), 3);
/// assert_eq!(count_inversions(&[2u32, 2, 1]), 2);
/// ```
pub fn count_inversions<K: Ord>(keys: &[K]) -> u64 {
    let n = keys.len();
    if n < 2 {
        return 0;
    }
    // Coordinate-compress to ranks 0..r.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let mut rank = vec![0usize; n];
    let mut r = 0usize;
    rank[idx[0]] = 0;
    for w in 1..n {
        if keys[idx[w]] != keys[idx[w - 1]] {
            r += 1;
        }
        rank[idx[w]] = r;
    }
    let mut fw = Fenwick::new(r + 1);
    let mut inversions = 0u64;
    for &r in &rank {
        // Elements already seen with strictly greater rank.
        inversions += fw.suffix_sum(r + 1);
        fw.add(r, 1);
    }
    inversions
}

/// Reference `O(n²)` inversion count, for differential testing.
pub fn count_inversions_naive<K: Ord>(keys: &[K]) -> u64 {
    let mut c = 0u64;
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            if keys[i] > keys[j] {
                c += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_basics() {
        let mut fw = Fenwick::new(10);
        assert_eq!(fw.len(), 10);
        assert!(!fw.is_empty());
        fw.add(0, 5);
        fw.add(9, 7);
        fw.add(4, 1);
        assert_eq!(fw.prefix_sum(0), 0);
        assert_eq!(fw.prefix_sum(1), 5);
        assert_eq!(fw.prefix_sum(5), 6);
        assert_eq!(fw.prefix_sum(10), 13);
        assert_eq!(fw.prefix_sum(99), 13); // clamped
        assert_eq!(fw.suffix_sum(5), 7);
        assert_eq!(fw.total(), 13);
        fw.clear();
        assert_eq!(fw.total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fenwick_add_out_of_range_panics() {
        let mut fw = Fenwick::new(3);
        fw.add(3, 1);
    }

    #[test]
    fn empty_fenwick() {
        let fw = Fenwick::new(0);
        assert!(fw.is_empty());
        assert_eq!(fw.total(), 0);
    }

    #[test]
    fn inversions_edge_cases() {
        assert_eq!(count_inversions::<u32>(&[]), 0);
        assert_eq!(count_inversions(&[7u32]), 0);
        assert_eq!(count_inversions(&[1u32, 1, 1]), 0);
    }

    #[test]
    fn inversions_match_naive_exhaustive() {
        // All sequences over {0,1,2} of length 5.
        let mut seq = [0u8; 5];
        loop {
            assert_eq!(
                count_inversions(&seq),
                count_inversions_naive(&seq),
                "seq = {seq:?}"
            );
            // Odometer.
            let mut i = 0;
            loop {
                if i == seq.len() {
                    return;
                }
                seq[i] += 1;
                if seq[i] < 3 {
                    break;
                }
                seq[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn inversions_of_reversed_identity() {
        let rev: Vec<u32> = (0..100).rev().collect();
        assert_eq!(count_inversions(&rev), 100 * 99 / 2);
    }
}
