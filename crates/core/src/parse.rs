//! Text serialization of bucket orders.
//!
//! The grammar is the one [`BucketOrder::display`] emits:
//!
//! ```text
//! ranking   := "[" bucket ("|" bucket)* "]" | "[" "]"
//! bucket    := item+
//! item      := bare id (numeric form) or label (labeled form)
//! ```
//!
//! e.g. `[2 | 0 1 | 3]` (ids) or `[thai | sushi pizza]` (labels, interned
//! through a [`Domain`]). Labels may not contain whitespace, `|`, `[`,
//! or `]`.

use crate::{BucketOrder, CoreError, Domain, ElementId};
use std::fmt;

/// Errors from parsing a ranking string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The string does not start with `[` and end with `]`.
    MissingBrackets,
    /// A bucket between `|` separators was empty.
    EmptyBucket {
        /// 0-based index of the offending bucket.
        index: usize,
    },
    /// An item could not be parsed as an element id (numeric form only).
    BadElementId {
        /// The offending token.
        token: String,
    },
    /// The parsed buckets do not form a valid bucket order (duplicate or
    /// out-of-range elements, or — in strict mode — missing elements).
    Invalid(CoreError),
    /// A label was not present in the domain (strict labeled parsing).
    UnknownLabel {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingBrackets => {
                write!(f, "ranking must be enclosed in [ … ]")
            }
            ParseError::EmptyBucket { index } => {
                write!(f, "bucket {index} is empty")
            }
            ParseError::BadElementId { token } => {
                write!(f, "cannot parse {token:?} as an element id")
            }
            ParseError::Invalid(e) => write!(f, "invalid bucket order: {e}"),
            ParseError::UnknownLabel { label } => {
                write!(f, "label {label:?} is not in the domain")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ParseError {
    fn from(e: CoreError) -> Self {
        ParseError::Invalid(e)
    }
}

fn split_buckets(s: &str) -> Result<Vec<Vec<&str>>, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or(ParseError::MissingBrackets)?;
    if inner.trim().is_empty() {
        return Ok(vec![]);
    }
    let mut out = Vec::new();
    for (index, chunk) in inner.split('|').enumerate() {
        let items: Vec<&str> = chunk.split_whitespace().collect();
        if items.is_empty() {
            return Err(ParseError::EmptyBucket { index });
        }
        out.push(items);
    }
    Ok(out)
}

/// Parses the numeric form over the domain `{0, …, n−1}`:
/// every element must appear exactly once.
///
/// ```
/// use bucketrank_core::parse::parse_ranking;
///
/// let s = parse_ranking("[2 | 0 1 | 3]", 4).unwrap();
/// assert_eq!(s.display(), "[2 | 0 1 | 3]");
/// ```
///
/// # Errors
/// See [`ParseError`].
pub fn parse_ranking(s: &str, n: usize) -> Result<BucketOrder, ParseError> {
    let buckets = split_buckets(s)?;
    let mut parsed: Vec<Vec<ElementId>> = Vec::with_capacity(buckets.len());
    for items in buckets {
        let mut bucket = Vec::with_capacity(items.len());
        for tok in items {
            let id: ElementId = tok.parse().map_err(|_| ParseError::BadElementId {
                token: tok.to_owned(),
            })?;
            bucket.push(id);
        }
        parsed.push(bucket);
    }
    Ok(BucketOrder::from_buckets(n, parsed)?)
}

/// Parses the labeled form, interning unseen labels into `domain`.
/// The resulting order covers only the mentioned labels **if** the domain
/// grew to exactly the mentioned set; otherwise every domain element must
/// appear (standard bucket-order validation).
///
/// ```
/// use bucketrank_core::parse::parse_labeled_ranking;
/// use bucketrank_core::Domain;
///
/// let mut d = Domain::new();
/// let s = parse_labeled_ranking("[thai | sushi pizza]", &mut d).unwrap();
/// assert_eq!(d.len(), 3);
/// assert_eq!(s.position(d.id("thai").unwrap()).as_f64(), 1.0);
/// ```
///
/// # Errors
/// See [`ParseError`].
pub fn parse_labeled_ranking(
    s: &str,
    domain: &mut Domain,
) -> Result<BucketOrder, ParseError> {
    let buckets = split_buckets(s)?;
    let parsed: Vec<Vec<ElementId>> = buckets
        .into_iter()
        .map(|items| items.into_iter().map(|l| domain.intern(l)).collect())
        .collect();
    Ok(BucketOrder::from_buckets(domain.len(), parsed)?)
}

/// Parses the labeled form against a **fixed** domain: unknown labels are
/// an error rather than interned.
///
/// # Errors
/// See [`ParseError`].
pub fn parse_labeled_ranking_strict(
    s: &str,
    domain: &Domain,
) -> Result<BucketOrder, ParseError> {
    let buckets = split_buckets(s)?;
    let mut parsed: Vec<Vec<ElementId>> = Vec::with_capacity(buckets.len());
    for items in buckets {
        let mut bucket = Vec::with_capacity(items.len());
        for l in items {
            let id = domain.id(l).ok_or_else(|| ParseError::UnknownLabel {
                label: l.to_owned(),
            })?;
            bucket.push(id);
        }
        parsed.push(bucket);
    }
    Ok(BucketOrder::from_buckets(domain.len(), parsed)?)
}

/// Renders a bucket order with labels from a domain; falls back to the
/// numeric id for unlabeled elements.
pub fn display_labeled(order: &BucketOrder, domain: &Domain) -> String {
    let mut s = String::from("[");
    for (bi, b) in order.buckets().iter().enumerate() {
        if bi > 0 {
            s.push_str(" | ");
        }
        for (i, &e) in b.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            match domain.label(e) {
                Some(l) => s.push_str(l),
                None => s.push_str(&e.to_string()),
            }
        }
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trip() {
        for text in ["[0]", "[1 | 0]", "[0 2 | 1 | 3 4]", "[]"] {
            let n = text.chars().filter(|c| c.is_ascii_digit()).count();
            let s = parse_ranking(text, n).unwrap();
            assert_eq!(s.display(), text.replace("  ", " "));
            // Round trip.
            let again = parse_ranking(&s.display(), n).unwrap();
            assert_eq!(again, s);
        }
    }

    #[test]
    fn numeric_errors() {
        assert_eq!(parse_ranking("0 | 1", 2), Err(ParseError::MissingBrackets));
        assert!(matches!(
            parse_ranking("[0 | | 1]", 2),
            Err(ParseError::EmptyBucket { index: 1 })
        ));
        assert!(matches!(
            parse_ranking("[0 x]", 2),
            Err(ParseError::BadElementId { .. })
        ));
        assert!(matches!(
            parse_ranking("[0 1]", 3),
            Err(ParseError::Invalid(CoreError::MissingElement { .. }))
        ));
        assert!(matches!(
            parse_ranking("[0 0 1]", 2),
            Err(ParseError::Invalid(CoreError::DuplicateElement { .. }))
        ));
        assert!(matches!(
            parse_ranking("[5]", 1),
            Err(ParseError::Invalid(CoreError::ElementOutOfRange { .. }))
        ));
    }

    #[test]
    fn whitespace_tolerance() {
        let s = parse_ranking("  [ 0   2 |1| 3 4 ]  ", 5).unwrap();
        assert_eq!(s.display(), "[0 2 | 1 | 3 4]");
    }

    #[test]
    fn labeled_interning_round_trip() {
        let mut d = Domain::new();
        let s = parse_labeled_ranking("[b | a c]", &mut d).unwrap();
        assert_eq!(d.len(), 3);
        let rendered = display_labeled(&s, &d);
        assert_eq!(rendered, "[b | a c]");
        let t = parse_labeled_ranking_strict(&rendered, &d).unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn strict_rejects_unknown_labels() {
        let d = Domain::from_labels(["a", "b"]);
        assert!(matches!(
            parse_labeled_ranking_strict("[a | z]", &d),
            Err(ParseError::UnknownLabel { .. })
        ));
        // Strict also requires covering the whole domain.
        assert!(matches!(
            parse_labeled_ranking_strict("[a]", &d),
            Err(ParseError::Invalid(CoreError::MissingElement { .. }))
        ));
    }

    #[test]
    fn display_labeled_falls_back_to_ids() {
        let d = Domain::from_labels(["x"]);
        let s = BucketOrder::from_buckets(2, vec![vec![1], vec![0]]).unwrap();
        assert_eq!(display_labeled(&s, &d), "[1 | x]");
    }

    #[test]
    fn error_display_and_source() {
        let e = ParseError::Invalid(CoreError::MissingElement { element: 2 });
        assert!(e.to_string().contains("invalid"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ParseError::MissingBrackets).is_none());
    }
}
