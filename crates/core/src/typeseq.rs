//! Types of partial rankings: the ordered sequence of bucket sizes.

use crate::{CoreError, Pos};
use std::fmt;

/// The *type* of a partial ranking: its sequence of bucket sizes
/// `|B_1|, |B_2|, …, |B_t|` (Appendix A.1 of the paper).
///
/// A full ranking on `n` elements has type `1, 1, …, 1` (`n` ones); a top-k
/// list has type `1, …, 1, n−k` (`k` ones followed by the bottom bucket).
///
/// # Example
///
/// ```
/// use bucketrank_core::TypeSeq;
///
/// let t = TypeSeq::new(vec![1, 1, 3]).unwrap();
/// assert_eq!(t.domain_size(), 5);
/// assert!(t.is_top_k().is_some());
/// assert_eq!(t.is_top_k(), Some(2));
/// assert!(!t.is_full());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TypeSeq {
    sizes: Vec<usize>,
}

impl TypeSeq {
    /// Creates a type from bucket sizes. Every size must be positive.
    pub fn new(sizes: Vec<usize>) -> Result<Self, CoreError> {
        if let Some(index) = sizes.iter().position(|&s| s == 0) {
            return Err(CoreError::EmptyBucket { index });
        }
        Ok(TypeSeq { sizes })
    }

    /// The type of a full ranking on `n` elements: `n` singleton buckets.
    pub fn full(n: usize) -> Self {
        TypeSeq { sizes: vec![1; n] }
    }

    /// The type of a top-k list on `n` elements: `k` singletons then a
    /// bottom bucket of size `n − k`. Requires `k < n` (for `k = n`, the
    /// top-k type *is* the full type, which this also returns).
    pub fn top_k(n: usize, k: usize) -> Result<Self, CoreError> {
        if k > n {
            return Err(CoreError::InvalidK { k, domain_size: n });
        }
        let mut sizes = vec![1; k];
        if n > k {
            sizes.push(n - k);
        }
        Ok(TypeSeq { sizes })
    }

    /// A single bucket containing the whole domain (everything tied).
    pub fn trivial(n: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Ok(TypeSeq { sizes: vec![] });
        }
        Ok(TypeSeq { sizes: vec![n] })
    }

    /// The bucket sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of elements (sum of bucket sizes).
    pub fn domain_size(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Whether this is the type of a full ranking (all singleton buckets).
    pub fn is_full(&self) -> bool {
        self.sizes.iter().all(|&s| s == 1)
    }

    /// If this is a top-k type (`k` singletons followed by at most one
    /// larger bottom bucket), returns `k`.
    ///
    /// A full type on `n` elements is reported as `Some(n)` — a full ranking
    /// is a top-`|D|` list, as the paper notes before Theorem 9.
    pub fn is_top_k(&self) -> Option<usize> {
        let n = self.sizes.len();
        let singleton_prefix = self.sizes.iter().take_while(|&&s| s == 1).count();
        match n - singleton_prefix {
            0 => Some(singleton_prefix),
            1 => Some(singleton_prefix),
            _ => None,
        }
    }

    /// The position `pos(B_i)` of each bucket, in half-units.
    pub fn positions(&self) -> Vec<Pos> {
        let mut out = Vec::with_capacity(self.sizes.len());
        let mut before = 0usize;
        for &s in &self.sizes {
            // pos = before + (s + 1)/2  =>  half-units = 2*before + s + 1
            out.push(Pos::from_half_units((2 * before + s + 1) as i64));
            before += s;
        }
        out
    }

    /// Enumerates every type of a domain of size `n` (i.e., every
    /// composition of `n`). There are `2^(n−1)` of them. Intended for
    /// exhaustive verification on small `n`.
    pub fn all_types(n: usize) -> Vec<TypeSeq> {
        if n == 0 {
            return vec![TypeSeq { sizes: vec![] }];
        }
        let mut out = Vec::with_capacity(1 << (n - 1));
        // Each of the n-1 gaps is either a bucket boundary or not.
        for mask in 0u64..(1u64 << (n - 1)) {
            let mut sizes = Vec::new();
            let mut run = 1usize;
            for gap in 0..n - 1 {
                if mask >> gap & 1 == 1 {
                    sizes.push(run);
                    run = 1;
                } else {
                    run += 1;
                }
            }
            sizes.push(run);
            out.push(TypeSeq { sizes });
        }
        out
    }

    /// Whether this type is a *coarsening* of `other`: every bucket of
    /// `self` is a union of consecutive buckets of `other` (equivalently,
    /// `self`'s prefix sums are a subset of `other`'s). Any bucket order
    /// of type `other` then refines some bucket order of type `self`.
    pub fn is_coarsening_of(&self, other: &TypeSeq) -> bool {
        if self.domain_size() != other.domain_size() {
            return false;
        }
        let mut fine = other.sizes().iter();
        for &coarse in &self.sizes {
            let mut acc = 0usize;
            while acc < coarse {
                match fine.next() {
                    Some(&s) => acc += s,
                    None => return false,
                }
            }
            if acc != coarse {
                return false;
            }
        }
        true
    }

    /// Enumerates every coarsening of this type (all ways of merging runs
    /// of consecutive buckets): `2^(t−1)` results for `t` buckets.
    /// Intended for exhaustive verification on small types.
    pub fn coarsenings(&self) -> Vec<TypeSeq> {
        let t = self.sizes.len();
        if t == 0 {
            return vec![TypeSeq { sizes: vec![] }];
        }
        let mut out = Vec::with_capacity(1 << (t - 1));
        for mask in 0u64..(1u64 << (t - 1)) {
            let mut sizes = Vec::new();
            let mut run = self.sizes[0];
            for gap in 0..t - 1 {
                if mask >> gap & 1 == 1 {
                    sizes.push(run);
                    run = self.sizes[gap + 1];
                } else {
                    run += self.sizes[gap + 1];
                }
            }
            sizes.push(run);
            out.push(TypeSeq { sizes });
        }
        out
    }

    /// The number of bucket orders of this type: the multinomial
    /// coefficient `n! / (|B_1|! · … · |B_t|!)`.
    ///
    /// Returns `None` on overflow.
    pub fn count_bucket_orders(&self) -> Option<u128> {
        let mut result: u128 = 1;
        let mut placed = 0usize;
        for &s in &self.sizes {
            // multiply by C(placed + s, s)
            for i in 1..=s {
                result = result.checked_mul((placed + i) as u128)?;
                result /= i as u128; // exact: running product of binomials
            }
            placed += s;
        }
        Some(result)
    }
}

/// The number of bucket orders on `n` elements: the ordered Bell (Fubini)
/// number. Returns `None` on overflow (`n ≤ 25` is safe in `u128`).
///
/// ```
/// use bucketrank_core::TypeSeq;
/// use bucketrank_core::fubini;
///
/// assert_eq!(fubini(3), Some(13));
/// let total: u128 = TypeSeq::all_types(3)
///     .iter()
///     .map(|t| t.count_bucket_orders().unwrap())
///     .sum();
/// assert_eq!(total, 13);
/// ```
pub fn fubini(n: usize) -> Option<u128> {
    // a(n) = sum_{k=1..n} C(n, k) * a(n-k), a(0) = 1
    let mut a = vec![0u128; n + 1];
    a[0] = 1;
    for m in 1..=n {
        let mut binom: u128 = 1; // C(m, k)
        let mut total: u128 = 0;
        for k in 1..=m {
            binom = binom.checked_mul((m - k + 1) as u128)? / k as u128;
            total = total.checked_add(binom.checked_mul(a[m - k])?)?;
        }
        a[m] = total;
    }
    Some(a[n])
}

impl fmt::Debug for TypeSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeSeq{:?}", self.sizes)
    }
}

impl fmt::Display for TypeSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.sizes {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_sizes() {
        assert_eq!(
            TypeSeq::new(vec![1, 0, 2]),
            Err(CoreError::EmptyBucket { index: 1 })
        );
    }

    #[test]
    fn full_and_top_k_classification() {
        assert!(TypeSeq::full(4).is_full());
        assert_eq!(TypeSeq::full(4).is_top_k(), Some(4));
        let t = TypeSeq::top_k(6, 2).unwrap();
        assert_eq!(t.sizes(), &[1, 1, 4]);
        assert_eq!(t.is_top_k(), Some(2));
        assert!(TypeSeq::new(vec![2, 1, 1]).unwrap().is_top_k().is_none());
        assert!(TypeSeq::new(vec![1, 2, 3]).unwrap().is_top_k().is_none());
        // k = n degenerates to the full type.
        assert_eq!(TypeSeq::top_k(3, 3).unwrap(), TypeSeq::full(3));
        assert!(TypeSeq::top_k(3, 4).is_err());
    }

    #[test]
    fn trivial_type() {
        assert_eq!(TypeSeq::trivial(5).unwrap().sizes(), &[5]);
        assert_eq!(TypeSeq::trivial(0).unwrap().num_buckets(), 0);
    }

    #[test]
    fn positions_match_paper_definition() {
        // Buckets of sizes 2, 1, 3 over n=6:
        // pos(B1) = (2+1)/2 = 1.5; pos(B2) = 2 + 1 = 3; pos(B3) = 3 + 2 = 5
        let t = TypeSeq::new(vec![2, 1, 3]).unwrap();
        let p = t.positions();
        assert_eq!(p[0], Pos::from_half_units(3));
        assert_eq!(p[1], Pos::from_half_units(6));
        assert_eq!(p[2], Pos::from_half_units(10));
    }

    #[test]
    fn full_ranking_positions_are_ranks() {
        let t = TypeSeq::full(4);
        let p = t.positions();
        for (i, &pi) in p.iter().enumerate() {
            assert_eq!(pi, Pos::from_rank(i as i64 + 1));
        }
    }

    #[test]
    fn all_types_counts_are_powers_of_two() {
        assert_eq!(TypeSeq::all_types(1).len(), 1);
        assert_eq!(TypeSeq::all_types(4).len(), 8);
        for t in TypeSeq::all_types(5) {
            assert_eq!(t.domain_size(), 5);
        }
    }

    #[test]
    fn fubini_small_values() {
        // OEIS A000670
        let expect = [1u128, 1, 3, 13, 75, 541, 4683, 47293];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(fubini(n), Some(e), "n = {n}");
        }
    }

    #[test]
    fn coarsening_relation() {
        let fine = TypeSeq::new(vec![1, 2, 1, 3]).unwrap();
        assert!(TypeSeq::new(vec![3, 4]).unwrap().is_coarsening_of(&fine));
        assert!(TypeSeq::new(vec![7]).unwrap().is_coarsening_of(&fine));
        assert!(fine.is_coarsening_of(&fine));
        // Boundary inside a fine bucket: not a coarsening.
        assert!(!TypeSeq::new(vec![2, 5]).unwrap().is_coarsening_of(&fine));
        // Different domain.
        assert!(!TypeSeq::new(vec![6]).unwrap().is_coarsening_of(&fine));
        // Full type is coarsened by every type of the same n.
        for t in TypeSeq::all_types(5) {
            assert!(t.is_coarsening_of(&TypeSeq::full(5)));
        }
    }

    #[test]
    fn coarsenings_enumeration() {
        let t = TypeSeq::new(vec![1, 2, 1]).unwrap();
        let cs = t.coarsenings();
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert!(c.is_coarsening_of(&t), "{c}");
            assert_eq!(c.domain_size(), 4);
        }
        assert!(cs.contains(&TypeSeq::new(vec![4]).unwrap()));
        assert!(cs.contains(&t));
        // Consistency: coarsenings of the full type are all types.
        let all = TypeSeq::full(4).coarsenings();
        assert_eq!(all.len(), 8);
        // Empty type.
        assert_eq!(TypeSeq::trivial(0).unwrap().coarsenings().len(), 1);
    }

    #[test]
    fn count_bucket_orders_multinomial() {
        // type (2,1): 3!/2! = 3 orders
        assert_eq!(
            TypeSeq::new(vec![2, 1]).unwrap().count_bucket_orders(),
            Some(3)
        );
        // full type: n! orders
        assert_eq!(TypeSeq::full(5).count_bucket_orders(), Some(120));
        // sum over all types = Fubini
        for n in 0..=6 {
            let total: u128 = TypeSeq::all_types(n)
                .iter()
                .map(|t| t.count_bucket_orders().unwrap())
                .sum();
            assert_eq!(Some(total), fubini(n), "n = {n}");
        }
    }
}
