//! Lattice operations on bucket orders.
//!
//! Under the refinement relation `⪯` of Section 2, the bucket orders on a
//! fixed domain form a partial order whose structure these operations
//! expose:
//!
//! * [`common_refinement`] — the **coarsest common refinement** (meet-like
//!   operation): the bucket order refining both inputs with the fewest
//!   buckets. It exists iff the inputs never order a pair oppositely, and
//!   equals `τ∗σ` (= `σ∗τ`) in that case.
//! * [`finest_common_coarsening`] — the **finest common coarsening**
//!   (join): the bucket order with the most buckets that both inputs
//!   refine. Always exists (the trivial one-bucket order coarsens
//!   everything); computed from the common prefix sets in `O(n)`.
//! * [`coarsen_adjacent`] — merge runs of adjacent buckets (the generic
//!   coarsening step; every coarsening of `σ` arises this way).

use crate::refine::star;
use crate::{BucketOrder, CoreError, ElementId};

/// The coarsest common refinement of `a` and `b`, or `None` when the two
/// orders conflict (some pair is ordered oppositely — then no common
/// refinement exists at all).
///
/// When it exists it equals both `a∗b` and `b∗a`, and every common
/// refinement of `a` and `b` refines it.
///
/// # Errors
/// [`CoreError::DomainMismatch`] on differing domains.
pub fn common_refinement(
    a: &BucketOrder,
    b: &BucketOrder,
) -> Result<Option<BucketOrder>, CoreError> {
    if a.len() != b.len() {
        return Err(CoreError::DomainMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    // A conflict is a pair ordered oppositely; detect in O(n log n) by
    // checking that sorting by (a-bucket, b-bucket) yields non-decreasing
    // b-buckets across a-bucket boundaries... equivalently: a∗b must also
    // refine a (star always refines its right operand, so check the left).
    let candidate = star(a, b)?;
    if crate::refine::is_refinement(&candidate, a)? {
        Ok(Some(candidate))
    } else {
        Ok(None)
    }
}

/// The finest common coarsening (join) of `a` and `b`: its bucket
/// boundaries are exactly the prefix sizes at which `a`'s and `b`'s
/// element prefixes coincide as sets. `O(n)`.
///
/// # Errors
/// [`CoreError::DomainMismatch`] on differing domains.
pub fn finest_common_coarsening(
    a: &BucketOrder,
    b: &BucketOrder,
) -> Result<BucketOrder, CoreError> {
    if a.len() != b.len() {
        return Err(CoreError::DomainMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let n = a.len();
    if n == 0 {
        return Ok(BucketOrder::trivial(0));
    }
    // Walk a's elements in rank order; prefix of size p is a common
    // prefix iff it is a union of a-buckets, a union of b-buckets, and
    // the max b-rank inside equals p (so the same elements fill b's
    // prefix). Track the running max of positional b-ranks.
    // b_rank[e] = number of elements strictly ahead-or-tied... we need a
    // *set* comparison: prefix sets coincide iff max over a-prefix of
    // (index of e in some fixed b linearization respecting buckets) ...
    // Use: end of the b-bucket of e (cumulative size through e's bucket);
    // the a-prefix of size p equals a b-prefix iff that running max == p
    // and p is an a-bucket boundary.
    let mut b_bucket_end = vec![0usize; b.num_buckets()];
    let mut acc = 0usize;
    for (i, bucket) in b.buckets().iter().enumerate() {
        acc += bucket.len();
        b_bucket_end[i] = acc;
    }
    let mut boundaries = Vec::new();
    let mut running_max = 0usize;
    let mut count = 0usize;
    for bucket in a.buckets() {
        for &e in bucket {
            count += 1;
            running_max = running_max.max(b_bucket_end[b.bucket_index(e)]);
        }
        if running_max == count {
            boundaries.push(count);
        }
    }
    debug_assert_eq!(boundaries.last(), Some(&n));
    // Buckets of the join: slices of a's rank order between boundaries.
    let order: Vec<ElementId> = a.iter_ranked().map(|(_, e)| e).collect();
    let mut buckets = Vec::with_capacity(boundaries.len());
    let mut start = 0usize;
    for &end in &boundaries {
        buckets.push(order[start..end].to_vec());
        start = end;
    }
    BucketOrder::from_buckets(n, buckets)
}

/// Coarsens `sigma` by merging runs of adjacent buckets: `runs[i]` is how
/// many consecutive buckets the `i`-th output bucket absorbs.
///
/// # Errors
/// [`CoreError::TypeSizeMismatch`] if the runs don't cover the buckets
/// exactly; [`CoreError::EmptyBucket`] on a zero run.
pub fn coarsen_adjacent(sigma: &BucketOrder, runs: &[usize]) -> Result<BucketOrder, CoreError> {
    if let Some(index) = runs.iter().position(|&r| r == 0) {
        return Err(CoreError::EmptyBucket { index });
    }
    let total: usize = runs.iter().sum();
    if total != sigma.num_buckets() {
        return Err(CoreError::TypeSizeMismatch {
            type_total: total,
            domain_size: sigma.num_buckets(),
        });
    }
    let mut buckets = Vec::with_capacity(runs.len());
    let mut cursor = 0usize;
    for &r in runs {
        let mut merged = Vec::new();
        for b in &sigma.buckets()[cursor..cursor + r] {
            merged.extend_from_slice(b);
        }
        cursor += r;
        buckets.push(merged);
    }
    BucketOrder::from_buckets(sigma.len(), buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistent::all_bucket_orders;
    use crate::refine::is_refinement;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn common_refinement_examples() {
        let a = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let b = bo(4, vec![vec![0, 1, 2], vec![3]]);
        let r = common_refinement(&a, &b).unwrap().unwrap();
        assert_eq!(r.display(), "[0 1 | 2 | 3]");
        // Conflicting pair: 0 vs 1 ordered oppositely.
        let c = bo(4, vec![vec![0], vec![1], vec![2, 3]]);
        let d = bo(4, vec![vec![1], vec![0], vec![2, 3]]);
        assert_eq!(common_refinement(&c, &d).unwrap(), None);
    }

    #[test]
    fn common_refinement_laws_exhaustive() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let r = common_refinement(a, b).unwrap();
                let r2 = common_refinement(b, a).unwrap();
                assert_eq!(r.is_some(), r2.is_some());
                if let (Some(r), Some(r2)) = (r, r2) {
                    assert_eq!(r, r2, "meet must be symmetric: {a:?} {b:?}");
                    assert!(is_refinement(&r, a).unwrap());
                    assert!(is_refinement(&r, b).unwrap());
                    // Coarsest: every common refinement refines r.
                    for c in &orders {
                        if is_refinement(c, a).unwrap() && is_refinement(c, b).unwrap() {
                            assert!(is_refinement(c, &r).unwrap());
                        }
                    }
                } else {
                    // No common refinement at all.
                    for c in &orders {
                        assert!(
                            !(is_refinement(c, a).unwrap() && is_refinement(c, b).unwrap()),
                            "{c:?} refines both {a:?} and {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn join_examples() {
        let a = bo(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let b = bo(4, vec![vec![1], vec![0], vec![2, 3]]);
        // Common prefixes: {0,1} (after 2 in both) and the whole set.
        let j = finest_common_coarsening(&a, &b).unwrap();
        assert_eq!(j.display(), "[0 1 | 2 3]");
    }

    #[test]
    fn join_laws_exhaustive() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let j = finest_common_coarsening(a, b).unwrap();
                assert_eq!(j, finest_common_coarsening(b, a).unwrap());
                assert!(is_refinement(a, &j).unwrap());
                assert!(is_refinement(b, &j).unwrap());
                // Finest: j refines every common coarsening.
                for c in &orders {
                    if is_refinement(a, c).unwrap() && is_refinement(b, c).unwrap() {
                        assert!(is_refinement(&j, c).unwrap(), "{a:?} {b:?} {c:?}");
                    }
                }
                // Idempotence / identity laws.
                assert_eq!(&finest_common_coarsening(a, a).unwrap(), a);
            }
        }
    }

    #[test]
    fn join_with_reverse_is_trivial() {
        let a = BucketOrder::identity(5);
        let j = finest_common_coarsening(&a, &a.reverse()).unwrap();
        assert_eq!(j, BucketOrder::trivial(5));
    }

    #[test]
    fn coarsen_adjacent_merges_runs() {
        let s = bo(5, vec![vec![0], vec![1, 2], vec![3], vec![4]]);
        let c = coarsen_adjacent(&s, &[2, 2]).unwrap();
        assert_eq!(c.display(), "[0 1 2 | 3 4]");
        assert!(is_refinement(&s, &c).unwrap());
        assert!(coarsen_adjacent(&s, &[2, 1]).is_err());
        assert!(coarsen_adjacent(&s, &[2, 0, 2]).is_err());
        // Identity coarsening.
        assert_eq!(coarsen_adjacent(&s, &[1, 1, 1, 1]).unwrap(), s);
    }

    #[test]
    fn domain_mismatch_errors() {
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(common_refinement(&a, &b).is_err());
        assert!(finest_common_coarsening(&a, &b).is_err());
    }

    #[test]
    fn empty_domain() {
        let e = BucketOrder::trivial(0);
        assert_eq!(
            finest_common_coarsening(&e, &e).unwrap(),
            BucketOrder::trivial(0)
        );
        assert_eq!(common_refinement(&e, &e).unwrap(), Some(BucketOrder::trivial(0)));
    }
}
