//! Error type for constructing and manipulating bucket orders.

use std::fmt;

/// Errors produced while constructing or validating ranking objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An element id is outside the domain `0..n`.
    ElementOutOfRange {
        /// The offending element id.
        element: u32,
        /// The domain size.
        domain_size: usize,
    },
    /// An element appears in more than one bucket.
    DuplicateElement {
        /// The offending element id.
        element: u32,
    },
    /// Some domain element appears in no bucket.
    MissingElement {
        /// The first element found to be missing.
        element: u32,
    },
    /// A bucket was empty; bucket orders require nonempty buckets.
    EmptyBucket {
        /// Index of the empty bucket.
        index: usize,
    },
    /// A type sequence does not sum to the domain size.
    TypeSizeMismatch {
        /// Sum of the type's bucket sizes.
        type_total: usize,
        /// The domain size.
        domain_size: usize,
    },
    /// Two rankings were expected to share a domain but do not.
    DomainMismatch {
        /// Domain size of the left ranking.
        left: usize,
        /// Domain size of the right ranking.
        right: usize,
    },
    /// A `k` larger than the domain was requested for a top-k construction.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// The domain size.
        domain_size: usize,
    },
    /// A label outside a frozen domain was presented where the domain
    /// may no longer grow (streaming intake over a finalized profile).
    UnknownLabel {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::ElementOutOfRange {
                element,
                domain_size,
            } => write!(
                f,
                "element {element} is out of range for a domain of size {domain_size}"
            ),
            CoreError::DuplicateElement { element } => {
                write!(f, "element {element} appears in more than one bucket")
            }
            CoreError::MissingElement { element } => {
                write!(f, "element {element} is not assigned to any bucket")
            }
            CoreError::EmptyBucket { index } => {
                write!(f, "bucket {index} is empty; buckets must be nonempty")
            }
            CoreError::TypeSizeMismatch {
                type_total,
                domain_size,
            } => write!(
                f,
                "type sums to {type_total} but the domain has {domain_size} elements"
            ),
            CoreError::DomainMismatch { left, right } => write!(
                f,
                "rankings have different domains (sizes {left} and {right})"
            ),
            CoreError::InvalidK { k, domain_size } => {
                write!(f, "k = {k} exceeds the domain size {domain_size}")
            }
            CoreError::UnknownLabel { ref label } => {
                write!(f, "label {label:?} is not in the frozen domain")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ElementOutOfRange {
            element: 9,
            domain_size: 4,
        };
        assert!(e.to_string().contains("element 9"));
        assert!(e.to_string().contains("size 4"));

        let e = CoreError::DomainMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = CoreError::UnknownLabel {
            label: "sushi".to_string(),
        };
        assert!(e.to_string().contains("sushi"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::EmptyBucket { index: 2 });
        assert!(e.to_string().contains("bucket 2"));
    }
}
