//! The Mallows noise model, with optional tie coarsening.
//!
//! The Mallows model `M(θ, π₀)` puts probability `∝ exp(−θ·K(π, π₀))` on
//! each permutation `π`, concentrating around the reference ranking `π₀`
//! as the dispersion `θ` grows. It is the standard "noisy voter" workload
//! for rank-aggregation experiments: each input is an independent Mallows
//! sample, and a good aggregator should recover (something close to) the
//! hidden reference.
//!
//! Sampling uses the *repeated insertion* construction (exact, `O(n²)`):
//! the element of reference-rank `i` (0-based) is inserted at displacement
//! `d` from the front of the prefix with probability
//! `∝ exp(−θ·(i − d))` — each unit of displacement from its reference
//! position costs one inversion.
//!
//! [`MallowsWithTies`] composes a Mallows sample with quantile bucketing,
//! producing noisy *partial* rankings of a prescribed type — the workload
//! for the aggregation-quality experiments on rankings with ties.

use bucketrank_core::{BucketOrder, ElementId, TypeSeq};
use bucketrank_testkit::rng::Rng;

/// A Mallows distribution over full rankings of `n` elements.
#[derive(Debug, Clone)]
pub struct Mallows {
    reference: Vec<ElementId>,
    theta: f64,
}

impl Mallows {
    /// A Mallows model centered on the identity ranking.
    ///
    /// # Panics
    /// Panics if `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        Self::with_reference((0..n as ElementId).collect(), theta)
    }

    /// A Mallows model centered on an arbitrary reference permutation
    /// (`reference[r]` = element at rank `r + 1`).
    ///
    /// # Panics
    /// Panics if `theta` is negative or not finite.
    pub fn with_reference(reference: Vec<ElementId>, theta: f64) -> Self {
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        Mallows { reference, theta }
    }

    /// The reference ranking.
    pub fn reference(&self) -> BucketOrder {
        BucketOrder::from_permutation(&self.reference).expect("reference is a permutation")
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.reference.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.reference.is_empty()
    }

    /// Draws one full ranking.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BucketOrder {
        let n = self.reference.len();
        let mut perm: Vec<ElementId> = Vec::with_capacity(n);
        let q = (-self.theta).exp();
        for (i, &e) in self.reference.iter().enumerate() {
            // Insert e at displacement d ∈ {0..=i} *from the back* of the
            // current prefix; displacement d costs d inversions, weight qᵈ.
            let d = sample_truncated_geometric(rng, q, i);
            perm.insert(i - d, e);
        }
        BucketOrder::from_permutation(&perm).expect("insertion preserves the permutation")
    }

    /// Draws `m` independent rankings.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R, m: usize) -> Vec<BucketOrder> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

/// Samples `d ∈ {0..=max}` with `P(d) ∝ q^d` (uniform when `q = 1`).
fn sample_truncated_geometric<R: Rng + ?Sized>(rng: &mut R, q: f64, max: usize) -> usize {
    if max == 0 {
        return 0;
    }
    if (q - 1.0).abs() < 1e-12 {
        return rng.gen_range(0..=max);
    }
    // Total weight (1 − q^{max+1}) / (1 − q).
    let total = (1.0 - q.powi(max as i32 + 1)) / (1.0 - q);
    let mut x = rng.gen_range(0.0..total);
    let mut w = 1.0;
    for d in 0..=max {
        if x < w {
            return d;
        }
        x -= w;
        w *= q;
    }
    max
}

/// Mallows samples coarsened into partial rankings of a fixed type by
/// quantile bucketing: the sampled full ranking is cut into buckets of
/// the prescribed sizes.
#[derive(Debug, Clone)]
pub struct MallowsWithTies {
    inner: Mallows,
    alpha: TypeSeq,
}

impl MallowsWithTies {
    /// Composes a Mallows model with a bucketing type.
    ///
    /// # Panics
    /// Panics if `alpha` does not cover the model's domain.
    pub fn new(inner: Mallows, alpha: TypeSeq) -> Self {
        assert_eq!(
            alpha.domain_size(),
            inner.len(),
            "type must cover the domain"
        );
        MallowsWithTies { inner, alpha }
    }

    /// The reference ranking coarsened to the same type (useful as the
    /// ground truth for recovery experiments).
    pub fn reference(&self) -> BucketOrder {
        cut_into_type(&self.inner.reference, &self.alpha)
    }

    /// Draws one noisy partial ranking.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BucketOrder {
        let full = self.inner.sample(rng);
        let perm = full.as_permutation().expect("Mallows samples are full");
        cut_into_type(&perm, &self.alpha)
    }

    /// Draws `m` independent noisy partial rankings.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R, m: usize) -> Vec<BucketOrder> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

fn cut_into_type(perm: &[ElementId], alpha: &TypeSeq) -> BucketOrder {
    let mut buckets = Vec::with_capacity(alpha.num_buckets());
    let mut cursor = 0usize;
    for &s in alpha.sizes() {
        buckets.push(perm[cursor..cursor + s].to_vec());
        cursor += s;
    }
    BucketOrder::from_buckets(perm.len(), buckets).expect("type partitions the permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_metrics::full::kendall;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;

    #[test]
    fn zero_theta_is_uniformish() {
        // θ = 0: all permutations equally likely; the average Kendall
        // distance to the identity over samples should be close to the
        // mean n(n−1)/4.
        let m = Mallows::new(6, 0.0);
        let mut rng = Pcg32::seed_from_u64(42);
        let id = m.reference();
        let mut total = 0u64;
        let trials = 400;
        for _ in 0..trials {
            total += kendall(&m.sample(&mut rng), &id).unwrap();
        }
        let avg = total as f64 / trials as f64;
        let expect = 6.0 * 5.0 / 4.0;
        assert!((avg - expect).abs() < 0.8, "avg = {avg}, expect ≈ {expect}");
    }

    #[test]
    fn large_theta_concentrates_on_reference() {
        let m = Mallows::new(8, 6.0);
        let mut rng = Pcg32::seed_from_u64(1);
        let id = m.reference();
        for _ in 0..50 {
            let s = m.sample(&mut rng);
            assert!(kendall(&s, &id).unwrap() <= 1);
        }
    }

    #[test]
    fn monotone_in_theta() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut avg_for = |theta: f64| {
            let m = Mallows::new(7, theta);
            let id = m.reference();
            let mut t = 0u64;
            for _ in 0..300 {
                t += kendall(&m.sample(&mut rng), &id).unwrap();
            }
            t as f64 / 300.0
        };
        let a0 = avg_for(0.0);
        let a1 = avg_for(0.7);
        let a2 = avg_for(2.0);
        assert!(a0 > a1 && a1 > a2, "{a0} > {a1} > {a2} violated");
    }

    #[test]
    fn custom_reference_respected() {
        let m = Mallows::with_reference(vec![3, 1, 0, 2], 10.0);
        let mut rng = Pcg32::seed_from_u64(9);
        let s = m.sample(&mut rng);
        assert_eq!(s.as_permutation(), Some(vec![3, 1, 0, 2]));
        assert!(!m.is_empty());
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn ties_have_requested_type() {
        let alpha = TypeSeq::new(vec![2, 2, 4]).unwrap();
        let mt = MallowsWithTies::new(Mallows::new(8, 1.0), alpha.clone());
        let mut rng = Pcg32::seed_from_u64(5);
        for s in mt.sample_profile(&mut rng, 10) {
            assert_eq!(s.type_seq(), alpha);
        }
        assert_eq!(mt.reference().type_seq(), alpha);
    }

    #[test]
    fn high_theta_tied_samples_match_reference() {
        let alpha = TypeSeq::top_k(6, 2).unwrap();
        let mt = MallowsWithTies::new(Mallows::new(6, 8.0), alpha);
        let mut rng = Pcg32::seed_from_u64(11);
        let reference = mt.reference();
        let mut exact = 0;
        for _ in 0..30 {
            if mt.sample(&mut rng) == reference {
                exact += 1;
            }
        }
        assert!(exact >= 25, "only {exact}/30 samples matched");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_rejected() {
        let _ = Mallows::new(3, -1.0);
    }

    #[test]
    fn truncated_geometric_bounds() {
        let mut rng = Pcg32::seed_from_u64(3);
        for max in [0usize, 1, 5] {
            for q in [0.1, 0.5, 1.0] {
                for _ in 0..50 {
                    assert!(sample_truncated_geometric(&mut rng, q, max) <= max);
                }
            }
        }
    }
}
