//! Synthetic catalogs matching the paper's motivating applications:
//! restaurant search (dine.com) and flight search (travelocity.com).
//!
//! Both generators produce [`Table`]s whose attributes have few distinct
//! values (cuisine, star rating, stops) or get coarsened by the query
//! (distance, price bands), so every per-attribute ranking is a genuine
//! partial ranking with large buckets — the regime the paper targets.

use bucketrank_access::db::{
    AttrKind, AttrValue, Binning, Direction, OrderSpec, Table, TableBuilder,
};
use bucketrank_access::AccessError;
use bucketrank_testkit::rng::Rng;

/// Cuisines used by [`restaurants`].
pub const CUISINES: [&str; 6] = ["thai", "sushi", "pizza", "mexican", "indian", "french"];

/// Airlines used by [`flights`].
pub const AIRLINES: [&str; 4] = ["blue", "red", "gray", "green"];

/// A synthetic restaurant catalog with `n` rows and columns
/// `cuisine: Text`, `distance: Float` (miles, 0–30), `price: Int`
/// (1–4 dollar signs), `stars: Int` (1–5).
pub fn restaurants<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Table {
    let mut t = TableBuilder::new();
    t.column("cuisine", AttrKind::Text);
    t.column("distance", AttrKind::Float);
    t.column("price", AttrKind::Int);
    t.column("stars", AttrKind::Int);
    for _ in 0..n {
        let cuisine = CUISINES[rng.gen_range(0..CUISINES.len())];
        let distance = rng.gen_range(0.0..30.0f64);
        let price = rng.gen_range(1..=4i64);
        // Stars correlate loosely with price: pricier places skew higher.
        let stars = (rng.gen_range(1..=3i64) + (price + 1) / 2).min(5);
        t.row(vec![
            AttrValue::text(cuisine),
            AttrValue::Float(distance),
            AttrValue::Int(price),
            AttrValue::Int(stars),
        ]);
    }
    t.finish().expect("generated rows match the schema")
}

/// A typical restaurant preference query: favorite cuisines, distance
/// coarsened to 10-mile bands, cheap first, best-rated first.
pub fn restaurant_query_specs() -> Vec<OrderSpec> {
    vec![
        OrderSpec::text_preference("cuisine", ["thai", "sushi"]),
        OrderSpec::numeric("distance", Direction::Asc)
            .with_binning(Binning::Width(10.0))
            .expect("distance ranks numerically"),
        OrderSpec::numeric("price", Direction::Asc),
        OrderSpec::numeric("stars", Direction::Desc),
    ]
}

/// A synthetic flight catalog with `n` rows and columns `price: Int`
/// (dollars, 120–900), `stops: Int` (0–3, skewed low), `duration: Int`
/// (minutes), `airline: Text`.
pub fn flights<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Table {
    let mut t = TableBuilder::new();
    t.column("price", AttrKind::Int);
    t.column("stops", AttrKind::Int);
    t.column("duration", AttrKind::Int);
    t.column("airline", AttrKind::Text);
    for _ in 0..n {
        // Most itineraries have 0–1 stops; 2–3 are rarer.
        let stops = match rng.gen_range(0..10) {
            0..=4 => 0i64,
            5..=7 => 1,
            8 => 2,
            _ => 3,
        };
        let base = rng.gen_range(120..=600i64);
        let price = base + stops * rng.gen_range(0..=60);
        let duration = rng.gen_range(90..=300i64) + 100 * stops;
        let airline = AIRLINES[rng.gen_range(0..AIRLINES.len())];
        t.row(vec![
            AttrValue::Int(price),
            AttrValue::Int(stops),
            AttrValue::Int(duration),
            AttrValue::text(airline),
        ]);
    }
    t.finish().expect("generated rows match the schema")
}

/// A typical flight preference query: price in $100 bands, fewest stops,
/// shortest duration in hour bands, preferred airline.
pub fn flight_query_specs() -> Vec<OrderSpec> {
    vec![
        OrderSpec::numeric("price", Direction::Asc)
            .with_binning(Binning::Width(100.0))
            .expect("price ranks numerically"),
        OrderSpec::numeric("stops", Direction::Asc),
        OrderSpec::numeric("duration", Direction::Asc)
            .with_binning(Binning::Width(60.0))
            .expect("duration ranks numerically"),
        OrderSpec::text_preference("airline", ["blue", "red"]),
    ]
}

/// Reads an `Int` cell from a catalog, with typed failures instead of
/// panics — validation sweeps over generated tables (and the tests
/// here) use this rather than pattern-matching [`AttrValue`] by hand.
///
/// # Errors
/// [`AccessError::UnknownAttribute`] for a bad name or out-of-range
/// row; [`AccessError::TypeMismatch`] when the cell is not an `Int`.
pub fn int_value(table: &Table, row: usize, attribute: &str) -> Result<i64, AccessError> {
    match table.value(row, attribute) {
        Some(&AttrValue::Int(v)) => Ok(v),
        Some(_) => Err(AccessError::TypeMismatch {
            attribute: attribute.to_owned(),
            expected: "Int",
        }),
        None => Err(AccessError::UnknownAttribute {
            name: attribute.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_access::query::PreferenceQuery;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;

    #[test]
    fn restaurants_rank_and_query() {
        let mut rng = Pcg32::seed_from_u64(2);
        let t = restaurants(&mut rng, 200);
        assert_eq!(t.len(), 200);
        let q = PreferenceQuery::new(restaurant_query_specs()).with_k(5);
        let r = q.run(&t).unwrap();
        assert_eq!(r.top.len(), 5);
        // Every attribute ranking should be a genuine partial ranking
        // (few-valued ⇒ far fewer buckets than rows).
        for ranking in &r.rankings {
            assert!(ranking.num_buckets() < 20, "{}", ranking.num_buckets());
        }
    }

    #[test]
    fn flights_rank_and_query() {
        let mut rng = Pcg32::seed_from_u64(3);
        let t = flights(&mut rng, 500);
        let q = PreferenceQuery::new(flight_query_specs()).with_k(3);
        let r = q.run(&t).unwrap();
        assert_eq!(r.top.len(), 3);
        // Sub-linear access: MEDRANK should stop well before scanning
        // all 4 indexes fully (2000 accesses).
        assert!(
            r.stats.total_accesses() < 2000,
            "accesses = {}",
            r.stats.total_accesses()
        );
    }

    #[test]
    fn stops_distribution_skewed() {
        let mut rng = Pcg32::seed_from_u64(4);
        let t = flights(&mut rng, 1000);
        let nonstop = (0..t.len())
            .filter(|&i| matches!(t.value(i, "stops"), Some(&AttrValue::Int(0))))
            .count();
        assert!(nonstop > 300, "nonstop = {nonstop}");
    }

    #[test]
    fn star_values_in_range() {
        let mut rng = Pcg32::seed_from_u64(5);
        let t = restaurants(&mut rng, 300);
        for i in 0..t.len() {
            let s = int_value(&t, i, "stars").expect("stars column is Int");
            assert!((1..=5).contains(&s));
        }
    }

    #[test]
    fn int_value_failures_are_typed() {
        let mut rng = Pcg32::seed_from_u64(5);
        let t = restaurants(&mut rng, 3);
        assert_eq!(
            int_value(&t, 0, "cuisine"),
            Err(AccessError::TypeMismatch {
                attribute: "cuisine".into(),
                expected: "Int",
            })
        );
        assert_eq!(
            int_value(&t, 0, "zip"),
            Err(AccessError::UnknownAttribute { name: "zip".into() })
        );
        assert!(matches!(
            int_value(&t, 99, "stars"),
            Err(AccessError::UnknownAttribute { .. })
        ));
    }
}
