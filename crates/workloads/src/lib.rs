//! Workload generators for the experiments: random bucket orders, the
//! Mallows noise model (with tie coarsening), top-k lists, and synthetic
//! catalogs matching the paper's motivating database scenarios.
//!
//! The paper's guarantees are worst-case theorems with no empirical
//! datasets; these generators provide controlled inputs whose tie
//! structure, noise level and skew can be swept to exercise every claim
//! (see `EXPERIMENTS.md` in the repository root).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod fit;
pub mod mallows;
pub mod plackett_luce;
pub mod random;
pub mod stats;

/// The deterministic RNG surface all samplers are generic over,
/// re-exported from `bucketrank-testkit` so downstream crates (CLI,
/// bench, examples) depend on one trait vocabulary without naming the
/// testkit directly.
pub mod rng {
    pub use bucketrank_testkit::rng::*;
}
