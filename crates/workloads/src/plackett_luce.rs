//! The Plackett–Luce ranking model: an alternative noisy-voter workload
//! with per-element *quality weights* rather than a reference permutation.
//!
//! Under PL(w), a full ranking is built top-down: the next element is
//! drawn from the remaining ones with probability proportional to its
//! weight. High-weight elements concentrate near the top, but — unlike
//! Mallows — the noise is heteroscedastic: the tail order is much noisier
//! than the head, which stresses top-k aggregation differently.
//! [`PlackettLuceWithTies`] coarsens samples into a fixed type, as the
//! Mallows wrapper does.

use bucketrank_core::{BucketOrder, ElementId, TypeSeq};
use bucketrank_testkit::rng::Rng;

/// A Plackett–Luce distribution over full rankings.
#[derive(Debug, Clone)]
pub struct PlackettLuce {
    weights: Vec<f64>,
}

impl PlackettLuce {
    /// Builds the model from positive, finite weights (element id =
    /// index).
    ///
    /// # Panics
    /// Panics if any weight is non-positive or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        PlackettLuce { weights }
    }

    /// A geometric weight profile `base^rank` (`base < 1` makes lower
    /// ids better; the identity is the modal ranking).
    ///
    /// # Panics
    /// Panics unless `0 < base` and `base` is finite.
    pub fn geometric(n: usize, base: f64) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base must be positive");
        PlackettLuce::new((0..n).map(|i| base.powi(i as i32)).collect())
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The modal ranking (weights descending, ties by id).
    pub fn modal(&self) -> BucketOrder {
        let mut ids: Vec<ElementId> = (0..self.len() as ElementId).collect();
        ids.sort_by(|&a, &b| {
            self.weights[b as usize]
                .partial_cmp(&self.weights[a as usize])
                .expect("finite weights")
                .then(a.cmp(&b))
        });
        BucketOrder::from_permutation(&ids).expect("ids form a permutation")
    }

    /// Draws one full ranking.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BucketOrder {
        let n = self.len();
        let mut remaining: Vec<ElementId> = (0..n as ElementId).collect();
        let mut total: f64 = self.weights.iter().sum();
        let mut perm = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let mut x = rng.gen_range(0.0..total);
            let mut pick = remaining.len() - 1;
            for (i, &e) in remaining.iter().enumerate() {
                let w = self.weights[e as usize];
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            let e = remaining.swap_remove(pick);
            total -= self.weights[e as usize];
            perm.push(e);
        }
        BucketOrder::from_permutation(&perm).expect("selection covers the domain")
    }

    /// Draws `m` independent rankings.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R, m: usize) -> Vec<BucketOrder> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

/// Plackett–Luce samples coarsened into partial rankings of a fixed type.
#[derive(Debug, Clone)]
pub struct PlackettLuceWithTies {
    inner: PlackettLuce,
    alpha: TypeSeq,
}

impl PlackettLuceWithTies {
    /// Composes a PL model with a bucketing type.
    ///
    /// # Panics
    /// Panics if `alpha` does not cover the model's domain.
    pub fn new(inner: PlackettLuce, alpha: TypeSeq) -> Self {
        assert_eq!(
            alpha.domain_size(),
            inner.len(),
            "type must cover the domain"
        );
        PlackettLuceWithTies { inner, alpha }
    }

    /// The modal ranking coarsened to the type.
    pub fn modal(&self) -> BucketOrder {
        cut(&self.inner.modal(), &self.alpha)
    }

    /// Draws one noisy partial ranking.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BucketOrder {
        cut(&self.inner.sample(rng), &self.alpha)
    }

    /// Draws `m` independent noisy partial rankings.
    pub fn sample_profile<R: Rng + ?Sized>(&self, rng: &mut R, m: usize) -> Vec<BucketOrder> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

fn cut(full: &BucketOrder, alpha: &TypeSeq) -> BucketOrder {
    let perm = full.as_permutation().expect("PL samples are full");
    let mut buckets = Vec::with_capacity(alpha.num_buckets());
    let mut cursor = 0usize;
    for &s in alpha.sizes() {
        buckets.push(perm[cursor..cursor + s].to_vec());
        cursor += s;
    }
    BucketOrder::from_buckets(perm.len(), buckets).expect("type partitions the permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;

    #[test]
    fn geometric_modal_is_identity() {
        let pl = PlackettLuce::geometric(6, 0.5);
        assert_eq!(pl.modal(), BucketOrder::identity(6));
        assert_eq!(pl.len(), 6);
        assert!(!pl.is_empty());
    }

    #[test]
    fn extreme_weights_concentrate() {
        let pl = PlackettLuce::geometric(7, 0.01);
        let mut rng = Pcg32::seed_from_u64(1);
        let modal = pl.modal();
        let mut exact = 0;
        for _ in 0..30 {
            if pl.sample(&mut rng) == modal {
                exact += 1;
            }
        }
        assert!(exact >= 25, "only {exact}/30 samples matched the mode");
    }

    #[test]
    fn uniform_weights_are_uniformish() {
        // All weights 1: the top element is uniform over the domain.
        let pl = PlackettLuce::new(vec![1.0; 5]);
        let mut rng = Pcg32::seed_from_u64(2);
        let mut counts = [0u32; 5];
        let trials = 2000;
        for _ in 0..trials {
            let top = pl.sample(&mut rng).as_permutation().unwrap()[0];
            counts[top as usize] += 1;
        }
        for &c in &counts {
            let expected = trials as f64 / 5.0;
            assert!(
                (c as f64 - expected).abs() < 4.0 * expected.sqrt(),
                "counts {counts:?} deviate from uniform"
            );
        }
    }

    #[test]
    fn head_is_more_stable_than_tail() {
        // PL's heteroscedastic signature: with weights that separate the
        // head but flatten in the tail, the head pair keeps its modal
        // order far more often (P = w0/(w0+w1) = 2/3) than the tail pair
        // of equal weights (P = 1/2).
        let pl = PlackettLuce::new(vec![16.0, 8.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let mut rng = Pcg32::seed_from_u64(3);
        let mut head_stable = 0;
        let mut tail_stable = 0;
        let trials = 600;
        for _ in 0..trials {
            let s = pl.sample(&mut rng);
            let perm = s.as_permutation().unwrap();
            let pos = |e: ElementId| perm.iter().position(|&x| x == e).unwrap();
            if pos(0) < pos(1) {
                head_stable += 1;
            }
            if pos(6) < pos(7) {
                tail_stable += 1;
            }
        }
        // Head ≈ 2/3·trials, tail ≈ 1/2·trials; the gap is ~100 with
        // standard error ~17, so a >40 separation is a safe assertion.
        assert!(
            head_stable > tail_stable + 40,
            "head {head_stable} vs tail {tail_stable}"
        );
    }

    #[test]
    fn tied_samples_have_requested_type() {
        let alpha = TypeSeq::top_k(8, 3).unwrap();
        let m = PlackettLuceWithTies::new(PlackettLuce::geometric(8, 0.5), alpha.clone());
        let mut rng = Pcg32::seed_from_u64(4);
        for s in m.sample_profile(&mut rng, 10) {
            assert_eq!(s.type_seq(), alpha);
        }
        assert_eq!(m.modal().type_seq(), alpha);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_weights() {
        let _ = PlackettLuce::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cover the domain")]
    fn rejects_mismatched_type() {
        let _ = PlackettLuceWithTies::new(
            PlackettLuce::geometric(4, 0.5),
            TypeSeq::full(5),
        );
    }
}
