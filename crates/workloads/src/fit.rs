//! Fitting the Mallows dispersion from data.
//!
//! Given full rankings assumed to be Mallows samples around a known (or
//! estimated) reference, the dispersion `θ` is identified by the expected
//! Kendall distance: with `q = e^{−θ}`, the repeated-insertion
//! displacement of the element inserted at step `i` (0-based, `i+1`
//! slots) is a truncated geometric with mean
//! `q/(1−q) − (i+1)·q^{i+1}/(1−q^{i+1})`, and `E[K]` is the sum of those
//! means over `i = 1..n−1`. [`expected_kendall`] evaluates it;
//! [`fit_theta`] inverts it by bisection on the observed mean distance.

use crate::mallows::Mallows;
use bucketrank_core::alg::count_inversions;
use bucketrank_core::BucketOrder;

/// Kendall distance between two full rankings via inversion counting
/// (kept local so the workloads crate stays independent of the metrics
/// crate). Returns `None` unless both inputs are full and share a domain.
fn kendall_full(a: &BucketOrder, b: &BucketOrder) -> Option<u64> {
    if a.len() != b.len() || !a.is_full() || !b.is_full() {
        return None;
    }
    let perm = a.as_permutation()?;
    let ranks: Vec<u32> = perm.iter().map(|&e| b.bucket_index(e) as u32).collect();
    Some(count_inversions(&ranks))
}

/// The expected Kendall distance `E[K(π, π₀)]` of a Mallows sample on `n`
/// elements at dispersion `theta ≥ 0`.
///
/// # Panics
/// Panics if `theta` is negative or not finite.
pub fn expected_kendall(n: usize, theta: f64) -> f64 {
    assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
    if n < 2 {
        return 0.0;
    }
    if theta == 0.0 {
        // Uniform permutations: n(n−1)/4.
        return n as f64 * (n as f64 - 1.0) / 4.0;
    }
    let q = (-theta).exp();
    let mut total = 0.0;
    // Element inserted at step i has i+1 slots; displacement d ∈ 0..=i
    // with P(d) ∝ q^d. Mean of truncated geometric:
    //   q/(1−q) − (i+1)·q^{i+1}/(1−q^{i+1}).
    for i in 1..n {
        let k = (i + 1) as f64;
        let qk = q.powf(k);
        total += q / (1.0 - q) - k * qk / (1.0 - qk);
    }
    total
}

/// Estimates `θ` from full rankings and a known reference by inverting
/// [`expected_kendall`] at the observed mean Kendall distance (bisection;
/// result clamped to `[0, 30]`).
///
/// Returns `None` if `samples` is empty, any sample is not full, or
/// domains mismatch the reference.
pub fn fit_theta(samples: &[BucketOrder], reference: &BucketOrder) -> Option<f64> {
    if samples.is_empty() || !reference.is_full() {
        return None;
    }
    let n = reference.len();
    let mut total = 0u64;
    for s in samples {
        total += kendall_full(s, reference)?;
    }
    let observed = total as f64 / samples.len() as f64;
    // E[K] is strictly decreasing in θ from n(n−1)/4 toward 0.
    let max_mean = expected_kendall(n, 0.0);
    if observed >= max_mean {
        return Some(0.0);
    }
    let (mut lo, mut hi) = (0.0f64, 30.0f64);
    if observed <= expected_kendall(n, hi) {
        return Some(hi);
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if expected_kendall(n, mid) > observed {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo + hi) / 2.0)
}

/// Estimates both the reference (via median-rank aggregation of the
/// samples, Theorem 11's near-optimal full ranking) and `θ`. Returns
/// `(reference, theta)`, or `None` on empty/invalid input.
pub fn fit_mallows(samples: &[BucketOrder]) -> Option<(BucketOrder, f64)> {
    use bucketrank_aggregate_free::median_full;
    let reference = median_full(samples)?;
    let theta = fit_theta(samples, &reference)?;
    Some((reference, theta))
}

/// A dependency-free median-full aggregation (the workloads crate does
/// not depend on `bucketrank-aggregate`; this mirrors
/// `aggregate::median::aggregate_full` with the Lower policy).
mod bucketrank_aggregate_free {
    use bucketrank_core::consistent::project_to_type;
    use bucketrank_core::{BucketOrder, ElementId, Pos, TypeSeq};

    pub fn median_full(samples: &[BucketOrder]) -> Option<BucketOrder> {
        let first = samples.first()?;
        let n = first.len();
        if samples.iter().any(|s| s.len() != n) {
            return None;
        }
        let mut f = Vec::with_capacity(n);
        let mut scratch: Vec<Pos> = Vec::with_capacity(samples.len());
        for e in 0..n as ElementId {
            scratch.clear();
            scratch.extend(samples.iter().map(|s| s.position(e)));
            scratch.sort_unstable();
            f.push(scratch[(scratch.len() - 1) / 2]);
        }
        project_to_type(&f, &TypeSeq::full(n)).ok()
    }
}

/// Goodness-of-fit diagnostic: the observed vs expected mean Kendall
/// distance under the fitted model, as `(observed, expected)`.
///
/// Returns `None` on invalid input (as [`fit_theta`]).
pub fn fit_diagnostic(
    samples: &[BucketOrder],
    reference: &BucketOrder,
    theta: f64,
) -> Option<(f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    let mut total = 0u64;
    for s in samples {
        total += kendall_full(s, reference)?;
    }
    Some((
        total as f64 / samples.len() as f64,
        expected_kendall(reference.len(), theta),
    ))
}

/// Convenience: draws a profile from `Mallows` and immediately refits it
/// (used for calibration tests and the experiment harness).
pub fn refit_roundtrip<R: bucketrank_testkit::rng::Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    theta: f64,
    m: usize,
) -> Option<f64> {
    let model = Mallows::new(n, theta);
    let samples = model.sample_profile(rng, m);
    fit_theta(&samples, &model.reference())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;

    #[test]
    fn expected_kendall_limits() {
        assert_eq!(expected_kendall(1, 1.0), 0.0);
        assert_eq!(expected_kendall(6, 0.0), 7.5);
        // θ → ∞: distance → 0.
        assert!(expected_kendall(6, 25.0) < 1e-9);
        // Monotone decreasing in θ.
        let mut prev = f64::INFINITY;
        for t in [0.0, 0.2, 0.5, 1.0, 2.0, 5.0] {
            let v = expected_kendall(8, t);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn expected_matches_empirical_mean() {
        let mut rng = Pcg32::seed_from_u64(5);
        for &theta in &[0.3, 1.0, 2.5] {
            let model = Mallows::new(7, theta);
            let reference = model.reference();
            let trials = 3000;
            let mut total = 0u64;
            for _ in 0..trials {
                total += kendall_full(&model.sample(&mut rng), &reference).unwrap();
            }
            let empirical = total as f64 / trials as f64;
            let expected = expected_kendall(7, theta);
            assert!(
                (empirical - expected).abs() < 0.25,
                "θ = {theta}: empirical {empirical} vs expected {expected}"
            );
        }
    }

    #[test]
    fn fit_recovers_theta() {
        let mut rng = Pcg32::seed_from_u64(6);
        for &theta in &[0.3, 0.8, 1.5] {
            let est = refit_roundtrip(&mut rng, 10, theta, 400).unwrap();
            assert!(
                (est - theta).abs() < 0.25,
                "θ = {theta} estimated as {est}"
            );
        }
    }

    #[test]
    fn fit_mallows_estimates_reference_too() {
        let mut rng = Pcg32::seed_from_u64(7);
        let model = Mallows::with_reference(vec![3, 0, 4, 1, 2], 1.5);
        let samples = model.sample_profile(&mut rng, 200);
        let (reference, theta) = fit_mallows(&samples).unwrap();
        assert_eq!(reference, model.reference());
        assert!((theta - 1.5).abs() < 0.4, "theta = {theta}");
        let (obs, exp) = fit_diagnostic(&samples, &reference, theta).unwrap();
        assert!((obs - exp).abs() < 0.3);
    }

    #[test]
    fn fit_edge_cases() {
        assert!(fit_theta(&[], &BucketOrder::identity(3)).is_none());
        // Tied reference rejected.
        let tied = BucketOrder::trivial(3);
        assert!(fit_theta(&[BucketOrder::identity(3)], &tied).is_none());
        // Identical samples → very large θ (clamped).
        let id = BucketOrder::identity(5);
        let est = fit_theta(&vec![id.clone(); 50], &id).unwrap();
        assert!(est >= 29.0);
        // Anti-correlated samples → θ = 0 (observed ≥ uniform mean).
        let rev = id.reverse();
        let est = fit_theta(&vec![rev; 50], &id).unwrap();
        assert_eq!(est, 0.0);
    }
}
