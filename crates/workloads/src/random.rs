//! Uniform random ranking generators.

use bucketrank_core::{BucketOrder, ElementId, TypeSeq};
use bucketrank_testkit::rng::SliceRandom;
use bucketrank_testkit::rng::Rng;

/// A uniformly random permutation of the domain, as a full ranking.
pub fn random_full_ranking<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BucketOrder {
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.shuffle(rng);
    BucketOrder::from_permutation(&ids).expect("shuffled ids form a permutation")
}

/// A random bucket order of the given type: a uniformly random assignment
/// of the domain into buckets of the prescribed sizes.
///
/// # Panics
/// Panics if the type does not sum to `n`.
pub fn random_of_type<R: Rng + ?Sized>(rng: &mut R, n: usize, alpha: &TypeSeq) -> BucketOrder {
    assert_eq!(
        alpha.domain_size(),
        n,
        "type must cover the domain exactly"
    );
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.shuffle(rng);
    let mut buckets = Vec::with_capacity(alpha.num_buckets());
    let mut cursor = 0usize;
    for &s in alpha.sizes() {
        buckets.push(ids[cursor..cursor + s].to_vec());
        cursor += s;
    }
    BucketOrder::from_buckets(n, buckets).expect("type partitions the domain")
}

/// A random bucket order with approximately `buckets` buckets: each
/// element independently draws one of `buckets` levels, empty levels are
/// dropped. Models a few-valued attribute with uniform value frequencies.
///
/// # Panics
/// Panics if `buckets == 0` while `n > 0`.
pub fn random_few_valued<R: Rng + ?Sized>(rng: &mut R, n: usize, buckets: usize) -> BucketOrder {
    if n == 0 {
        return BucketOrder::trivial(0);
    }
    assert!(buckets > 0, "need at least one level");
    let keys: Vec<usize> = (0..n).map(|_| rng.gen_range(0..buckets)).collect();
    BucketOrder::from_keys(&keys)
}

/// A random bucket order with levels drawn from a Zipf-like distribution
/// (`P(level = i) ∝ 1/(i+1)^s`): models skewed attribute values such as
/// "number of connections", where most records share the few small
/// values.
///
/// # Panics
/// Panics if `buckets == 0` while `n > 0`.
pub fn random_zipf_valued<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    buckets: usize,
    s: f64,
) -> BucketOrder {
    if n == 0 {
        return BucketOrder::trivial(0);
    }
    assert!(buckets > 0, "need at least one level");
    let weights: Vec<f64> = (0..buckets).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let keys: Vec<usize> = (0..n)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            for (i, &w) in weights.iter().enumerate() {
                if x < w {
                    return i;
                }
                x -= w;
            }
            buckets - 1
        })
        .collect();
    BucketOrder::from_keys(&keys)
}

/// A precomputed Zipf sampler over indices `0..n`
/// (`P(i) ∝ 1/(i+1)^s`): built once in O(n), sampled in O(log n) by
/// binary search over the cumulative-weight table. Where
/// [`random_zipf_valued`] linearly scans a handful of bucket levels
/// per element, this is the shape for the server-bench hot loop —
/// thousands of sessions, one skewed index draw per request.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the cumulative table for `n` indices at exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one index");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cum.push(acc);
        }
        ZipfSampler { cum }
    }

    /// Number of indices the sampler draws from.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Always `false` (construction requires `n > 0`); provided for
    /// the conventional pairing with [`len`](ZipfSampler::len).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// One index in `0..n`, Zipf-distributed: index 0 most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("table is nonempty");
        let x = rng.gen_range(0.0..total);
        // First index whose cumulative weight exceeds the draw; the
        // clamp guards the measure-zero x == total edge.
        self.cum.partition_point(|&c| c <= x).min(self.cum.len() - 1)
    }
}

/// A Zipf-distributed session name, `"u<index>"`: the server bench's
/// skewed "which user's session does this request touch" draw for the
/// million-user-day mix, where a small head of users produces most of
/// the traffic.
pub fn zipf_session_name<R: Rng + ?Sized>(sampler: &ZipfSampler, rng: &mut R) -> String {
    format!("u{}", sampler.sample(rng))
}

/// A uniformly random *type* (composition of `n`): each of the `n − 1`
/// gaps is independently a bucket boundary with probability `1/2`.
pub fn random_type<R: Rng + ?Sized>(rng: &mut R, n: usize) -> TypeSeq {
    if n == 0 {
        return TypeSeq::new(vec![]).expect("empty type is valid");
    }
    let mut sizes = Vec::new();
    let mut run = 1usize;
    for _ in 0..n - 1 {
        if rng.gen_bool(0.5) {
            sizes.push(run);
            run = 1;
        } else {
            run += 1;
        }
    }
    sizes.push(run);
    TypeSeq::new(sizes).expect("runs are nonempty")
}

/// A random bucket order on `n` elements: a uniformly random type
/// (composition), then a uniform assignment of elements into it.
///
/// Note this is uniform over `(type, assignment)` pairs, **not** over the
/// Fubini-many bucket orders (types with repeated sizes are mildly
/// underweighted relative to exact uniformity). That bias is irrelevant
/// for the fuzzing and sweep workloads here; use [`random_of_type`] with
/// an explicitly chosen type, or [`random_bucket_order_uniform`] for the
/// exactly uniform distribution (n ≤ 25), when the distribution matters.
pub fn random_bucket_order<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BucketOrder {
    let t = random_type(rng, n);
    random_of_type(rng, n, &t)
}

/// An **exactly uniform** random bucket order on `n` elements (uniform
/// over all Fubini-many ordered set partitions), by sequential placement
/// with exact completion counts.
///
/// Let `f(i, t)` be the number of ways to place `i` further elements
/// given `t` existing buckets: `f(0, t) = 1` and
/// `f(i, t) = t·f(i−1, t) + (t+1)·f(i−1, t+1)` (join one of `t` buckets,
/// or open a new one in one of `t+1` gaps). Element `j` joins an existing
/// bucket with probability `t·f(remaining, t)/f(remaining+1, t)`, else
/// opens a new bucket in a uniform gap. Counts are exact in `u128`,
/// which bounds `n ≤ 25` (`fubini(25) < 2¹²⁸`).
///
/// # Panics
/// Panics if `n > 25`.
pub fn random_bucket_order_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BucketOrder {
    assert!(n <= 25, "exact-uniform sampling limited to n ≤ 25");
    if n == 0 {
        return BucketOrder::trivial(0);
    }
    // f[i][t] for 0 ≤ i ≤ n−1, 1 ≤ t ≤ n (after the first element there
    // is always ≥ 1 bucket).
    let mut f = vec![vec![0u128; n + 2]; n];
    f[0].fill(1);
    for i in 1..n {
        for t in 1..=n + 1 - i {
            let join = (t as u128) * f[i - 1][t];
            let open = (t as u128 + 1) * f[i - 1][t + 1];
            f[i][t] = join + open;
        }
    }
    let mut buckets: Vec<Vec<ElementId>> = vec![vec![0]];
    for e in 1..n as ElementId {
        let remaining = n - 1 - e as usize; // elements after this one
        let t = buckets.len();
        let total = f[remaining + 1][t];
        let join_weight = (t as u128) * f[remaining][t];
        // Draw uniformly from 0..total via 64-bit halves (total < 2^128).
        let draw = {
            let hi = rng.gen::<u64>() as u128;
            let lo = rng.gen::<u64>() as u128;
            ((hi << 64) | lo) % total
        };
        if draw < join_weight {
            let bi = rng.gen_range(0..t);
            buckets[bi].push(e);
        } else {
            let gap = rng.gen_range(0..=t);
            buckets.insert(gap, vec![e]);
        }
    }
    BucketOrder::from_buckets(n, buckets).expect("placement covers the domain")
}

/// A random top-k list: a uniformly random `k`-subset in uniformly random
/// order, bottom bucket for the rest.
///
/// # Panics
/// Panics if `k > n`.
pub fn random_top_k<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> BucketOrder {
    assert!(k <= n, "k must not exceed n");
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.shuffle(rng);
    BucketOrder::top_k(n, &ids[..k]).expect("shuffled prefix is distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_testkit::rng::Pcg32;
    use bucketrank_testkit::rng::SeedableRng;

    fn rng() -> Pcg32 {
        Pcg32::seed_from_u64(0xB0CA)
    }

    #[test]
    fn full_ranking_is_full() {
        let mut r = rng();
        for n in [0usize, 1, 2, 10, 50] {
            let s = random_full_ranking(&mut r, n);
            assert_eq!(s.len(), n);
            assert!(n == 0 || s.is_full());
        }
    }

    #[test]
    fn of_type_respects_type() {
        let mut r = rng();
        let alpha = TypeSeq::new(vec![2, 3, 1]).unwrap();
        for _ in 0..20 {
            let s = random_of_type(&mut r, 6, &alpha);
            assert_eq!(s.type_seq(), alpha);
        }
    }

    #[test]
    fn few_valued_bucket_count_bounded() {
        let mut r = rng();
        for _ in 0..20 {
            let s = random_few_valued(&mut r, 40, 4);
            assert!(s.num_buckets() <= 4);
            assert_eq!(s.len(), 40);
        }
    }

    #[test]
    fn zipf_skews_toward_top_levels() {
        let mut r = rng();
        let s = random_zipf_valued(&mut r, 2000, 10, 1.5);
        // The first bucket should hold the plurality of elements.
        let first = s.buckets()[0].len();
        assert!(
            first > 2000 / 10,
            "first bucket has {first} of 2000 — not skewed"
        );
    }

    #[test]
    fn zipf_sampler_matches_the_linear_scan_and_skews() {
        let sampler = ZipfSampler::new(1000, 1.1);
        assert_eq!(sampler.len(), 1000);
        assert!(!sampler.is_empty());
        // The binary search agrees with a by-hand linear scan of the
        // same cumulative table on a sweep of draws.
        let total = *sampler.cum.last().unwrap();
        for k in 0..500 {
            let x = total * (k as f64 + 0.5) / 500.0;
            let linear = sampler
                .cum
                .iter()
                .position(|&c| x < c)
                .unwrap_or(sampler.cum.len() - 1);
            let binary = sampler.cum.partition_point(|&c| c <= x).min(999);
            assert_eq!(binary, linear, "draw {x}");
        }
        // Skew: the head index dominates any single tail index.
        let mut r = rng();
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        assert!(counts[0] > 1000, "head index drew {} of 20000", counts[0]);
        assert!(counts[0] > 20 * counts[500].max(1));
        // Names are in range and deterministic under a fixed seed.
        let a = zipf_session_name(&sampler, &mut Pcg32::seed_from_u64(3));
        let b = zipf_session_name(&sampler, &mut Pcg32::seed_from_u64(3));
        assert_eq!(a, b);
        assert!(a.strip_prefix('u').unwrap().parse::<usize>().unwrap() < 1000);
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn zipf_sampler_rejects_empty() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn random_type_covers_domain() {
        let mut r = rng();
        for _ in 0..50 {
            let t = random_type(&mut r, 12);
            assert_eq!(t.domain_size(), 12);
        }
        assert_eq!(random_type(&mut r, 0).num_buckets(), 0);
    }

    #[test]
    fn random_bucket_order_valid() {
        let mut r = rng();
        for n in [1usize, 2, 7, 30] {
            let s = random_bucket_order(&mut r, n);
            assert_eq!(s.len(), n);
        }
    }

    #[test]
    fn uniform_sampler_matches_fubini_distribution() {
        use bucketrank_core::fubini;
        use std::collections::HashMap;
        let mut r = rng();
        let n = 3;
        let total = fubini(n).unwrap() as usize; // 13 orders
        let trials = 13_000;
        let mut counts: HashMap<String, u32> = HashMap::new();
        for _ in 0..trials {
            let s = random_bucket_order_uniform(&mut r, n);
            *counts.entry(s.display()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), total, "did not reach every order");
        let expected = trials as f64 / total as f64; // 1000
        let sigma = (expected * (1.0 - 1.0 / total as f64)).sqrt(); // ≈ 30.4
        for (order, &c) in &counts {
            assert!(
                (c as f64 - expected).abs() < 5.0 * sigma,
                "{order}: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn uniform_sampler_valid_at_bounds() {
        let mut r = rng();
        assert!(random_bucket_order_uniform(&mut r, 0).is_empty());
        assert_eq!(random_bucket_order_uniform(&mut r, 1).len(), 1);
        let big = random_bucket_order_uniform(&mut r, 25);
        assert_eq!(big.len(), 25);
    }

    #[test]
    #[should_panic(expected = "n ≤ 25")]
    fn uniform_sampler_rejects_large_n() {
        let mut r = rng();
        let _ = random_bucket_order_uniform(&mut r, 26);
    }

    #[test]
    fn top_k_shape() {
        let mut r = rng();
        for _ in 0..20 {
            let s = random_top_k(&mut r, 9, 3);
            assert_eq!(s.top_k_len(), Some(3));
        }
        let f = random_top_k(&mut r, 4, 4);
        assert!(f.is_full());
    }

    #[test]
    fn determinism_under_seed() {
        let a = random_bucket_order(&mut Pcg32::seed_from_u64(7), 10);
        let b = random_bucket_order(&mut Pcg32::seed_from_u64(7), 10);
        assert_eq!(a, b);
    }
}
