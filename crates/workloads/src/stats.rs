//! Small summary-statistics helpers for the experiment harness.

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub stddev: f64,
}

/// Summarizes a nonempty sample.
///
/// # Panics
/// Panics on an empty sample.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "cannot summarize an empty sample");
    let count = xs.len();
    let mean = xs.iter().sum::<f64>() / count as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    let stddev = if count < 2 {
        0.0
    } else {
        let var = xs.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64;
        var.sqrt()
    };
    Summary {
        count,
        mean,
        min,
        max,
        stddev,
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation on the sorted
/// sample.
///
/// # Panics
/// Panics on an empty sample or a `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "cannot take a quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must lie in [0, 1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn summary_single() {
        let s = summarize(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        summarize(&[]);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }
}
