//! The five pair statistics underlying every Kendall-flavored metric.
//!
//! For each unordered pair `{i, j}` of distinct elements and two bucket
//! orders `σ`, `τ`, exactly one of the following holds:
//!
//! * **concordant** — different buckets in both, same relative order;
//! * **discordant** — different buckets in both, opposite order (the
//!   paper's set `U` in Proposition 6);
//! * **tied in both** — same bucket in `σ` *and* in `τ`;
//! * **tied only in `σ`** — the paper's set `S`;
//! * **tied only in `τ`** — the paper's set `T`.
//!
//! Every metric in the `K` family is a linear functional of these counts:
//! `K = discordant` (full rankings), `K^(p) = discordant + p(|S|+|T|)`,
//! `Kprof = discordant + (|S|+|T|)/2`, `Kavg = Kprof + tied_both/2`,
//! `KHaus = discordant + max(|S|,|T|)`, and the classical association
//! coefficients (gamma, tau-b) are ratios of them.

use crate::error::check_same_domain;
use crate::MetricsError;
use bucketrank_core::alg::Fenwick;
use bucketrank_core::{BucketOrder, ElementId};

/// Counts of the five pair categories between two bucket orders. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounts {
    /// Pairs in different buckets in both orders, in the same order.
    pub concordant: u64,
    /// Pairs in different buckets in both orders, in opposite order (`|U|`).
    pub discordant: u64,
    /// Pairs tied (same bucket) in both orders.
    pub tied_both: u64,
    /// Pairs tied in the left order only (`|S|`).
    pub tied_left_only: u64,
    /// Pairs tied in the right order only (`|T|`).
    pub tied_right_only: u64,
}

impl PairCounts {
    /// Total number of unordered pairs, `n(n−1)/2`.
    pub fn total(&self) -> u64 {
        self.concordant
            + self.discordant
            + self.tied_both
            + self.tied_left_only
            + self.tied_right_only
    }

    /// Pairs tied in exactly one of the two orders, `|S| + |T|`.
    pub fn tied_exactly_one(&self) -> u64 {
        self.tied_left_only + self.tied_right_only
    }
}

/// Computes the pair statistics in `O(n log n)` (sort + Fenwick tree).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the orders differ in domain size.
pub fn pair_counts(sigma: &BucketOrder, tau: &BucketOrder) -> Result<PairCounts, MetricsError> {
    check_same_domain(sigma, tau)?;
    let n = sigma.len();
    let total = (n as u64) * (n as u64 - if n == 0 { 0 } else { 1 }) / 2;
    if n < 2 {
        return Ok(PairCounts::default());
    }

    // Tied-pair counts within each order.
    let tied = |o: &BucketOrder| -> u64 {
        o.buckets()
            .iter()
            .map(|b| {
                let s = b.len() as u64;
                s * (s - 1) / 2
            })
            .sum()
    };
    let tied_left = tied(sigma);
    let tied_right = tied(tau);

    // Pairs tied in both: group elements by (σ-bucket, τ-bucket).
    let mut cells: Vec<(u32, u32)> = (0..n as ElementId)
        .map(|e| (sigma.bucket_index(e) as u32, tau.bucket_index(e) as u32))
        .collect();
    cells.sort_unstable();
    let mut tied_both = 0u64;
    let mut run = 1u64;
    for w in 1..cells.len() {
        if cells[w] == cells[w - 1] {
            run += 1;
        } else {
            tied_both += run * (run - 1) / 2;
            run = 1;
        }
    }
    tied_both += run * (run - 1) / 2;

    // Discordant pairs: sort by (σ-bucket, τ-bucket) ascending; strict
    // inversions in the τ-bucket sequence are exactly the pairs ordered
    // oppositely (σ-ties sort together in τ order, contributing none;
    // τ-ties never count as inversions).
    let mut fw = Fenwick::new(tau.num_buckets());
    let mut discordant = 0u64;
    for &(_, tb) in &cells {
        discordant += fw.suffix_sum(tb as usize + 1);
        fw.add(tb as usize, 1);
    }

    let tied_left_only = tied_left - tied_both;
    let tied_right_only = tied_right - tied_both;
    let concordant = total - discordant - tied_both - tied_left_only - tied_right_only;
    Ok(PairCounts {
        concordant,
        discordant,
        tied_both,
        tied_left_only,
        tied_right_only,
    })
}

/// Reference `O(n²)` pair statistics, for differential testing.
pub fn pair_counts_naive(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<PairCounts, MetricsError> {
    check_same_domain(sigma, tau)?;
    let n = sigma.len() as ElementId;
    let mut c = PairCounts::default();
    for i in 0..n {
        for j in i + 1..n {
            let ts = sigma.is_tied(i, j);
            let tt = tau.is_tied(i, j);
            match (ts, tt) {
                (true, true) => c.tied_both += 1,
                (true, false) => c.tied_left_only += 1,
                (false, true) => c.tied_right_only += 1,
                (false, false) => {
                    if sigma.prefers(i, j) == tau.prefers(i, j) {
                        c.concordant += 1;
                    } else {
                        c.discordant += 1;
                    }
                }
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn identical_orders() {
        let s = bo(4, vec![vec![0, 1], vec![2], vec![3]]);
        let c = pair_counts(&s, &s).unwrap();
        assert_eq!(c.discordant, 0);
        assert_eq!(c.tied_both, 1);
        assert_eq!(c.tied_exactly_one(), 0);
        assert_eq!(c.concordant, 5);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn reversed_full_rankings_all_discordant() {
        let s = BucketOrder::identity(5);
        let c = pair_counts(&s, &s.reverse()).unwrap();
        assert_eq!(c.discordant, 10);
        assert_eq!(c.concordant, 0);
    }

    #[test]
    fn paper_proposition6_sets() {
        // σ = [0 1 | 2 3], τ = [0 | 1 | 2 3]
        let s = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let t = bo(4, vec![vec![0], vec![1], vec![2, 3]]);
        let c = pair_counts(&s, &t).unwrap();
        assert_eq!(c.tied_left_only, 1); // {0,1}
        assert_eq!(c.tied_right_only, 0);
        assert_eq!(c.tied_both, 1); // {2,3}
        assert_eq!(c.discordant, 0);
        assert_eq!(c.concordant, 4);
    }

    #[test]
    fn domain_mismatch() {
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(pair_counts(&a, &b).is_err());
        assert!(pair_counts_naive(&a, &b).is_err());
    }

    #[test]
    fn tiny_domains() {
        let e = BucketOrder::trivial(0);
        assert_eq!(pair_counts(&e, &e).unwrap(), PairCounts::default());
        let one = BucketOrder::trivial(1);
        assert_eq!(pair_counts(&one, &one).unwrap(), PairCounts::default());
    }

    #[test]
    fn fast_equals_naive_exhaustive_n4() {
        let orders = all_bucket_orders(4);
        for a in &orders {
            for b in &orders {
                let fast = pair_counts(a, b).unwrap();
                let naive = pair_counts_naive(a, b).unwrap();
                assert_eq!(fast, naive, "a = {a:?}, b = {b:?}");
                assert_eq!(fast.total(), 6);
            }
        }
    }

    #[test]
    fn asymmetry_swaps_s_and_t() {
        let orders = all_bucket_orders(4);
        for a in &orders {
            for b in &orders {
                let ab = pair_counts(a, b).unwrap();
                let ba = pair_counts(b, a).unwrap();
                assert_eq!(ab.tied_left_only, ba.tied_right_only);
                assert_eq!(ab.discordant, ba.discordant);
                assert_eq!(ab.concordant, ba.concordant);
                assert_eq!(ab.tied_both, ba.tied_both);
            }
        }
    }
}
