//! Explicit profile vectors (Section 3.1), kept as the definitional
//! reference for the closed-form `Kprof`/`Fprof` implementations.
//!
//! The *K-profile* of `σ` assigns to each **ordered** pair `(i, j)` the
//! value `p_ij ∈ {1/4, 0, −1/4}` according to whether `σ(i) < σ(j)`,
//! `σ(i) = σ(j)`, or `σ(i) > σ(j)`; `Kprof` is the `L1` distance between
//! K-profiles. The *F-profile* is the vector of positions `⟨σ(d)⟩`;
//! `Fprof` is the `L1` distance between F-profiles.
//!
//! Profiles are `O(n²)` objects — use them for verification and pedagogy,
//! and the closed forms in [`crate::kendall`] / [`crate::footrule`] in
//! anger.

use crate::error::check_same_domain;
use crate::MetricsError;
use bucketrank_core::{BucketOrder, ElementId, Pos};

/// The K-profile of `σ`, scaled by 4 so entries are integers in
/// `{1, 0, −1}`, indexed by ordered pairs `(i, j)`, `i ≠ j`, in
/// lexicographic order.
pub fn k_profile_x4(sigma: &BucketOrder) -> Vec<i8> {
    let n = sigma.len() as ElementId;
    let mut out = Vec::with_capacity((n as usize) * (n as usize).saturating_sub(1));
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            out.push(match sigma.cmp_elements(i, j) {
                std::cmp::Ordering::Less => 1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => -1,
            });
        }
    }
    out
}

/// The F-profile of `σ`: its position vector (identical to
/// [`BucketOrder::positions`], re-exported here for symmetry with the
/// paper's terminology).
pub fn f_profile(sigma: &BucketOrder) -> Vec<Pos> {
    sigma.positions()
}

/// `2·Kprof` computed as the `L1` distance between explicit K-profiles
/// (definitional reference; `O(n²)`).
///
/// The profiles are scaled by 4 and each unordered pair appears twice, so
/// the raw `L1` distance equals `4·Kprof = 2·(2·Kprof)`; this function
/// divides back to the `_x2` scale used across the crate.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kprof_x2_via_profiles(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let a = k_profile_x4(sigma);
    let b = k_profile_x4(tau);
    let l1_x4: u64 = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| (x as i64).abs_diff(y as i64))
        .sum();
    debug_assert_eq!(l1_x4 % 2, 0);
    Ok(l1_x4 / 2)
}

/// `2·Fprof` computed as the `L1` distance between explicit F-profiles
/// (definitional reference; identical to [`crate::footrule::fprof_x2`]).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fprof_x2_via_profiles(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    Ok(f_profile(sigma)
        .iter()
        .zip(f_profile(tau))
        .map(|(a, b)| a.abs_diff(b))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{footrule, kendall};
    use bucketrank_core::consistent::all_bucket_orders;

    #[test]
    fn k_profile_entries() {
        let s = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
        // Ordered pairs: (0,1) (0,2) (1,0) (1,2) (2,0) (2,1)
        assert_eq!(k_profile_x4(&s), vec![0, 1, 0, 1, -1, -1]);
    }

    #[test]
    fn profile_l1_matches_closed_forms_exhaustive() {
        let orders = all_bucket_orders(4);
        for a in &orders {
            for b in &orders {
                assert_eq!(
                    kprof_x2_via_profiles(a, b).unwrap(),
                    kendall::kprof_x2(a, b).unwrap(),
                    "Kprof mismatch: {a:?} {b:?}"
                );
                assert_eq!(
                    fprof_x2_via_profiles(a, b).unwrap(),
                    footrule::fprof_x2(a, b).unwrap(),
                    "Fprof mismatch: {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn profile_lengths() {
        let s = BucketOrder::trivial(5);
        assert_eq!(k_profile_x4(&s).len(), 20);
        assert_eq!(f_profile(&s).len(), 5);
        let e = BucketOrder::trivial(0);
        assert!(k_profile_x4(&e).is_empty());
    }

    #[test]
    fn domain_mismatch() {
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(kprof_x2_via_profiles(&a, &b).is_err());
        assert!(fprof_x2_via_profiles(&a, &b).is_err());
    }
}
