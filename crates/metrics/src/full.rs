//! The classical metrics on full rankings (Section 2.2): Kendall tau `K`
//! and the Spearman footrule `F`, plus the Diaconis–Graham inequalities.

use crate::error::check_same_domain;
use crate::{pairs, MetricsError};
use bucketrank_core::alg::count_inversions;
use bucketrank_core::{BucketOrder, ElementId};

/// Kendall tau distance `K(σ, τ)` between two **full** rankings: the
/// number of pairwise disagreements (equivalently, bubble-sort exchanges).
///
/// `O(n log n)` by inversion counting.
///
/// # Errors
/// [`MetricsError::NotFullRanking`] if either input has ties;
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kendall(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    if !sigma.is_full() || !tau.is_full() {
        return Err(MetricsError::NotFullRanking);
    }
    // Walk σ in rank order; count inversions of the τ-rank sequence.
    let perm = sigma.as_permutation().expect("checked full");
    let tau_rank: Vec<u32> = perm
        .iter()
        .map(|&e| tau.bucket_index(e) as u32)
        .collect();
    Ok(count_inversions(&tau_rank))
}

/// Reference `O(n²)` Kendall tau on full rankings.
pub fn kendall_naive(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    if !sigma.is_full() || !tau.is_full() {
        return Err(MetricsError::NotFullRanking);
    }
    let n = sigma.len() as ElementId;
    let mut k = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            if sigma.prefers(i, j) != tau.prefers(i, j) {
                k += 1;
            }
        }
    }
    Ok(k)
}

/// Spearman footrule distance `F(σ, τ) = Σ_d |σ(d) − τ(d)|` between two
/// **full** rankings. Positions of full rankings are whole ranks, so the
/// value is an exact integer in the paper's units.
///
/// # Errors
/// [`MetricsError::NotFullRanking`] if either input has ties;
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn footrule(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    if !sigma.is_full() || !tau.is_full() {
        return Err(MetricsError::NotFullRanking);
    }
    let mut total_half_units = 0u64;
    for e in 0..sigma.len() as ElementId {
        total_half_units += sigma.position(e).abs_diff(tau.position(e));
    }
    debug_assert_eq!(total_half_units % 2, 0);
    Ok(total_half_units / 2)
}

/// Checks the Diaconis–Graham inequalities
/// `K(σ,τ) ≤ F(σ,τ) ≤ 2·K(σ,τ)` (inequality (1) of the paper) for a pair
/// of full rankings, returning `(K, F)`.
///
/// # Errors
/// As for [`kendall`] and [`footrule`].
pub fn diaconis_graham(sigma: &BucketOrder, tau: &BucketOrder) -> Result<(u64, u64), MetricsError> {
    let k = kendall(sigma, tau)?;
    let f = footrule(sigma, tau)?;
    debug_assert!(k <= f && f <= 2 * k || (k == 0 && f == 0));
    Ok((k, f))
}

/// Maximum possible Kendall distance on a domain of size `n`: `n(n−1)/2`.
pub fn kendall_diameter(n: usize) -> u64 {
    (n as u64) * (n.saturating_sub(1) as u64) / 2
}

/// Maximum possible footrule distance on a domain of size `n`: `⌊n²/2⌋`.
pub fn footrule_diameter(n: usize) -> u64 {
    (n as u64) * (n as u64) / 2
}

/// Kendall tau distance for full rankings via the generic pair-statistics
/// engine (used in differential tests; prefer [`kendall`]).
pub fn kendall_via_pairs(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    if !sigma.is_full() || !tau.is_full() {
        return Err(MetricsError::NotFullRanking);
    }
    Ok(pairs::pair_counts(sigma, tau)?.discordant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm(p: &[ElementId]) -> BucketOrder {
        BucketOrder::from_permutation(p).unwrap()
    }

    /// All permutations of 0..n.
    fn all_perms(n: usize) -> Vec<BucketOrder> {
        let mut out = Vec::new();
        let mut items: Vec<ElementId> = (0..n as ElementId).collect();
        permute(&mut items, 0, &mut out);
        out
    }

    fn permute(items: &mut Vec<ElementId>, k: usize, out: &mut Vec<BucketOrder>) {
        if k == items.len() {
            out.push(perm(items));
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }

    #[test]
    fn kendall_simple() {
        let a = perm(&[0, 1, 2]);
        let b = perm(&[2, 1, 0]);
        assert_eq!(kendall(&a, &a).unwrap(), 0);
        assert_eq!(kendall(&a, &b).unwrap(), 3);
        // Swapping adjacent elements costs exactly 1.
        let c = perm(&[1, 0, 2]);
        assert_eq!(kendall(&a, &c).unwrap(), 1);
    }

    #[test]
    fn footrule_simple() {
        let a = perm(&[0, 1, 2]);
        let b = perm(&[2, 1, 0]);
        assert_eq!(footrule(&a, &a).unwrap(), 0);
        assert_eq!(footrule(&a, &b).unwrap(), 4); // |1-3| + |2-2| + |3-1|
    }

    #[test]
    fn rejects_partial_rankings() {
        let s = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
        let f = BucketOrder::identity(3);
        assert_eq!(kendall(&s, &f), Err(MetricsError::NotFullRanking));
        assert_eq!(footrule(&f, &s), Err(MetricsError::NotFullRanking));
    }

    #[test]
    fn diaconis_graham_holds_exhaustively() {
        let perms = all_perms(4);
        for a in &perms {
            for b in &perms {
                let (k, f) = diaconis_graham(a, b).unwrap();
                assert!(k <= f, "K ≤ F failed: {a:?} {b:?}");
                assert!(f <= 2 * k || k == 0, "F ≤ 2K failed: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn fast_equals_naive_and_pairs_exhaustive() {
        let perms = all_perms(4);
        for a in &perms {
            for b in &perms {
                let k = kendall(a, b).unwrap();
                assert_eq!(k, kendall_naive(a, b).unwrap());
                assert_eq!(k, kendall_via_pairs(a, b).unwrap());
            }
        }
    }

    #[test]
    fn metric_axioms_exhaustive() {
        let perms = all_perms(4);
        for a in &perms {
            assert_eq!(kendall(a, a).unwrap(), 0);
            for b in &perms {
                let kab = kendall(a, b).unwrap();
                assert_eq!(kab, kendall(b, a).unwrap());
                if a != b {
                    assert!(kab > 0);
                }
                for c in &perms {
                    assert!(
                        kendall(a, c).unwrap() <= kab + kendall(b, c).unwrap(),
                        "triangle inequality failed"
                    );
                }
            }
        }
    }

    #[test]
    fn diameters() {
        let id = BucketOrder::identity(6);
        let rev = id.reverse();
        assert_eq!(kendall(&id, &rev).unwrap(), kendall_diameter(6));
        assert_eq!(footrule(&id, &rev).unwrap(), footrule_diameter(6));
        let id5 = BucketOrder::identity(5);
        let rev5 = id5.reverse();
        assert_eq!(footrule(&id5, &rev5).unwrap(), footrule_diameter(5));
        assert_eq!(footrule_diameter(5), 12);
    }

    #[test]
    fn domain_mismatch() {
        let a = BucketOrder::identity(3);
        let b = BucketOrder::identity(4);
        assert!(kendall(&a, &b).is_err());
        assert!(footrule(&a, &b).is_err());
    }
}
