//! Position-weighted metrics: the weighted footrule and the
//! top-difference distance.
//!
//! The paper's four metrics treat every position equally; ranking
//! traffic usually cares most about the top of the list. Two principled
//! generalizations fix that:
//!
//! * **Weighted footrule** (after "A New Weighted Spearman's Footrule",
//!   arXiv 1207.2541): each rank `r` carries a nonnegative weight
//!   `w_r`, positions become cumulative weight masses
//!   `W(r) = w_1 + … + w_r`, and the distance is the `L1` gap between
//!   the weighted position vectors. A bucket spanning ranks `a..=b`
//!   sits at the endpoint midpoint `(W(a) + W(b)) / 2` — the exact
//!   analogue of the paper's average-rank convention, since with
//!   `w ≡ 1` the midpoint is `(a + b) / 2`, the bucket's average rank.
//! * **Top-difference distance** (after "On the Weighted Top-Difference
//!   Distance", arXiv 2403.15198): each element is scored by the weight
//!   mass **strictly above** it — `u(e) = W(A(e) − 1)` where `A(e)` is
//!   the element's ceiling average rank — and the distance is the `L1`
//!   gap between those scores. Moving inside the zero-weight tail is
//!   free, so this is a pseudometric that looks only at the weighted
//!   head.
//!
//! # Exact arithmetic
//!
//! Weights are **integer units** ([`Weights`]), so both distances are
//! exact `u64`s like every other kernel in this crate:
//!
//! * [`weighted_footrule_x2`] returns **twice** the weighted footrule
//!   (the doubling clears the midpoint's `/2`, exactly like the
//!   half-unit `Pos` scale). With `w ≡ 1` it collapses **bit-exactly**
//!   to [`footrule::fprof_x2`] — wired in as a debug assertion.
//! * [`top_diff`] is an integer already and is returned unscaled. With
//!   `w ≡ 1` on full rankings it equals `fprof_x2 / 2`.
//!
//! Both distances are `L1` gaps between per-ranking score vectors, so
//! symmetry and the triangle inequality are structural, and scaling the
//! weight vector scales the distance exactly:
//! `d(σ, τ; c·w) = c · d(σ, τ; w)`.
//!
//! [`Weights::from_units`] enforces an overflow-safety bound
//! (`2·n·W(n) ≤ u64::MAX`), so no kernel in this module can overflow.

use crate::error::check_same_domain;
use crate::prepared::{
    check_prepared_domain, fprof_x2_prepared, with_arena, PairArena, PreparedRanking,
};
use crate::{footrule, MetricsError};
use bucketrank_core::BucketOrder;

/// Largest accepted single weight unit (`2³²`). Together with the
/// cumulative bound checked by [`Weights::from_units`] this keeps every
/// kernel in `u64` with headroom.
pub const MAX_WEIGHT: u64 = 1 << 32;

/// A validated per-rank weight vector with its cumulative prefix sums.
///
/// `units[r]` is the weight of 1-based rank `r + 1`; `cumulative()[p]`
/// is `W(p) = w_1 + … + w_p` with `W(0) = 0`. Construction validates
/// every entry ([`MAX_WEIGHT`] cap, overflow-safety bound), so kernels
/// taking a `Weights` only ever check the length against the domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Weights {
    units: Vec<u64>,
    cum: Vec<u64>,
}

impl Weights {
    /// Builds a weight vector from integer units.
    ///
    /// # Errors
    /// [`MetricsError::InvalidWeight`] at the first entry exceeding
    /// [`MAX_WEIGHT`] or pushing `2·n·W(n)` past `u64::MAX` (the bound
    /// under which every kernel value provably fits in `u64`).
    pub fn from_units(units: Vec<u64>) -> Result<Self, MetricsError> {
        let n = units.len() as u128;
        let mut cum = Vec::with_capacity(units.len() + 1);
        cum.push(0u64);
        let mut total: u128 = 0;
        for (index, &w) in units.iter().enumerate() {
            if w > MAX_WEIGHT {
                return Err(MetricsError::InvalidWeight { index });
            }
            total += w as u128;
            if 2 * n * total > u64::MAX as u128 {
                return Err(MetricsError::InvalidWeight { index });
            }
            cum.push(total as u64);
        }
        Ok(Weights { units, cum })
    }

    /// Builds a weight vector from floats, accepting exactly the values
    /// representable as integer units: finite, nonnegative, integral,
    /// at most [`MAX_WEIGHT`].
    ///
    /// # Errors
    /// [`MetricsError::InvalidWeight`] at the first NaN, infinite,
    /// negative, fractional, or oversized entry (or one tripping the
    /// cumulative bound of [`Weights::from_units`]).
    pub fn try_from_f64(values: &[f64]) -> Result<Self, MetricsError> {
        let mut units = Vec::with_capacity(values.len());
        for (index, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > MAX_WEIGHT as f64 {
                return Err(MetricsError::InvalidWeight { index });
            }
            units.push(v as u64);
        }
        Self::from_units(units)
    }

    /// The all-ones weight vector: the unweighted special case.
    ///
    /// # Panics
    /// Never — `2·n·n ≤ u64::MAX` for any addressable `n`.
    pub fn uniform(n: usize) -> Self {
        Self::from_units(vec![1; n]).expect("uniform weights satisfy the bound")
    }

    /// Number of ranks covered.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The per-rank units.
    pub fn units(&self) -> &[u64] {
        &self.units
    }

    /// Prefix sums `W(0..=n)` (length `len() + 1`, `W(0) = 0`).
    pub fn cumulative(&self) -> &[u64] {
        &self.cum
    }

    /// `Some(c)` when every entry equals `c` (the tally-expressible /
    /// fast-path shape: `d(·; c·1) = c · d(·; 1)`), `None` otherwise or
    /// when empty.
    pub fn is_uniform(&self) -> Option<u64> {
        let (&first, rest) = self.units.split_first()?;
        rest.iter().all(|&w| w == first).then_some(first)
    }

    /// This vector scaled by `c`, revalidated.
    ///
    /// # Errors
    /// [`MetricsError::InvalidWeight`] at the first entry the scaling
    /// pushes past [`MAX_WEIGHT`] or the cumulative bound.
    pub fn scale(&self, c: u64) -> Result<Self, MetricsError> {
        let scaled = self
            .units
            .iter()
            .enumerate()
            .map(|(index, &w)| {
                w.checked_mul(c)
                    .ok_or(MetricsError::InvalidWeight { index })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Self::from_units(scaled)
    }

    /// Checks the vector covers exactly a domain of `n` ranks.
    pub(crate) fn check_len(&self, n: usize) -> Result<(), MetricsError> {
        if self.units.len() != n {
            return Err(MetricsError::WeightsLengthMismatch {
                weights: self.units.len(),
                domain: n,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Per-element score vectors (the naive reference path)
// ---------------------------------------------------------------------

/// The doubled weighted position of every element: a bucket spanning
/// 1-based ranks `a..=b` scores `W(a) + W(b)` (twice its endpoint
/// midpoint). With `w ≡ 1` this is exactly the half-unit position
/// `a + b` of [`BucketOrder::position`].
///
/// # Errors
/// [`MetricsError::WeightsLengthMismatch`] if `w` does not cover the
/// domain.
pub fn weighted_positions_x2(o: &BucketOrder, w: &Weights) -> Result<Vec<u64>, MetricsError> {
    w.check_len(o.len())?;
    let cum = w.cumulative();
    let mut out = vec![0u64; o.len()];
    let mut taken = 0usize;
    for bucket in o.buckets() {
        let a = taken + 1;
        let b = taken + bucket.len();
        let score = cum[a] + cum[b];
        for &e in bucket {
            out[e as usize] = score;
        }
        taken = b;
    }
    Ok(out)
}

/// The weight mass strictly above every element: `W(A(e) − 1)` where
/// `A(e) = ⌈(a + b) / 2⌉` is the ceiling average rank of the element's
/// bucket `a..=b`. With `w ≡ 1` this is `A(e) − 1`.
///
/// # Errors
/// [`MetricsError::WeightsLengthMismatch`] if `w` does not cover the
/// domain.
pub fn top_mass(o: &BucketOrder, w: &Weights) -> Result<Vec<u64>, MetricsError> {
    w.check_len(o.len())?;
    let cum = w.cumulative();
    let mut out = vec![0u64; o.len()];
    let mut taken = 0usize;
    for bucket in o.buckets() {
        let a = taken + 1;
        let b = taken + bucket.len();
        let score = cum[(a + b).div_ceil(2) - 1];
        for &e in bucket {
            out[e as usize] = score;
        }
        taken = b;
    }
    Ok(out)
}

/// Twice the weighted footrule: the `L1` gap between the doubled
/// weighted position vectors of the two rankings. The naive reference
/// implementation — `O(n)` but recomputing both score vectors per call.
///
/// With `w ≡ 1` this equals [`footrule::fprof_x2`] bit-exactly.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn weighted_footrule_x2(
    sigma: &BucketOrder,
    tau: &BucketOrder,
    w: &Weights,
) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let ws = weighted_positions_x2(sigma, w)?;
    let wt = weighted_positions_x2(tau, w)?;
    Ok(ws.iter().zip(&wt).map(|(&x, &y)| x.abs_diff(y)).sum())
}

/// The top-difference distance: the `L1` gap between the top-mass
/// vectors of the two rankings. A pseudometric — elements moving
/// entirely inside a zero-weight tail contribute nothing. The naive
/// reference implementation.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn top_diff(sigma: &BucketOrder, tau: &BucketOrder, w: &Weights) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let us = top_mass(sigma, w)?;
    let ut = top_mass(tau, w)?;
    Ok(us.iter().zip(&ut).map(|(&x, &y)| x.abs_diff(y)).sum())
}

// ---------------------------------------------------------------------
// Prepared fast path
// ---------------------------------------------------------------------

/// Fills `buf` with the per-**bucket** doubled weighted positions of
/// `p`: `num_buckets` values instead of `n`, read straight off the
/// bucket-start prefix sums.
fn fill_bucket_wpos_x2(buf: &mut Vec<u64>, p: &PreparedRanking<'_>, cum: &[u64]) {
    buf.clear();
    buf.extend(p.bucket_starts().windows(2).map(|span| {
        let a = span[0] as usize + 1;
        let b = span[1] as usize;
        cum[a] + cum[b]
    }));
}

/// Fills `buf` with the per-bucket top masses of `p`: bucket `i`
/// spanning ranks `s_i + 1 ..= s_{i+1}` has ceiling average rank
/// `(s_i + s_{i+1}) / 2 + 1`, so its mass-above is
/// `W((s_i + s_{i+1}) / 2)`.
fn fill_bucket_top_mass(buf: &mut Vec<u64>, p: &PreparedRanking<'_>, cum: &[u64]) {
    buf.clear();
    buf.extend(
        p.bucket_starts()
            .windows(2)
            .map(|span| cum[(span[0] as usize + span[1] as usize) / 2]),
    );
}

/// Shared body of the two prepared kernels: per-bucket score tables
/// into the arena scratch, then one zip over the element → bucket maps.
fn l1_of_bucket_scores(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    cum: &[u64],
    fill: impl Fn(&mut Vec<u64>, &PreparedRanking<'_>, &[u64]),
) -> u64 {
    fill(&mut arena.wbucket_a, s, cum);
    fill(&mut arena.wbucket_b, t, cum);
    let (wa, wb) = (&arena.wbucket_a, &arena.wbucket_b);
    s.bucket_of()
        .iter()
        .zip(t.bucket_of())
        .map(|(&bs, &bt)| wa[bs as usize].abs_diff(wb[bt as usize]))
        .sum()
}

/// [`weighted_footrule_x2`] over prepared views against a caller-held
/// arena: per-bucket weighted prefix sums (`O(k)` scratch), then a
/// zero-alloc `O(n)` zip — the matrix and aggregation loops' kernel.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn weighted_footrule_x2_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    w: &Weights,
) -> Result<u64, MetricsError> {
    check_prepared_domain(s, t)?;
    w.check_len(s.len())?;
    let total = l1_of_bucket_scores(arena, s, t, w.cumulative(), fill_bucket_wpos_x2);
    // The w ≡ 1 collapse is an exact identity; hold it on every debug
    // evaluation.
    debug_assert!(
        w.is_uniform() != Some(1) || total == fprof_x2_prepared(s, t)?,
        "w ≡ 1 weighted footrule diverged from fprof_x2"
    );
    Ok(total)
}

/// [`weighted_footrule_x2_prepared_in`] with the thread-local arena.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn weighted_footrule_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    w: &Weights,
) -> Result<u64, MetricsError> {
    with_arena(|arena| weighted_footrule_x2_prepared_in(arena, s, t, w))
}

/// [`top_diff`] over prepared views against a caller-held arena.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn top_diff_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    w: &Weights,
) -> Result<u64, MetricsError> {
    check_prepared_domain(s, t)?;
    w.check_len(s.len())?;
    let total = l1_of_bucket_scores(arena, s, t, w.cumulative(), fill_bucket_top_mass);
    // On full rankings with w ≡ 1, the top difference is exactly half
    // the (even) profile footrule.
    debug_assert!(
        w.is_uniform() != Some(1)
            || !(s.order().is_full() && t.order().is_full())
            || 2 * total == fprof_x2_prepared(s, t)?,
        "w ≡ 1 full-ranking top_diff diverged from fprof_x2 / 2"
    );
    Ok(total)
}

/// [`top_diff_prepared_in`] with the thread-local arena.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn top_diff_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    w: &Weights,
) -> Result<u64, MetricsError> {
    with_arena(|arena| top_diff_prepared_in(arena, s, t, w))
}

/// The paper's `F^(ℓ)` identity, as a reusable test oracle: two top-`k`
/// lists embedded as bucket orders ([`BucketOrder::top_k`]) under
/// `w ≡ 1` have weighted footrule equal to the location-parameter
/// footrule at the canonical location `ℓ = (n + k + 1) / 2`.
///
/// # Errors
/// Whatever [`footrule::footrule_location_x2`] returns on non-top-`k`
/// inputs.
pub fn location_identity_x2(
    sigma: &BucketOrder,
    tau: &BucketOrder,
    k: usize,
) -> Result<u64, MetricsError> {
    footrule::footrule_location_x2(sigma, tau, k, footrule::canonical_location(sigma.len(), k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    #[test]
    fn rejects_oversized_and_overflowing_units() {
        assert_eq!(
            Weights::from_units(vec![1, MAX_WEIGHT + 1]),
            Err(MetricsError::InvalidWeight { index: 1 })
        );
        // Many max-weight entries trip the cumulative bound at the
        // crossing index, not before and not after.
        let n = 65536usize;
        let err = Weights::from_units(vec![MAX_WEIGHT; n]).unwrap_err();
        let MetricsError::InvalidWeight { index } = err else {
            panic!("wrong error: {err:?}");
        };
        assert!(index < n);
        assert!(Weights::from_units(vec![MAX_WEIGHT; index]).is_ok());
    }

    #[test]
    fn rejects_bad_floats() {
        for (i, bad) in [f64::NAN, -1.0, f64::INFINITY, 0.5].into_iter().enumerate() {
            let mut v = vec![1.0, 1.0, 1.0];
            v[i % 3] = bad;
            assert_eq!(
                Weights::try_from_f64(&v),
                Err(MetricsError::InvalidWeight { index: i % 3 }),
                "value {bad} accepted"
            );
        }
        let w = Weights::try_from_f64(&[3.0, 2.0, 0.0]).unwrap();
        assert_eq!(w.units(), &[3, 2, 0]);
        assert_eq!(w.cumulative(), &[0, 3, 5, 5]);
    }

    #[test]
    fn uniform_detection_and_scaling() {
        assert_eq!(Weights::uniform(4).is_uniform(), Some(1));
        assert_eq!(Weights::from_units(vec![2, 2, 2]).unwrap().is_uniform(), Some(2));
        assert_eq!(Weights::from_units(vec![2, 1]).unwrap().is_uniform(), None);
        assert_eq!(Weights::from_units(vec![]).unwrap().is_uniform(), None);
        let w = Weights::from_units(vec![3, 1, 0]).unwrap();
        assert_eq!(w.scale(5).unwrap().units(), &[15, 5, 0]);
    }

    #[test]
    fn length_mismatch_is_typed() {
        let a = keys(&[1, 2, 3]);
        let w = Weights::uniform(4);
        assert_eq!(
            weighted_footrule_x2(&a, &a, &w),
            Err(MetricsError::WeightsLengthMismatch { weights: 4, domain: 3 })
        );
        assert_eq!(
            top_diff(&a, &a, &w),
            Err(MetricsError::WeightsLengthMismatch { weights: 4, domain: 3 })
        );
        let pa = PreparedRanking::new(&a);
        assert!(weighted_footrule_x2_prepared(&pa, &pa, &w).is_err());
        assert!(top_diff_prepared(&pa, &pa, &w).is_err());
    }

    #[test]
    fn uniform_collapses_to_fprof() {
        let a = keys(&[1, 2, 2, 3, 1]);
        let b = keys(&[3, 1, 2, 1, 2]);
        let w = Weights::uniform(5);
        assert_eq!(
            weighted_footrule_x2(&a, &b, &w).unwrap(),
            footrule::fprof_x2(&a, &b).unwrap()
        );
    }

    #[test]
    fn full_ranking_uniform_top_diff_is_half_fprof() {
        let a = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
        let b = BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap();
        let w = Weights::uniform(4);
        assert_eq!(
            2 * top_diff(&a, &b, &w).unwrap(),
            footrule::fprof_x2(&a, &b).unwrap()
        );
    }

    #[test]
    fn hand_computed_weighted_footrule() {
        // σ = [x, y], τ = [y, x] over weights [5, 1]:
        // W = [0, 5, 6]; positions ×2: rank 1 → 10, rank 2 → 12.
        // Each element moves between ranks 1 and 2: |10 − 12| = 2 each.
        let a = BucketOrder::from_permutation(&[0, 1]).unwrap();
        let b = BucketOrder::from_permutation(&[1, 0]).unwrap();
        let w = Weights::from_units(vec![5, 1]).unwrap();
        assert_eq!(weighted_footrule_x2(&a, &b, &w).unwrap(), 4);
        // Top diff: u(rank 1) = W(0) = 0, u(rank 2) = W(1) = 5.
        assert_eq!(top_diff(&a, &b, &w).unwrap(), 10);
    }

    #[test]
    fn zero_tail_moves_are_free_for_top_diff_only() {
        // Swapping the last two of four under a top-2 step weight: the
        // tail carries no mass, so top_diff is blind to it...
        let a = BucketOrder::from_permutation(&[0, 1, 2, 3]).unwrap();
        let b = BucketOrder::from_permutation(&[0, 1, 3, 2]).unwrap();
        let w = Weights::from_units(vec![1, 1, 0, 0]).unwrap();
        assert_eq!(top_diff(&a, &b, &w).unwrap(), 0);
        // ...and the weighted footrule is too (W is flat there), while
        // the unweighted footrule sees the swap.
        assert_eq!(weighted_footrule_x2(&a, &b, &w).unwrap(), 0);
        assert!(footrule::fprof_x2(&a, &b).unwrap() > 0);
    }

    #[test]
    fn prepared_matches_naive_on_ties() {
        let a = keys(&[1, 1, 2, 3, 2, 1]);
        let b = keys(&[2, 3, 1, 1, 2, 2]);
        let w = Weights::from_units(vec![8, 4, 2, 1, 0, 0]).unwrap();
        let (pa, pb) = (PreparedRanking::new(&a), PreparedRanking::new(&b));
        assert_eq!(
            weighted_footrule_x2_prepared(&pa, &pb, &w).unwrap(),
            weighted_footrule_x2(&a, &b, &w).unwrap()
        );
        assert_eq!(
            top_diff_prepared(&pa, &pb, &w).unwrap(),
            top_diff(&a, &b, &w).unwrap()
        );
    }

    #[test]
    fn location_identity_matches_uniform_weighted_footrule() {
        // Two top-2 lists over 5 elements, embedded as bucket orders:
        // uniform-weighted footrule = F^(ℓ) at the canonical location.
        let sa = BucketOrder::top_k(5, &[3, 0]).unwrap();
        let sb = BucketOrder::top_k(5, &[0, 4]).unwrap();
        let w = Weights::uniform(5);
        assert_eq!(
            weighted_footrule_x2(&sa, &sb, &w).unwrap(),
            location_identity_x2(&sa, &sb, 2).unwrap()
        );
    }
}
