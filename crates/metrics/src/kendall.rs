//! Kendall-tau generalizations to partial rankings: the penalty family
//! `K^(p)` (Section 3.1), the profile metric `Kprof = K^(1/2)`, and the
//! averaging variant `Kavg` (Appendix A.3).

use crate::pairs::{pair_counts, pair_counts_naive};
use crate::MetricsError;
use bucketrank_core::refine::full_refinements;
use bucketrank_core::BucketOrder;

/// The Kendall distance with penalty parameter `p ∈ [0, 1]`:
/// a penalty of 1 for each discordant pair and `p` for each pair tied in
/// exactly one of the two rankings (pairs tied in both incur no penalty).
///
/// Per Proposition 13, `K^(p)` is a metric for `p ∈ [1/2, 1]`, a *near*
/// metric for `p ∈ (0, 1/2)`, and not even a distance measure at `p = 0`.
/// For the canonical `p = 1/2` prefer the exact [`kprof_x2`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn k_p(sigma: &BucketOrder, tau: &BucketOrder, p: f64) -> Result<f64, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    Ok(c.discordant as f64 + p * c.tied_exactly_one() as f64)
}

/// **Twice** the profile Kendall metric: `2·Kprof(σ, τ)`, exactly.
///
/// `Kprof = K^(1/2)` charges `1` per discordant pair and `1/2` per pair
/// tied in exactly one ranking, so `2·Kprof` is always an integer:
/// `2·discordant + |S| + |T|`.
///
/// `O(n log n)`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kprof_x2(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    Ok(2 * c.discordant + c.tied_exactly_one())
}

/// The profile Kendall metric `Kprof(σ, τ)` as a float. Prefer
/// [`kprof_x2`] when exactness matters.
pub fn kprof(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(kprof_x2(sigma, tau)? as f64 / 2.0)
}

/// Reference `O(n²)` implementation of `2·Kprof`, for differential tests.
pub fn kprof_x2_naive(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let c = pair_counts_naive(sigma, tau)?;
    Ok(2 * c.discordant + c.tied_exactly_one())
}

/// **Twice** `Kavg(σ, τ)`: the average Kendall distance `K(σ̄, τ̄)` over
/// all pairs of full refinements `σ̄ ⪯ σ`, `τ̄ ⪯ τ` (Appendix A.3).
///
/// A pair tied in both rankings lands in opposite orders in half of the
/// refinement pairs, so `Kavg = Kprof + tied_both/2`. In particular `Kavg`
/// is **not a distance measure** on general partial rankings —
/// `Kavg(σ, σ) > 0` whenever `σ` has a bucket of size ≥ 2, as the paper
/// notes in Appendix A.3 — and it coincides with `Kprof` exactly when no
/// pair is tied in both rankings (e.g. for top-k lists compared over their
/// active domain, the setting of Fagin–Kumar–Sivakumar 2003).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kavg_x2(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    Ok(2 * c.discordant + c.tied_exactly_one() + c.tied_both)
}

/// Brute-force `2·Kavg` by enumerating all refinement pairs. Exponential;
/// for verification on small domains only.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains;
/// panics only on arithmetic overflow (unreachable for test-sized inputs).
pub fn kavg_x2_brute(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    crate::error::check_same_domain(sigma, tau)?;
    let mut total: u128 = 0;
    let mut count: u128 = 0;
    for s in full_refinements(sigma) {
        for t in full_refinements(tau) {
            total += crate::full::kendall(&s, &t)? as u128;
            count += 1;
        }
    }
    // 2·avg = 2·total/count; exactness guaranteed because 2·Kavg is integral.
    let doubled = 2 * total;
    debug_assert_eq!(doubled % count, 0, "2·Kavg should be integral");
    Ok((doubled / count) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;
    use bucketrank_core::ElementId;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn paper_proposition13_example() {
        // D = {a, b}: τ1 = a<b, τ2 = {a b}, τ3 = b<a.
        let t1 = bo(2, vec![vec![0], vec![1]]);
        let t2 = bo(2, vec![vec![0, 1]]);
        let t3 = bo(2, vec![vec![1], vec![0]]);
        // K^(0)(τ1, τ2) = 0 although τ1 ≠ τ2 — not a distance measure.
        assert_eq!(k_p(&t1, &t2, 0.0).unwrap(), 0.0);
        // K^(p)(τ1, τ2) = p, K^(p)(τ2, τ3) = p, K^(p)(τ1, τ3) = 1.
        for &p in &[0.1, 0.3, 0.5, 0.8, 1.0] {
            assert_eq!(k_p(&t1, &t2, p).unwrap(), p);
            assert_eq!(k_p(&t2, &t3, p).unwrap(), p);
            assert_eq!(k_p(&t1, &t3, p).unwrap(), 1.0);
        }
        // Triangle fails for p < 1/2 on this triple, holds at p = 1/2.
        assert!(k_p(&t1, &t3, 0.25).unwrap() > 2.0 * 0.25);
        assert!(k_p(&t1, &t3, 0.5).unwrap() <= 2.0 * 0.5);
    }

    #[test]
    fn kprof_x2_matches_naive_exhaustive() {
        let orders = all_bucket_orders(4);
        for a in &orders {
            for b in &orders {
                assert_eq!(kprof_x2(a, b).unwrap(), kprof_x2_naive(a, b).unwrap());
            }
        }
    }

    #[test]
    fn kprof_is_metric_on_n3() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let d = kprof_x2(a, b).unwrap();
                assert_eq!(d, kprof_x2(b, a).unwrap());
                assert_eq!(d == 0, a == b);
                for c in &orders {
                    assert!(
                        kprof_x2(a, c).unwrap() <= d + kprof_x2(b, c).unwrap(),
                        "triangle failed: {a:?} {b:?} {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kprof_reduces_to_kendall_on_full_rankings() {
        let a = BucketOrder::from_permutation(&[2, 0, 1, 3]).unwrap();
        let b = BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap();
        assert_eq!(
            kprof_x2(&a, &b).unwrap(),
            2 * crate::full::kendall(&a, &b).unwrap()
        );
    }

    #[test]
    fn kavg_formula_matches_brute_force() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                assert_eq!(
                    kavg_x2(a, b).unwrap(),
                    kavg_x2_brute(a, b).unwrap(),
                    "a = {a:?}, b = {b:?}"
                );
            }
        }
    }

    #[test]
    fn kavg_not_a_distance_measure() {
        let s = bo(3, vec![vec![0, 1], vec![2]]);
        assert!(kavg_x2(&s, &s).unwrap() > 0);
        // But on full rankings Kavg(σ, σ) = 0.
        let f = BucketOrder::identity(3);
        assert_eq!(kavg_x2(&f, &f).unwrap(), 0);
    }

    #[test]
    fn kavg_equals_kprof_when_no_double_ties() {
        let s = bo(4, vec![vec![0, 1], vec![2], vec![3]]);
        let t = bo(4, vec![vec![0], vec![1], vec![2, 3]]);
        assert_eq!(kavg_x2(&s, &t).unwrap(), kprof_x2(&s, &t).unwrap());
    }

    #[test]
    fn k_p_monotone_in_p() {
        let s = bo(4, vec![vec![0, 1, 2], vec![3]]);
        let t = bo(4, vec![vec![3], vec![0], vec![1, 2]]);
        let mut prev = -1.0;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let v = k_p(&s, &t, p).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn scaling_relation_between_kp_values() {
        // K^(p) ≤ K^(p') ≤ (p'/p)·K^(p) for 0 < p < p' ≤ 1 (Prop. 13 proof).
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let k1 = k_p(a, b, 0.2).unwrap();
                let k2 = k_p(a, b, 0.7).unwrap();
                assert!(k1 <= k2 + 1e-12);
                assert!(k2 <= (0.7 / 0.2) * k1 + 1e-12);
            }
        }
    }
}
