//! Prepared-ranking kernels: precompute per-ranking state once, then
//! evaluate any number of pairwise metrics without per-call setup.
//!
//! The direct metric functions ([`kendall::kprof_x2`](crate::kendall),
//! [`footrule::fprof_x2`](crate::footrule), …) rebuild the same
//! per-ranking structures on every call: the element→bucket map is read
//! through method calls, the `(σ-bucket, τ-bucket)` cell list is
//! allocated and sorted from scratch, and `fhaus` materializes four
//! witness [`BucketOrder`]s. A batch of `m` rankings evaluated pairwise
//! therefore pays `O(m²·n)` preparation for `O(m·n)` worth of
//! information.
//!
//! [`PreparedRanking`] hoists everything that depends on **one** ranking
//! out of the pair loop:
//!
//! * the element→bucket index map (borrowed contiguously from the order);
//! * the half-unit position vector `⟨pos(B(e))⟩` (reusing
//!   [`core::pos::Pos`](bucketrank_core::Pos));
//! * bucket sizes as prefix sums over the rank-sorted domain;
//! * the domain sorted by rank (`by_rank`);
//! * the number of within-ranking tied pairs.
//!
//! The `*_prepared` kernels consume two `&PreparedRanking`s and skip all
//! per-call setup. Domain agreement is validated in `O(1)` per pair (the
//! sizes were computed at preparation) and reported as
//! [`MetricsError::DomainMismatch`] — never a panic.
//!
//! # Arena
//!
//! Per-pair working memory (the τ-bucket run array, the Fenwick tree,
//! the contingency table, the witness rank arrays) lives in a
//! [`PairArena`]: batch drivers allocate **one** arena per worker
//! thread per matrix and thread it through the `*_prepared_in`
//! kernels, so a whole `m×m` matrix reuses the same few buffers. The
//! suffix-less convenience kernels (`kprof_x2_prepared`, …) fall back
//! to a thread-local arena, so one-off calls stay allocation-free in
//! steady state too.
//!
//! # Pair-statistics lanes
//!
//! The pair-counts engine picks between two exact lanes on bucket
//! structure: a **counting lane** ([`pair_counts_table_in`]) that
//! builds the `kσ × kτ` bucket contingency table in `O(n)` and reads
//! every statistic off it in `O(kσ·kτ)` — the winner whenever ties
//! compress the rankings into few buckets — and the **sort lane**
//! ([`pair_counts_fenwick_in`]), per-σ-bucket sorts plus a Fenwick
//! inversion count, which handles full rankings (`kσ·kτ = n²` would
//! blow the table up). Both lanes are public and the conformance suite
//! holds them bit-identical to each other and to the direct algorithm.
//!
//! Every kernel returns **exactly** the same integer as its direct
//! counterpart; `tests/prepared_vs_direct.rs` enforces this
//! differentially with no float tolerance.

use crate::pairs::PairCounts;
use crate::MetricsError;
use bucketrank_core::alg::Fenwick;
use bucketrank_core::{BucketOrder, Pos};
use std::cell::RefCell;

/// A ranking with every reusable per-ranking structure precomputed, for
/// repeated pairwise metric evaluation. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct PreparedRanking<'a> {
    order: &'a BucketOrder,
    /// Element id → bucket index (borrowed from the order, contiguous).
    bucket_of: &'a [u32],
    /// Element id → position, in half-units.
    positions: Vec<Pos>,
    /// The domain in rank order: bucket 0's elements, then bucket 1's, …
    by_rank: Vec<u32>,
    /// Prefix sums of bucket sizes over `by_rank`; bucket `i` occupies
    /// `by_rank[bucket_starts[i]..bucket_starts[i + 1]]`.
    bucket_starts: Vec<u32>,
    /// Number of pairs tied within this ranking, `Σ_B |B|(|B|−1)/2`.
    tied_pairs: u64,
}

impl<'a> PreparedRanking<'a> {
    /// Prepares `order` for repeated pairwise evaluation. `O(n)`.
    pub fn new(order: &'a BucketOrder) -> Self {
        let n = order.len();
        let mut by_rank = Vec::with_capacity(n);
        let mut bucket_starts = Vec::with_capacity(order.num_buckets() + 1);
        let mut tied_pairs = 0u64;
        bucket_starts.push(0);
        for b in order.buckets() {
            by_rank.extend_from_slice(b);
            let s = b.len() as u64;
            tied_pairs += s * (s - 1) / 2;
            bucket_starts.push(by_rank.len() as u32);
        }
        let bucket_of = order.bucket_indices();
        let positions = bucket_of
            .iter()
            .map(|&b| order.bucket_position(b as usize))
            .collect();
        PreparedRanking {
            order,
            bucket_of,
            positions,
            by_rank,
            bucket_starts,
            tied_pairs,
        }
    }

    /// The underlying order.
    pub fn order(&self) -> &'a BucketOrder {
        self.order
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.order.num_buckets()
    }

    /// Element id → bucket index, contiguous.
    pub fn bucket_of(&self) -> &[u32] {
        self.bucket_of
    }

    /// The F-profile `⟨pos(B(e))⟩` as a slice, in half-units.
    pub fn positions(&self) -> &[Pos] {
        &self.positions
    }

    /// The domain in rank order (concatenated buckets).
    pub fn by_rank(&self) -> &[u32] {
        &self.by_rank
    }

    /// Bucket-size prefix sums over [`Self::by_rank`] (length
    /// `num_buckets() + 1`).
    pub fn bucket_starts(&self) -> &[u32] {
        &self.bucket_starts
    }

    /// Number of pairs tied within this ranking.
    pub fn tied_pairs(&self) -> u64 {
        self.tied_pairs
    }
}

/// `O(1)` domain check for a prepared pair.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the prepared rankings differ in
/// domain size.
pub fn check_prepared_domain(
    a: &PreparedRanking<'_>,
    b: &PreparedRanking<'_>,
) -> Result<(), MetricsError> {
    if a.len() != b.len() {
        return Err(MetricsError::DomainMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

/// A reusable kernel workspace: cleared-and-refilled buffers so the
/// prepared kernels allocate nothing in steady state. One arena serves
/// any number of pairs and any mix of kernels — batch drivers hold one
/// per worker thread per matrix ([`crate::batch`]) and pass it to the
/// `*_prepared_in` kernels; the suffix-less kernels fall back to a
/// thread-local arena for one-off calls.
#[derive(Debug, Default)]
pub struct PairArena {
    /// τ-bucket of each element, laid out in σ-rank order (sort lane).
    tb: Vec<u32>,
    fenwick: Option<Fenwick>,
    /// The `kσ × kτ` bucket contingency table, row-major (counting
    /// lane).
    table: Vec<u32>,
    /// Per-τ-bucket totals over the σ-rows already swept (counting
    /// lane).
    above: Vec<u64>,
    /// Witness element order and the two rank arrays for `fhaus`.
    ord: Vec<u32>,
    rank_a: Vec<u32>,
    rank_b: Vec<u32>,
    /// Per-bucket weighted score tables (weighted kernels, one per
    /// side; see [`crate::weighted`]).
    pub(crate) wbucket_a: Vec<u64>,
    pub(crate) wbucket_b: Vec<u64>,
}

impl PairArena {
    /// An empty arena. Buffers grow on first use and are reused by
    /// every later call, whatever the domain sizes.
    pub fn new() -> Self {
        Self::default()
    }
}

fn ensure_fenwick(slot: &mut Option<Fenwick>, n: usize) -> &mut Fenwick {
    match slot {
        Some(fw) if fw.len() >= n => fw.clear(),
        _ => *slot = Some(Fenwick::new(n)),
    }
    slot.as_mut().expect("just ensured")
}

thread_local! {
    static ARENA: RefCell<PairArena> = RefCell::new(PairArena::default());
}

pub(crate) fn with_arena<T>(f: impl FnOnce(&mut PairArena) -> T) -> T {
    ARENA.with(|s| f(&mut s.borrow_mut()))
}

/// Assembles the five statistics from the two lane-computed quantities
/// plus the prepared per-ranking tie counts.
fn finish_counts(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
    total: u64,
    discordant: u64,
    tied_both: u64,
) -> PairCounts {
    let tied_left_only = s.tied_pairs - tied_both;
    let tied_right_only = t.tied_pairs - tied_both;
    let concordant = total - discordant - tied_both - tied_left_only - tied_right_only;
    PairCounts {
        concordant,
        discordant,
        tied_both,
        tied_left_only,
        tied_right_only,
    }
}

/// Counting-lane admission bound: the contingency table is used when
/// its `kσ·kτ` cells number at most this many per element. At the
/// bound the lane's `O(n + kσ·kτ)` sweep is a small constant number of
/// sequential passes — still well under the sort lane's per-element
/// `log` factor — while the table memory stays `O(n)`.
const TABLE_CELLS_PER_ELEMENT: usize = 4;

/// The dispatching pair-statistics engine: counting lane when the
/// bucket structure is coarse enough, sort lane otherwise.
fn pair_counts_into(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> PairCounts {
    if s.num_buckets() * t.num_buckets() <= TABLE_CELLS_PER_ELEMENT * s.len() {
        pair_counts_table(arena, s, t)
    } else {
        pair_counts_fenwick(arena, s, t)
    }
}

/// The sort lane. Identical output to
/// [`pairs::pair_counts`](crate::pairs::pair_counts), but the global
/// `(σ-bucket, τ-bucket)` sort is replaced by per-σ-bucket sorts of the
/// precomputed τ-bucket map (the σ grouping is already known), and the
/// within-ranking tie counts come straight off the prepared state.
fn pair_counts_fenwick(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> PairCounts {
    let n = s.len();
    if n < 2 {
        return PairCounts::default();
    }
    let total = (n as u64) * (n as u64 - 1) / 2;

    let PairArena { tb, fenwick, .. } = arena;
    tb.clear();
    tb.extend(s.by_rank.iter().map(|&e| t.bucket_of[e as usize]));

    // Sort each σ-bucket's segment of τ-buckets; equal runs within a
    // segment are exactly the (σ-bucket, τ-bucket) cells of size ≥ 2.
    let mut tied_both = 0u64;
    for w in s.bucket_starts.windows(2) {
        let seg = &mut tb[w[0] as usize..w[1] as usize];
        seg.sort_unstable();
        let mut run = 1u64;
        for k in 1..seg.len() {
            if seg[k] == seg[k - 1] {
                run += 1;
            } else {
                tied_both += run * (run - 1) / 2;
                run = 1;
            }
        }
        tied_both += run * (run - 1) / 2;
    }

    // After the segment sorts, `tb` is the τ-bucket sequence in
    // (σ-bucket, τ-bucket)-ascending order — the same traversal as the
    // direct algorithm's sorted cell list — so strict inversions counted
    // by the Fenwick tree are exactly the discordant pairs.
    let fw = ensure_fenwick(fenwick, t.num_buckets());
    let mut discordant = 0u64;
    for &x in tb.iter() {
        discordant += fw.suffix_sum(x as usize + 1);
        fw.add(x as usize, 1);
    }

    finish_counts(s, t, total, discordant, tied_both)
}

/// The counting lane: build the `kσ × kτ` contingency table
/// `C[i][j] = |σ-bucket i ∩ τ-bucket j|` in one `O(n)` pass, then read
/// every statistic off the table in `O(kσ·kτ)`. Tied-both pairs live
/// inside single cells (`Σ C(C−1)/2`); a pair is discordant exactly
/// when the element in the strictly later σ-bucket sits in a strictly
/// earlier τ-bucket, so sweeping σ-rows top to bottom with a running
/// per-column `above[j] = Σ_{i′<i} C[i′][j]` and a right-to-left
/// suffix scalar accumulates `Σ_{i,j} C[i][j] · Σ_{i′<i, j′>j}
/// C[i′][j′]` — no sorting and no per-element `log` factor.
fn pair_counts_table(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> PairCounts {
    let n = s.len();
    if n < 2 {
        return PairCounts::default();
    }
    let total = (n as u64) * (n as u64 - 1) / 2;
    let kt = t.num_buckets();

    let PairArena { table, above, .. } = arena;
    table.clear();
    table.resize(s.num_buckets() * kt, 0);
    for (i, w) in s.bucket_starts.windows(2).enumerate() {
        let row = &mut table[i * kt..(i + 1) * kt];
        for &e in &s.by_rank[w[0] as usize..w[1] as usize] {
            row[t.bucket_of[e as usize] as usize] += 1;
        }
    }

    above.clear();
    above.resize(kt, 0);
    let mut discordant = 0u64;
    let mut tied_both = 0u64;
    for row in table.chunks_exact(kt) {
        // `suffix` holds Σ_{j′>j} above[j′] as j walks right to left;
        // `above` is only folded in after the row is consumed, so it
        // covers exactly the strictly earlier σ-buckets.
        let mut suffix = 0u64;
        for j in (0..kt).rev() {
            let c = u64::from(row[j]);
            discordant += c * suffix;
            // Empty cells are common (the table is usually sparse), so
            // the pairs-within-a-cell count must not underflow at c = 0.
            tied_both += c * c.saturating_sub(1) / 2;
            suffix += above[j];
        }
        for (al, &c) in above.iter_mut().zip(row) {
            *al += u64::from(c);
        }
    }

    finish_counts(s, t, total, discordant, tied_both)
}

/// The five pair statistics over prepared inputs; equals
/// [`pairs::pair_counts`](crate::pairs::pair_counts) exactly.
/// Dispatches between the counting and sort lanes; see the [module
/// docs](self).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn pair_counts_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<PairCounts, MetricsError> {
    with_arena(|a| pair_counts_prepared_in(a, s, t))
}

/// [`pair_counts_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn pair_counts_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<PairCounts, MetricsError> {
    check_prepared_domain(s, t)?;
    Ok(pair_counts_into(arena, s, t))
}

/// The sort lane, forced — always applicable, never builds the table.
/// This is the pre-dispatch kernel: the bench gate measures the
/// counting lane's win against it and the conformance suite holds the
/// two lanes bit-identical.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn pair_counts_fenwick_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<PairCounts, MetricsError> {
    check_prepared_domain(s, t)?;
    Ok(pair_counts_fenwick(arena, s, t))
}

/// The counting lane, forced. Allocates (and reuses) `kσ·kτ` table
/// cells in the arena — callers forcing this lane on fine-bucketed
/// pairs pay that memory; the dispatcher only picks it under the
/// `O(n)` admission bound.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn pair_counts_table_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<PairCounts, MetricsError> {
    check_prepared_domain(s, t)?;
    Ok(pair_counts_table(arena, s, t))
}

/// Prepared `2·Kprof`; equals [`kendall::kprof_x2`](crate::kendall::kprof_x2)
/// exactly.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kprof_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    with_arena(|a| kprof_x2_prepared_in(a, s, t))
}

/// [`kprof_x2_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kprof_x2_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    let c = pair_counts_prepared_in(arena, s, t)?;
    Ok(2 * c.discordant + c.tied_exactly_one())
}

/// Prepared `2·Kavg`; equals [`kendall::kavg_x2`](crate::kendall::kavg_x2)
/// exactly.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kavg_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    with_arena(|a| kavg_x2_prepared_in(a, s, t))
}

/// [`kavg_x2_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kavg_x2_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    let c = pair_counts_prepared_in(arena, s, t)?;
    Ok(2 * c.discordant + c.tied_exactly_one() + c.tied_both)
}

/// Prepared `2·Fprof`; equals [`footrule::fprof_x2`](crate::footrule::fprof_x2)
/// exactly. One linear pass over the precomputed position vectors.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fprof_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    check_prepared_domain(s, t)?;
    Ok(s.positions
        .iter()
        .zip(&t.positions)
        .map(|(a, b)| a.abs_diff(*b))
        .sum())
}

/// Prepared `KHaus` (unscaled, like [`hausdorff::khaus`](crate::hausdorff::khaus)):
/// Proposition 6's `|U| + max{|S|, |T|}` over the prepared pair
/// statistics.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    with_arena(|a| khaus_prepared_in(a, s, t))
}

/// [`khaus_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    let c = pair_counts_prepared_in(arena, s, t)?;
    Ok(c.discordant + c.tied_left_only.max(c.tied_right_only))
}

/// Prepared `2·KHaus`, on the common `_x2` integer scale used by the
/// aggregation objectives.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    Ok(2 * khaus_prepared(s, t)?)
}

/// [`khaus_x2_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_x2_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    Ok(2 * khaus_prepared_in(arena, s, t)?)
}

/// Fill `rank` with the position of each element in the Theorem 5
/// witness refinement sorted by the key `(base-bucket, other-bucket, e)`
/// — or `(base-bucket, reversed-other-bucket, e)` when `reverse_other`.
///
/// With `ρ = identity`, `star_chain(&[ρ, other], base)` sorts the domain
/// by exactly that key (the trailing element id makes the order strict,
/// so the witness is a full ranking). `base.by_rank` already groups
/// elements by base-bucket, so one `sort_unstable` per segment
/// reproduces the witness without building a [`BucketOrder`].
fn witness_ranks(
    ord: &mut Vec<u32>,
    rank: &mut Vec<u32>,
    base: &PreparedRanking<'_>,
    other: &PreparedRanking<'_>,
    reverse_other: bool,
) {
    ord.clear();
    ord.extend_from_slice(&base.by_rank);
    let last = other.num_buckets().saturating_sub(1) as u32;
    for w in base.bucket_starts.windows(2) {
        let seg = &mut ord[w[0] as usize..w[1] as usize];
        if reverse_other {
            seg.sort_unstable_by_key(|&e| (last - other.bucket_of[e as usize], e));
        } else {
            seg.sort_unstable_by_key(|&e| (other.bucket_of[e as usize], e));
        }
    }
    rank.clear();
    rank.resize(base.len(), 0);
    for (i, &e) in ord.iter().enumerate() {
        rank[e as usize] = i as u32;
    }
}

/// Prepared `FHaus` (unscaled, like [`hausdorff::fhaus`](crate::hausdorff::fhaus)).
///
/// The Theorem 5 witness pairs `(σ1, τ1) = (ρ∗τᴿ∗σ, ρ∗σ∗τ)` and
/// `(σ2, τ2) = (ρ∗τ∗σ, ρ∗σᴿ∗τ)` are computed as rank arrays directly
/// (see [`witness_ranks`]); the footrule of two full rankings is then
/// the `L1` distance of their rank arrays.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    with_arena(|a| fhaus_prepared_in(a, s, t))
}

/// [`fhaus_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    check_prepared_domain(s, t)?;
    Ok({
        let PairArena {
            ord, rank_a, rank_b, ..
        } = arena;
        // F(σ1, τ1): σ ties broken by τᴿ, τ ties broken by σ.
        witness_ranks(ord, rank_a, s, t, true);
        witness_ranks(ord, rank_b, t, s, false);
        let f1: u64 = rank_a
            .iter()
            .zip(rank_b.iter())
            .map(|(x, y)| u64::from(x.abs_diff(*y)))
            .sum();
        // F(σ2, τ2): σ ties broken by τ, τ ties broken by σᴿ.
        witness_ranks(ord, rank_a, s, t, false);
        witness_ranks(ord, rank_b, t, s, true);
        let f2: u64 = rank_a
            .iter()
            .zip(rank_b.iter())
            .map(|(x, y)| u64::from(x.abs_diff(*y)))
            .sum();
        f1.max(f2)
    })
}

/// Prepared `2·FHaus`, on the common `_x2` integer scale used by the
/// aggregation objectives.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_x2_prepared(
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    Ok(2 * fhaus_prepared(s, t)?)
}

/// [`fhaus_x2_prepared`] against a caller-held [`PairArena`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_x2_prepared_in(
    arena: &mut PairArena,
    s: &PreparedRanking<'_>,
    t: &PreparedRanking<'_>,
) -> Result<u64, MetricsError> {
    Ok(2 * fhaus_prepared_in(arena, s, t)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{footrule, hausdorff, kendall, pairs};
    use bucketrank_core::consistent::all_bucket_orders;

    #[test]
    fn prepared_state_is_consistent() {
        let o = BucketOrder::from_buckets(5, vec![vec![1, 3], vec![0], vec![2, 4]]).unwrap();
        let p = PreparedRanking::new(&o);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.num_buckets(), 3);
        assert_eq!(p.by_rank(), &[1, 3, 0, 2, 4]);
        assert_eq!(p.bucket_starts(), &[0, 2, 3, 5]);
        assert_eq!(p.tied_pairs(), 2);
        assert_eq!(p.bucket_of(), &[1, 0, 2, 0, 2]);
        for e in 0..5u32 {
            assert_eq!(p.positions()[e as usize], o.position(e));
        }
        assert!(std::ptr::eq(p.order(), &o));
    }

    #[test]
    fn prepared_equals_direct_exhaustive_n4() {
        let orders = all_bucket_orders(4);
        let prepared: Vec<PreparedRanking<'_>> =
            orders.iter().map(PreparedRanking::new).collect();
        for (a, pa) in orders.iter().zip(&prepared) {
            for (b, pb) in orders.iter().zip(&prepared) {
                assert_eq!(
                    pair_counts_prepared(pa, pb).unwrap(),
                    pairs::pair_counts(a, b).unwrap(),
                    "pair_counts: {a:?} {b:?}"
                );
                assert_eq!(
                    kprof_x2_prepared(pa, pb).unwrap(),
                    kendall::kprof_x2(a, b).unwrap()
                );
                assert_eq!(
                    kavg_x2_prepared(pa, pb).unwrap(),
                    kendall::kavg_x2(a, b).unwrap()
                );
                assert_eq!(
                    fprof_x2_prepared(pa, pb).unwrap(),
                    footrule::fprof_x2(a, b).unwrap()
                );
                assert_eq!(
                    khaus_prepared(pa, pb).unwrap(),
                    hausdorff::khaus(a, b).unwrap()
                );
                assert_eq!(
                    fhaus_prepared(pa, pb).unwrap(),
                    hausdorff::fhaus(a, b).unwrap(),
                    "fhaus: {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn x2_wrappers_double() {
        let a = BucketOrder::from_keys(&[1, 1, 2, 3]);
        let b = BucketOrder::from_keys(&[3, 1, 2, 2]);
        let (pa, pb) = (PreparedRanking::new(&a), PreparedRanking::new(&b));
        assert_eq!(
            khaus_x2_prepared(&pa, &pb).unwrap(),
            2 * khaus_prepared(&pa, &pb).unwrap()
        );
        assert_eq!(
            fhaus_x2_prepared(&pa, &pb).unwrap(),
            2 * fhaus_prepared(&pa, &pb).unwrap()
        );
    }

    #[test]
    fn degenerate_domains() {
        for n in [0usize, 1] {
            let o = BucketOrder::trivial(n);
            let p = PreparedRanking::new(&o);
            assert_eq!(pair_counts_prepared(&p, &p).unwrap(), PairCounts::default());
            assert_eq!(kprof_x2_prepared(&p, &p).unwrap(), 0);
            assert_eq!(fprof_x2_prepared(&p, &p).unwrap(), 0);
            assert_eq!(khaus_prepared(&p, &p).unwrap(), 0);
            assert_eq!(fhaus_prepared(&p, &p).unwrap(), 0);
        }
    }

    #[test]
    fn mismatched_domains_error_from_every_kernel() {
        let a = BucketOrder::trivial(3);
        let b = BucketOrder::trivial(4);
        let (pa, pb) = (PreparedRanking::new(&a), PreparedRanking::new(&b));
        let expected = MetricsError::DomainMismatch { left: 3, right: 4 };
        assert_eq!(pair_counts_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(kprof_x2_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(kavg_x2_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(fprof_x2_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(khaus_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(khaus_x2_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(fhaus_prepared(&pa, &pb).unwrap_err(), expected);
        assert_eq!(fhaus_x2_prepared(&pa, &pb).unwrap_err(), expected);
    }

    #[test]
    fn counting_and_sort_lanes_agree_exhaustively_n4() {
        let orders = all_bucket_orders(4);
        let prepared: Vec<PreparedRanking<'_>> =
            orders.iter().map(PreparedRanking::new).collect();
        let mut arena = PairArena::new();
        for pa in &prepared {
            for pb in &prepared {
                let dispatched = pair_counts_prepared_in(&mut arena, pa, pb).unwrap();
                let table = pair_counts_table_in(&mut arena, pa, pb).unwrap();
                let fenwick = pair_counts_fenwick_in(&mut arena, pa, pb).unwrap();
                assert_eq!(table, fenwick, "{:?} {:?}", pa.order(), pb.order());
                assert_eq!(dispatched, table);
            }
        }
    }

    #[test]
    fn arena_kernels_match_thread_local_wrappers() {
        let a = BucketOrder::from_keys(&[1, 1, 2, 3, 2, 1]);
        let b = BucketOrder::from_keys(&[3, 1, 2, 2, 1, 1]);
        let (pa, pb) = (PreparedRanking::new(&a), PreparedRanking::new(&b));
        let mut arena = PairArena::new();
        assert_eq!(
            pair_counts_prepared_in(&mut arena, &pa, &pb).unwrap(),
            pair_counts_prepared(&pa, &pb).unwrap()
        );
        assert_eq!(
            kprof_x2_prepared_in(&mut arena, &pa, &pb).unwrap(),
            kprof_x2_prepared(&pa, &pb).unwrap()
        );
        assert_eq!(
            kavg_x2_prepared_in(&mut arena, &pa, &pb).unwrap(),
            kavg_x2_prepared(&pa, &pb).unwrap()
        );
        assert_eq!(
            khaus_x2_prepared_in(&mut arena, &pa, &pb).unwrap(),
            khaus_x2_prepared(&pa, &pb).unwrap()
        );
        assert_eq!(
            fhaus_x2_prepared_in(&mut arena, &pa, &pb).unwrap(),
            fhaus_x2_prepared(&pa, &pb).unwrap()
        );
    }

    #[test]
    fn scratch_reuse_is_sound_across_shrinking_sizes() {
        // A big pair first (grows the thread-local buffers), then small
        // ones: stale scratch contents must not leak into the results.
        let big_a = BucketOrder::from_keys(&(0..200).map(|i| i % 7).collect::<Vec<_>>());
        let big_b = BucketOrder::from_keys(&(0..200).map(|i| (i * 3) % 5).collect::<Vec<_>>());
        let (pa, pb) = (PreparedRanking::new(&big_a), PreparedRanking::new(&big_b));
        let _ = kprof_x2_prepared(&pa, &pb).unwrap();
        let _ = fhaus_prepared(&pa, &pb).unwrap();
        for a in all_bucket_orders(3) {
            for b in all_bucket_orders(3) {
                let (qa, qb) = (PreparedRanking::new(&a), PreparedRanking::new(&b));
                assert_eq!(
                    kprof_x2_prepared(&qa, &qb).unwrap(),
                    kendall::kprof_x2(&a, &b).unwrap()
                );
                assert_eq!(
                    fhaus_prepared(&qa, &qb).unwrap(),
                    hausdorff::fhaus(&a, &b).unwrap()
                );
            }
        }
    }
}
