//! Top-k lists over *their own domains*, after Fagin, Kumar and Sivakumar
//! (SODA 2003, reference \[10\]) — the setting Appendix A.3 compares
//! against.
//!
//! In \[10\] a top-k list is a bijection from its own `k` elements onto
//! `{1, …, k}`; two lists may rank different elements, and every
//! comparison happens over the **active domain** — the union of the two
//! lists' elements — with each list extended by a bottom bucket holding
//! the other list's leftovers. Because the active domain changes with the
//! pair being compared, measures that are *metrics* at any fixed domain
//! (this paper's setting) degrade to *near metrics* in \[10\]'s setting;
//! this module makes that phenomenon concrete and testable.

use crate::error::MetricsError;
use crate::{footrule, hausdorff, kendall, pairs};
use bucketrank_core::{BucketOrder, ElementId, Pos};
use std::collections::HashMap;

/// A top-k list in the sense of \[10\]: an ordered list of distinct
/// element ids over some global universe; its *own* domain is exactly its
/// elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopKList {
    items: Vec<ElementId>,
}

impl TopKList {
    /// Builds a top-k list from ranked items (best first).
    ///
    /// # Errors
    /// [`MetricsError::NotTopK`] if items repeat.
    pub fn new(items: Vec<ElementId>) -> Result<Self, MetricsError> {
        let mut seen = std::collections::HashSet::with_capacity(items.len());
        for &e in &items {
            if !seen.insert(e) {
                return Err(MetricsError::NotTopK);
            }
        }
        Ok(TopKList { items })
    }

    /// The ranked items, best first.
    pub fn items(&self) -> &[ElementId] {
        &self.items
    }

    /// `k`, the list length.
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// The 1-based rank of `e` in this list, if present.
    pub fn rank_of(&self, e: ElementId) -> Option<usize> {
        self.items.iter().position(|&x| x == e).map(|p| p + 1)
    }

    /// Whether `e` appears in the list.
    pub fn contains(&self, e: ElementId) -> bool {
        self.items.contains(&e)
    }
}

/// The *active domain* of a pair: the union of their elements, in a
/// deterministic order (first list's items, then the second's new ones).
pub fn active_domain(a: &TopKList, b: &TopKList) -> Vec<ElementId> {
    let mut out = a.items.clone();
    for &e in &b.items {
        if !a.contains(e) {
            out.push(e);
        }
    }
    out
}

/// Converts the pair to bucket orders over their (re-indexed) active
/// domain, each with a bottom bucket holding the other list's leftovers —
/// the construction Appendix A.3 uses to align the two scenarios.
pub fn as_bucket_orders(a: &TopKList, b: &TopKList) -> (BucketOrder, BucketOrder) {
    let universe = active_domain(a, b);
    let n = universe.len();
    let index: HashMap<ElementId, ElementId> = universe
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as ElementId))
        .collect();
    let embed = |l: &TopKList| -> BucketOrder {
        let top: Vec<ElementId> = l.items.iter().map(|e| index[e]).collect();
        BucketOrder::top_k(n, &top).expect("active domain covers every item")
    };
    (embed(a), embed(b))
}

/// `K^(p)` between two top-k lists over their active domain
/// (\[10\] Section 3; a *near* metric as the domain varies).
///
/// # Errors
/// Currently infallible for valid lists; the `Result` mirrors the fixed
/// domain API.
pub fn k_p_topk(a: &TopKList, b: &TopKList, p: f64) -> Result<f64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    kendall::k_p(&sa, &sb, p)
}

/// `Kmin = K^(0)` of \[10\]: the minimum Kendall distance over tie breaks.
/// Unlike the fixed-domain case, this **is** a distance measure on top-k
/// lists over active domains (two distinct lists always disagree on some
/// untied pair).
pub fn kmin_topk(a: &TopKList, b: &TopKList) -> Result<f64, MetricsError> {
    k_p_topk(a, b, 0.0)
}

/// `2·Kavg` of \[10\] over the active domain: always
/// `Kavg = Kprof + tied_both/2`, and over an **active** domain
/// `tied_both = 0` — a pair tied in both would need both elements outside
/// both lists, impossible when the domain is the union of the lists — so
/// `Kavg = K^(1/2)` identically, exactly \[10\]'s identity that Appendix
/// A.3 recalls.
pub fn kavg_x2_topk(a: &TopKList, b: &TopKList) -> Result<u64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    kendall::kavg_x2(&sa, &sb)
}

/// `2·Kprof` over the active domain.
pub fn kprof_x2_topk(a: &TopKList, b: &TopKList) -> Result<u64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    kendall::kprof_x2(&sa, &sb)
}

/// `KHaus` over the active domain (Critchlow's construction as
/// generalized by \[10\] and this paper).
pub fn khaus_topk(a: &TopKList, b: &TopKList) -> Result<u64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    hausdorff::khaus(&sa, &sb)
}

/// `FHaus` over the active domain.
pub fn fhaus_topk(a: &TopKList, b: &TopKList) -> Result<u64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    hausdorff::fhaus(&sa, &sb)
}

/// `2·Fprof` over the active domain.
pub fn fprof_x2_topk(a: &TopKList, b: &TopKList) -> Result<u64, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    footrule::fprof_x2(&sa, &sb)
}

/// `2·F^(ℓ)` of \[10\] over the active domain: within-list elements keep
/// their rank, everything else sits at `ℓ` (half-units).
///
/// # Errors
/// [`MetricsError::InvalidLocationParameter`] unless `ℓ` exceeds both
/// lists' `k`.
pub fn footrule_location_x2_topk(
    a: &TopKList,
    b: &TopKList,
    ell: Pos,
) -> Result<u64, MetricsError> {
    if ell <= Pos::from_rank(a.k().max(b.k()) as i64) {
        return Err(MetricsError::InvalidLocationParameter);
    }
    let universe = active_domain(a, b);
    let mut total = 0u64;
    for &e in &universe {
        let va = a
            .rank_of(e)
            .map_or(ell, |r| Pos::from_rank(r as i64));
        let vb = b
            .rank_of(e)
            .map_or(ell, |r| Pos::from_rank(r as i64));
        total += va.abs_diff(vb);
    }
    Ok(total)
}

/// The symmetric-difference overlap measure of \[10\]: `|Δ(top-k sets)|/2k`
/// in `[0, 1]` (0 = same sets, 1 = disjoint). Requires equal `k`.
///
/// # Errors
/// [`MetricsError::NotTopK`] on differing `k`.
pub fn set_difference_topk(a: &TopKList, b: &TopKList) -> Result<f64, MetricsError> {
    if a.k() != b.k() {
        return Err(MetricsError::NotTopK);
    }
    if a.k() == 0 {
        return Ok(0.0);
    }
    let shared = a.items.iter().filter(|&&e| b.contains(e)).count();
    Ok((a.k() - shared) as f64 / a.k() as f64)
}

/// Pair statistics over the active domain (exposed for analysis code).
pub fn pair_counts_topk(a: &TopKList, b: &TopKList) -> Result<pairs::PairCounts, MetricsError> {
    let (sa, sb) = as_bucket_orders(a, b);
    pairs::pair_counts(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk(items: &[ElementId]) -> TopKList {
        TopKList::new(items.to_vec()).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let l = tk(&[7, 3, 9]);
        assert_eq!(l.k(), 3);
        assert_eq!(l.rank_of(3), Some(2));
        assert_eq!(l.rank_of(4), None);
        assert!(l.contains(9));
        assert!(TopKList::new(vec![1, 1]).is_err());
    }

    #[test]
    fn active_domain_union() {
        let a = tk(&[1, 2, 3]);
        let b = tk(&[3, 4, 5]);
        assert_eq!(active_domain(&a, &b), vec![1, 2, 3, 4, 5]);
        let (sa, sb) = as_bucket_orders(&a, &b);
        assert_eq!(sa.len(), 5);
        assert_eq!(sa.top_k_len(), Some(3));
        assert_eq!(sb.top_k_len(), Some(3));
    }

    #[test]
    fn identical_lists_distance_zero() {
        let a = tk(&[4, 2, 8]);
        assert_eq!(kprof_x2_topk(&a, &a).unwrap(), 0);
        assert_eq!(fprof_x2_topk(&a, &a).unwrap(), 0);
        assert_eq!(khaus_topk(&a, &a).unwrap(), 0);
        assert_eq!(fhaus_topk(&a, &a).unwrap(), 0);
        assert_eq!(kmin_topk(&a, &a).unwrap(), 0.0);
        assert_eq!(set_difference_topk(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn disjoint_lists_are_far() {
        let a = tk(&[0, 1]);
        let b = tk(&[2, 3]);
        // Active domain size 4; every cross pair is penalized.
        assert_eq!(set_difference_topk(&a, &b).unwrap(), 1.0);
        assert!(kprof_x2_topk(&a, &b).unwrap() > 0);
        // Kmin > 0 even though K^(0) can vanish on fixed-domain partial
        // rankings: the defining property of [10]'s setting.
        assert!(kmin_topk(&a, &b).unwrap() > 0.0);
    }

    #[test]
    fn kmin_is_a_distance_measure_on_topk() {
        // For every distinct pair of 2-element lists over {0,1,2}, Kmin > 0.
        let lists: Vec<TopKList> = {
            let mut v = Vec::new();
            for i in 0..3u32 {
                for j in 0..3u32 {
                    if i != j {
                        v.push(tk(&[i, j]));
                    }
                }
            }
            v
        };
        for a in &lists {
            for b in &lists {
                let d = kmin_topk(a, b).unwrap();
                assert_eq!(d == 0.0, a == b, "{a:?} {b:?}");
                assert_eq!(d, kmin_topk(b, a).unwrap());
            }
        }
    }

    #[test]
    fn varying_domain_breaks_triangle_for_kmin() {
        // The [10] phenomenon: over varying active domains Kmin is only a
        // NEAR metric. Classic witness: τ1 = (a), τ3 = (b) share nothing;
        // τ2 = (a) with... use k = 2: t1 = [0,1], t2 = [0,2], t3 = [2,3].
        let t1 = tk(&[0, 1]);
        let t2 = tk(&[0, 2]);
        let t3 = tk(&[2, 3]);
        let d13 = kmin_topk(&t1, &t3).unwrap();
        let d12 = kmin_topk(&t1, &t2).unwrap();
        let d23 = kmin_topk(&t2, &t3).unwrap();
        // Not asserting a violation for this specific triple — assert the
        // documented *search*: over all triples of 2-lists from a 4
        // universe, record the worst ratio; it may exceed 1 (near metric)
        // but stays bounded by a small constant.
        let mut worst: f64 = 0.0;
        let lists: Vec<TopKList> = {
            let mut v = Vec::new();
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i != j {
                        v.push(tk(&[i, j]));
                    }
                }
            }
            v
        };
        for a in &lists {
            for b in &lists {
                for c in &lists {
                    let direct = kmin_topk(a, c).unwrap();
                    let detour = kmin_topk(a, b).unwrap() + kmin_topk(b, c).unwrap();
                    if detour > 0.0 {
                        worst = worst.max(direct / detour);
                    }
                }
            }
        }
        assert!(worst <= 3.0, "near-metric constant blew up: {worst}");
        let _ = (d13, d12, d23);
    }

    #[test]
    fn metrics_equivalence_holds_per_pair() {
        // At any FIXED pair the Theorem 7 inequalities hold (the active
        // domain is fixed once the pair is).
        let lists = [tk(&[0, 1, 2]), tk(&[2, 3, 4]), tk(&[1, 0, 5]), tk(&[0, 1, 2])];
        for a in &lists {
            for b in &lists {
                let kp = kprof_x2_topk(a, b).unwrap();
                let fp = fprof_x2_topk(a, b).unwrap();
                let kh = khaus_topk(a, b).unwrap();
                let fh = fhaus_topk(a, b).unwrap();
                assert!(kp <= fp && fp <= 2 * kp || kp == 0);
                assert!(kh <= fh && fh <= 2 * kh || kh == 0);
                assert!(kp <= 2 * kh && kh <= kp);
            }
        }
    }

    #[test]
    fn location_footrule_matches_embedded_computation() {
        let a = tk(&[5, 1]);
        let b = tk(&[1, 7]);
        // Active domain {5,1,7}, n = 3, k = 2 ⇒ canonical ℓ = (3+2+1)/2 = 3.
        let ell = Pos::from_rank(3);
        let via_lists = footrule_location_x2_topk(&a, &b, ell).unwrap();
        let (sa, sb) = as_bucket_orders(&a, &b);
        let via_orders = footrule::footrule_location_x2(&sa, &sb, 2, ell).unwrap();
        assert_eq!(via_lists, via_orders);
        // And both agree with Fprof at the canonical ℓ.
        assert_eq!(via_lists, fprof_x2_topk(&a, &b).unwrap());
        // ℓ too small is rejected.
        assert!(footrule_location_x2_topk(&a, &b, Pos::from_rank(2)).is_err());
    }

    #[test]
    fn kavg_equals_kprof_over_active_domains() {
        // tied_both = 0 over any active domain, so Kavg = K^(1/2) — the
        // identity of [10] recalled in Appendix A.3.
        let lists = [tk(&[0, 1]), tk(&[2, 3]), tk(&[1, 2]), tk(&[3, 0])];
        for a in &lists {
            for b in &lists {
                let c = pair_counts_topk(a, b).unwrap();
                assert_eq!(c.tied_both, 0);
                assert_eq!(kavg_x2_topk(a, b).unwrap(), kprof_x2_topk(a, b).unwrap());
            }
        }
    }

    #[test]
    fn set_difference_requires_equal_k() {
        let a = tk(&[0, 1]);
        let b = tk(&[0, 1, 2]);
        assert!(set_difference_topk(&a, &b).is_err());
        let e = tk(&[]);
        assert_eq!(set_difference_topk(&e, &e).unwrap(), 0.0);
    }
}
