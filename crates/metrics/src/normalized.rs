//! Normalized variants of the four metrics, mapping into `[0, 1]` by
//! dividing by the exact domain diameter.
//!
//! Normalization is what downstream applications (similarity search,
//! classification — Section 1's application list) typically consume, and
//! is also how Kendall (1945) presented his tie-aware coefficient. The
//! diameters are exact:
//!
//! | metric | diameter on `n` elements | witness |
//! |---|---|---|
//! | `Kprof`, `KHaus` | `n(n−1)/2` | identity vs reversed identity |
//! | `Fprof`, `FHaus` | `⌊n²/2⌋` | identity vs reversed identity |
//!
//! (Both witnesses are full rankings: adding ties can only *reduce*
//! distances — every per-pair penalty and per-element displacement is
//! maximized by the reversal — which the tests verify exhaustively.)

use crate::{footrule, hausdorff, kendall, MetricsError};
use bucketrank_core::BucketOrder;

/// The maximum possible `Kprof` (and `KHaus`) on a domain of `n`
/// elements: one full penalty per pair.
pub fn kendall_diameter(n: usize) -> u64 {
    (n as u64) * (n.saturating_sub(1) as u64) / 2
}

/// The maximum possible `Fprof` (and `FHaus`) on a domain of `n`
/// elements: `⌊n²/2⌋`.
pub fn footrule_diameter(n: usize) -> u64 {
    (n as u64) * (n as u64) / 2
}

fn normalize(x2_value: u64, diameter: u64, scale: f64) -> f64 {
    if diameter == 0 {
        0.0
    } else {
        x2_value as f64 / (scale * diameter as f64)
    }
}

/// `Kprof(σ, τ) / (n(n−1)/2) ∈ [0, 1]`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kprof_normalized(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(normalize(
        kendall::kprof_x2(sigma, tau)?,
        kendall_diameter(sigma.len()),
        2.0,
    ))
}

/// `Fprof(σ, τ) / ⌊n²/2⌋ ∈ [0, 1]`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fprof_normalized(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(normalize(
        footrule::fprof_x2(sigma, tau)?,
        footrule_diameter(sigma.len()),
        2.0,
    ))
}

/// `KHaus(σ, τ) / (n(n−1)/2) ∈ [0, 1]`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_normalized(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(normalize(
        hausdorff::khaus(sigma, tau)?,
        kendall_diameter(sigma.len()),
        1.0,
    ))
}

/// `FHaus(σ, τ) / ⌊n²/2⌋ ∈ [0, 1]`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_normalized(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(normalize(
        hausdorff::fhaus(sigma, tau)?,
        footrule_diameter(sigma.len()),
        1.0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;

    type NormFn = fn(&BucketOrder, &BucketOrder) -> Result<f64, MetricsError>;
    const ALL: [NormFn; 4] = [
        kprof_normalized,
        fprof_normalized,
        khaus_normalized,
        fhaus_normalized,
    ];

    #[test]
    fn diameters_attained_by_full_reversal() {
        for n in 2..=7 {
            let id = BucketOrder::identity(n);
            let rev = id.reverse();
            assert_eq!(kprof_normalized(&id, &rev).unwrap(), 1.0, "n = {n}");
            assert_eq!(fprof_normalized(&id, &rev).unwrap(), 1.0, "n = {n}");
            assert_eq!(khaus_normalized(&id, &rev).unwrap(), 1.0, "n = {n}");
            assert_eq!(fhaus_normalized(&id, &rev).unwrap(), 1.0, "n = {n}");
        }
    }

    #[test]
    fn never_exceeds_one_exhaustively() {
        for n in 0..=4 {
            let orders = all_bucket_orders(n);
            for a in &orders {
                for b in &orders {
                    for f in ALL {
                        let v = f(a, b).unwrap();
                        assert!((0.0..=1.0).contains(&v), "n={n} {a:?} {b:?} -> {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_iff_equal() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                for f in ALL {
                    assert_eq!(f(a, b).unwrap() == 0.0, a == b);
                }
            }
        }
    }

    #[test]
    fn degenerate_domains() {
        let e = BucketOrder::trivial(0);
        let one = BucketOrder::trivial(1);
        for f in ALL {
            assert_eq!(f(&e, &e).unwrap(), 0.0);
            assert_eq!(f(&one, &one).unwrap(), 0.0);
        }
    }

    #[test]
    fn consistent_with_raw_metrics() {
        let a = BucketOrder::from_keys(&[1, 1, 2, 3]);
        let b = BucketOrder::from_keys(&[3, 2, 1, 1]);
        let n = 4;
        assert_eq!(
            kprof_normalized(&a, &b).unwrap(),
            kendall::kprof(&a, &b).unwrap() / kendall_diameter(n) as f64
        );
        assert_eq!(
            fhaus_normalized(&a, &b).unwrap(),
            hausdorff::fhaus(&a, &b).unwrap() as f64 / footrule_diameter(n) as f64
        );
    }
}
