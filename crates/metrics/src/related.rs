//! Related association measures from prior work (Section 1, "Related
//! work"): the Goodman–Kruskal gamma (1954) and Kendall's tau-b (1945).
//!
//! These are *correlations* in `[−1, 1]` rather than distances; the paper
//! criticizes gamma for being undefined when every pair is tied in at
//! least one ranking, which we surface as `None`.

use crate::pairs::pair_counts;
use crate::MetricsError;
use bucketrank_core::BucketOrder;

/// Goodman–Kruskal gamma: `(C − D) / (C + D)` over the concordant and
/// discordant pair counts.
///
/// Returns `Ok(None)` when `C + D = 0` — the "serious disadvantage" the
/// paper notes: the measure is undefined whenever every pair is tied in at
/// least one of the two rankings.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn goodman_kruskal_gamma(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<Option<f64>, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    let denom = c.concordant + c.discordant;
    if denom == 0 {
        return Ok(None);
    }
    Ok(Some(
        (c.concordant as f64 - c.discordant as f64) / denom as f64,
    ))
}

/// Kendall's tau-b (Kendall 1945, the tie-adjusted rank correlation):
/// `(C − D) / √((C + D + |T|)·(C + D + |S|))`, where `|S|`/`|T|` are the
/// pairs tied only in `σ`/only in `τ`.
///
/// Returns `Ok(None)` when either ranking ties *all* pairs (denominator
/// zero).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn kendall_tau_b(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<Option<f64>, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    // Pairs untied in σ: C + D + (tied only in τ); symmetric for τ.
    let untied_sigma = c.concordant + c.discordant + c.tied_right_only;
    let untied_tau = c.concordant + c.discordant + c.tied_left_only;
    let denom = ((untied_sigma as f64) * (untied_tau as f64)).sqrt();
    if denom == 0.0 {
        return Ok(None);
    }
    Ok(Some(
        (c.concordant as f64 - c.discordant as f64) / denom,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;

    #[test]
    fn gamma_extremes() {
        let id = BucketOrder::identity(4);
        assert_eq!(goodman_kruskal_gamma(&id, &id).unwrap(), Some(1.0));
        assert_eq!(
            goodman_kruskal_gamma(&id, &id.reverse()).unwrap(),
            Some(-1.0)
        );
    }

    #[test]
    fn gamma_undefined_when_all_pairs_tied_somewhere() {
        // The paper's criticism: with τ trivial, C + D = 0.
        let id = BucketOrder::identity(3);
        let triv = BucketOrder::trivial(3);
        assert_eq!(goodman_kruskal_gamma(&id, &triv).unwrap(), None);
        // Also for interlocking partial rankings with no doubly-untied pair.
        let a = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
        let b = BucketOrder::from_buckets(3, vec![vec![0], vec![1, 2]]).unwrap();
        // Pairs: {0,1} tied in a; {1,2} tied in b; {0,2} untied in both.
        assert!(goodman_kruskal_gamma(&a, &b).unwrap().is_some());
    }

    #[test]
    fn tau_b_extremes_and_range() {
        let id = BucketOrder::identity(5);
        assert_eq!(kendall_tau_b(&id, &id).unwrap(), Some(1.0));
        assert_eq!(kendall_tau_b(&id, &id.reverse()).unwrap(), Some(-1.0));
        for a in all_bucket_orders(4) {
            for b in all_bucket_orders(4) {
                if let Some(t) = kendall_tau_b(&a, &b).unwrap() {
                    assert!((-1.0..=1.0).contains(&t), "{a:?} {b:?} -> {t}");
                }
            }
        }
    }

    #[test]
    fn tau_b_undefined_for_trivial_order() {
        let triv = BucketOrder::trivial(4);
        let id = BucketOrder::identity(4);
        assert_eq!(kendall_tau_b(&triv, &id).unwrap(), None);
        assert_eq!(kendall_tau_b(&triv, &triv).unwrap(), None);
    }

    #[test]
    fn gamma_symmetry() {
        for a in all_bucket_orders(3) {
            for b in all_bucket_orders(3) {
                assert_eq!(
                    goodman_kruskal_gamma(&a, &b).unwrap(),
                    goodman_kruskal_gamma(&b, &a).unwrap()
                );
                assert_eq!(
                    kendall_tau_b(&a, &b).unwrap(),
                    kendall_tau_b(&b, &a).unwrap()
                );
            }
        }
    }

    #[test]
    fn domain_mismatch() {
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(goodman_kruskal_gamma(&a, &b).is_err());
        assert!(kendall_tau_b(&a, &b).is_err());
    }
}
