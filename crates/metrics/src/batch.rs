//! Batch distance computation: full pairwise matrices, optionally in
//! parallel.
//!
//! Applications of the paper's metrics (similarity search, clustering,
//! the experiment harness itself) routinely need all `m(m−1)/2` pairwise
//! distances of a profile. This module provides a cache-friendly
//! single-threaded path and a [`std::thread::scope`]d parallel path that
//! splits the pair list across threads (the metrics are pure functions of
//! immutable inputs, so this parallelizes embarrassingly).

use crate::error::check_same_domain;
use crate::MetricsError;
use bucketrank_core::BucketOrder;

/// A symmetric distance matrix over `m` rankings, stored densely
/// (`m × m`, diagonal zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    m: usize,
    values: Vec<u64>,
}

impl DistanceMatrix {
    /// Number of rankings.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The distance between rankings `i` and `j`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.m && j < self.m, "index out of range");
        self.values[i * self.m + j]
    }

    /// Total over all unordered pairs (each pair counted once).
    pub fn total(&self) -> u64 {
        let mut t = 0;
        for i in 0..self.m {
            for j in i + 1..self.m {
                t += self.get(i, j);
            }
        }
        t
    }

    /// The index of the ranking minimizing the sum of distances to the
    /// others (the medoid / best-input of `aggregate::borda::best_input`,
    /// computed from the matrix), with its total. `None` when empty.
    pub fn medoid(&self) -> Option<(usize, u64)> {
        (0..self.m)
            .map(|i| {
                let s: u64 = (0..self.m).map(|j| self.get(i, j)).sum();
                (i, s)
            })
            .min_by_key(|&(i, s)| (s, i))
    }
}

/// Computes the pairwise matrix single-threaded.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the rankings differ in domain, or
/// any error from the distance function.
pub fn pairwise_matrix<D>(orders: &[BucketOrder], d: D) -> Result<DistanceMatrix, MetricsError>
where
    D: Fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError>,
{
    let m = orders.len();
    for w in orders.windows(2) {
        check_same_domain(&w[0], &w[1])?;
    }
    let mut values = vec![0u64; m * m];
    for i in 0..m {
        for j in i + 1..m {
            let v = d(&orders[i], &orders[j])?;
            values[i * m + j] = v;
            values[j * m + i] = v;
        }
    }
    Ok(DistanceMatrix { m, values })
}

/// Computes the pairwise matrix with `threads` worker threads
/// (scoped std threads; `threads = 1` falls back to the sequential path).
///
/// Pairs are dealt round-robin by flattened pair index, which balances
/// well because every pair costs roughly the same `O(n log n)`.
///
/// # Errors
/// As [`pairwise_matrix`]. The first error encountered (by pair order)
/// is returned.
pub fn pairwise_matrix_parallel<D>(
    orders: &[BucketOrder],
    d: D,
    threads: usize,
) -> Result<DistanceMatrix, MetricsError>
where
    D: Fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError> + Sync,
{
    let m = orders.len();
    if threads <= 1 || m < 4 {
        return pairwise_matrix(orders, d);
    }
    for w in orders.windows(2) {
        check_same_domain(&w[0], &w[1])?;
    }
    // Flattened list of unordered pairs.
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (i + 1..m).map(move |j| (i, j)))
        .collect();
    let mut results: Vec<Result<u64, MetricsError>> = Vec::with_capacity(pairs.len());
    results.resize_with(pairs.len(), || Ok(0));

    std::thread::scope(|scope| {
        // Chunk the results buffer so each worker owns a disjoint slice.
        let chunk = pairs.len().div_ceil(threads);
        for (t, res_chunk) in results.chunks_mut(chunk).enumerate() {
            let pairs = &pairs;
            let d = &d;
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in res_chunk.iter_mut().enumerate() {
                    let (i, j) = pairs[start + off];
                    *slot = d(&orders[i], &orders[j]);
                }
            });
        }
    });

    let mut values = vec![0u64; m * m];
    for ((i, j), r) in pairs.into_iter().zip(results) {
        let v = r?;
        values[i * m + j] = v;
        values[j * m + i] = v;
    }
    Ok(DistanceMatrix { m, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{footrule, hausdorff, kendall};

    fn profile() -> Vec<BucketOrder> {
        (0..9)
            .map(|i| {
                let keys: Vec<i64> = (0..12).map(|e| ((e * (i + 2) + i) % 5) as i64).collect();
                BucketOrder::from_keys(&keys)
            })
            .collect()
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let p = profile();
        let mx = pairwise_matrix(&p, kendall::kprof_x2).unwrap();
        assert_eq!(mx.len(), 9);
        assert!(!mx.is_empty());
        for i in 0..9 {
            assert_eq!(mx.get(i, i), 0);
            for j in 0..9 {
                assert_eq!(mx.get(i, j), mx.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_for_all_metrics() {
        let p = profile();
        type DistFn = fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError>;
        let metrics: [DistFn; 4] = [
            kendall::kprof_x2,
            footrule::fprof_x2,
            hausdorff::khaus,
            hausdorff::fhaus,
        ];
        for d in metrics {
            let seq = pairwise_matrix(&p, d).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par = pairwise_matrix_parallel(&p, d, threads).unwrap();
                assert_eq!(seq, par, "threads = {threads}");
            }
        }
    }

    #[test]
    fn medoid_matches_best_input_semantics() {
        let p = profile();
        let mx = pairwise_matrix(&p, footrule::fprof_x2).unwrap();
        let (medoid, total) = mx.medoid().unwrap();
        // Recompute directly.
        let direct: Vec<u64> = (0..p.len())
            .map(|i| {
                p.iter()
                    .map(|s| footrule::fprof_x2(&p[i], s).unwrap())
                    .sum()
            })
            .collect();
        assert_eq!(total, direct[medoid]);
        assert_eq!(total, *direct.iter().min().unwrap());
        assert!(mx.total() > 0);
    }

    #[test]
    fn domain_mismatch_detected() {
        let p = vec![BucketOrder::trivial(3), BucketOrder::trivial(4)];
        assert!(pairwise_matrix(&p, kendall::kprof_x2).is_err());
        assert!(pairwise_matrix_parallel(&p, kendall::kprof_x2, 4).is_err());
    }

    #[test]
    fn degenerate_sizes() {
        let empty: Vec<BucketOrder> = vec![];
        let mx = pairwise_matrix(&empty, kendall::kprof_x2).unwrap();
        assert!(mx.is_empty());
        assert_eq!(mx.medoid(), None);
        let one = vec![BucketOrder::trivial(3)];
        let mx = pairwise_matrix_parallel(&one, kendall::kprof_x2, 4).unwrap();
        assert_eq!(mx.len(), 1);
        assert_eq!(mx.medoid(), Some((0, 0)));
    }
}
