//! Batch distance computation: full pairwise matrices, optionally in
//! parallel, over [`PreparedRanking`] kernels.
//!
//! Applications of the paper's metrics (similarity search, clustering,
//! the experiment harness itself) routinely need all `m(m−1)/2` pairwise
//! distances of a profile. Calling the direct metric functions in a
//! double loop repeats every per-ranking setup `m−1` times; instead,
//! this module prepares each ranking **once** ([`prepare_all`]) and
//! evaluates every pair against the prepared views — the per-pair work
//! drops to the irreducible kernel (the bucket contingency-table sweep
//! or segment sorts + a Fenwick pass, or a position-vector scan). Every
//! matrix holds **one** [`PairArena`] per worker (one allocation set
//! per thread per matrix, not per pair) and threads it through the
//! `*_prepared_in` kernels. A cache-friendly single-threaded path and
//! a [`std::thread::scope`]d parallel path that splits the flattened
//! pair list into contiguous chunks are provided; the kernels are pure
//! functions of immutable prepared state (arena scratch only), so this
//! parallelizes embarrassingly.
//!
//! The batch entry points take a [`BatchMetric`] naming one of the
//! paper's metrics on its canonical integer scale. Custom distance
//! functions can still be batched with the `*_with` variants, which are
//! also the naive reference implementation the regression tests compare
//! against.

use crate::error::check_same_domain;
use crate::prepared::{
    fhaus_prepared, fhaus_prepared_in, fprof_x2_prepared, kavg_x2_prepared, kavg_x2_prepared_in,
    khaus_prepared, khaus_prepared_in, kprof_x2_prepared, kprof_x2_prepared_in, PairArena,
    PreparedRanking,
};
use crate::weighted::{self, Weights};
use crate::MetricsError;
use crate::{footrule, hausdorff, kendall};
use bucketrank_core::BucketOrder;

/// The pairwise metrics the batch engine can evaluate, each on its
/// canonical exact-integer scale (`_x2` = twice the paper's value; the
/// Hausdorff metrics are integers already and stay unscaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchMetric {
    /// `2·Kprof` ([`kendall::kprof_x2`]).
    KProfX2,
    /// `2·Fprof` ([`footrule::fprof_x2`]).
    FProfX2,
    /// `2·Kavg` ([`kendall::kavg_x2`]).
    KAvgX2,
    /// `KHaus`, unscaled ([`hausdorff::khaus`]).
    KHaus,
    /// `FHaus`, unscaled ([`hausdorff::fhaus`]).
    FHaus,
}

impl BatchMetric {
    /// All batch metrics, in a fixed order (useful for sweeps).
    pub const ALL: [BatchMetric; 5] = [
        BatchMetric::KProfX2,
        BatchMetric::FProfX2,
        BatchMetric::KAvgX2,
        BatchMetric::KHaus,
        BatchMetric::FHaus,
    ];

    /// A short stable name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            BatchMetric::KProfX2 => "kprof_x2",
            BatchMetric::FProfX2 => "fprof_x2",
            BatchMetric::KAvgX2 => "kavg_x2",
            BatchMetric::KHaus => "khaus",
            BatchMetric::FHaus => "fhaus",
        }
    }

    /// The direct (unprepared) metric function — the reference the
    /// prepared kernel must agree with exactly.
    ///
    /// # Errors
    /// Whatever the underlying metric returns.
    pub fn direct(self, a: &BucketOrder, b: &BucketOrder) -> Result<u64, MetricsError> {
        match self {
            BatchMetric::KProfX2 => kendall::kprof_x2(a, b),
            BatchMetric::FProfX2 => footrule::fprof_x2(a, b),
            BatchMetric::KAvgX2 => kendall::kavg_x2(a, b),
            BatchMetric::KHaus => hausdorff::khaus(a, b),
            BatchMetric::FHaus => hausdorff::fhaus(a, b),
        }
    }

    /// The prepared kernel for this metric (thread-local arena).
    ///
    /// # Errors
    /// [`MetricsError::DomainMismatch`] on differing domains.
    pub fn prepared(
        self,
        a: &PreparedRanking<'_>,
        b: &PreparedRanking<'_>,
    ) -> Result<u64, MetricsError> {
        match self {
            BatchMetric::KProfX2 => kprof_x2_prepared(a, b),
            BatchMetric::FProfX2 => fprof_x2_prepared(a, b),
            BatchMetric::KAvgX2 => kavg_x2_prepared(a, b),
            BatchMetric::KHaus => khaus_prepared(a, b),
            BatchMetric::FHaus => fhaus_prepared(a, b),
        }
    }

    /// The prepared kernel for this metric against a caller-held
    /// [`PairArena`] — what the matrix loops use, one arena per worker.
    /// (`fprof_x2` needs no scratch; the arena is simply unused.)
    ///
    /// # Errors
    /// [`MetricsError::DomainMismatch`] on differing domains.
    pub fn prepared_in(
        self,
        arena: &mut PairArena,
        a: &PreparedRanking<'_>,
        b: &PreparedRanking<'_>,
    ) -> Result<u64, MetricsError> {
        match self {
            BatchMetric::KProfX2 => kprof_x2_prepared_in(arena, a, b),
            BatchMetric::FProfX2 => fprof_x2_prepared(a, b),
            BatchMetric::KAvgX2 => kavg_x2_prepared_in(arena, a, b),
            BatchMetric::KHaus => khaus_prepared_in(arena, a, b),
            BatchMetric::FHaus => fhaus_prepared_in(arena, a, b),
        }
    }
}

/// The weighted pairwise metrics the batch engine can evaluate
/// ([`crate::weighted`]), each parameterized by a [`Weights`] vector
/// carried alongside the profile. Kept separate from [`BatchMetric`]
/// (which stays `Copy` and weight-free) — the weighted matrix builders
/// take the weights once per matrix and precompute every ranking's
/// score vector a single time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightedMetric {
    /// `2·`weighted footrule ([`weighted::weighted_footrule_x2`]).
    WeightedFootruleX2,
    /// Top-difference distance ([`weighted::top_diff`]), unscaled.
    TopDiff,
}

impl WeightedMetric {
    /// Both weighted metrics, in a fixed order (useful for sweeps).
    pub const ALL: [WeightedMetric; 2] =
        [WeightedMetric::WeightedFootruleX2, WeightedMetric::TopDiff];

    /// A short stable name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            WeightedMetric::WeightedFootruleX2 => "weighted_footrule_x2",
            WeightedMetric::TopDiff => "top_diff",
        }
    }

    /// The naive reference implementation (recomputes both score
    /// vectors per call).
    ///
    /// # Errors
    /// Whatever the underlying metric returns.
    pub fn naive(self, a: &BucketOrder, b: &BucketOrder, w: &Weights) -> Result<u64, MetricsError> {
        match self {
            WeightedMetric::WeightedFootruleX2 => weighted::weighted_footrule_x2(a, b, w),
            WeightedMetric::TopDiff => weighted::top_diff(a, b, w),
        }
    }

    /// The prepared kernel against a caller-held [`PairArena`].
    ///
    /// # Errors
    /// [`MetricsError::DomainMismatch`] /
    /// [`MetricsError::WeightsLengthMismatch`].
    pub fn prepared_in(
        self,
        arena: &mut PairArena,
        a: &PreparedRanking<'_>,
        b: &PreparedRanking<'_>,
        w: &Weights,
    ) -> Result<u64, MetricsError> {
        match self {
            WeightedMetric::WeightedFootruleX2 => {
                weighted::weighted_footrule_x2_prepared_in(arena, a, b, w)
            }
            WeightedMetric::TopDiff => weighted::top_diff_prepared_in(arena, a, b, w),
        }
    }

    /// The per-element score vector whose pairwise `L1` gaps are this
    /// metric — the matrix builders compute it **once per ranking** and
    /// reduce every pair to a zip.
    ///
    /// # Errors
    /// [`MetricsError::WeightsLengthMismatch`].
    pub fn element_scores(self, o: &BucketOrder, w: &Weights) -> Result<Vec<u64>, MetricsError> {
        match self {
            WeightedMetric::WeightedFootruleX2 => weighted::weighted_positions_x2(o, w),
            WeightedMetric::TopDiff => weighted::top_mass(o, w),
        }
    }
}

/// A symmetric distance matrix over `m` rankings, stored densely
/// (`m × m`, diagonal zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    m: usize,
    values: Vec<u64>,
}

impl DistanceMatrix {
    /// Number of rankings.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The distance between rankings `i` and `j`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.m && j < self.m, "index out of range");
        self.values[i * self.m + j]
    }

    /// Total over all unordered pairs (each pair counted once).
    pub fn total(&self) -> u64 {
        let mut t = 0;
        for i in 0..self.m {
            for j in i + 1..self.m {
                t += self.get(i, j);
            }
        }
        t
    }

    /// The index of the ranking minimizing the sum of distances to the
    /// others (the medoid / best-input of `aggregate::borda::best_input`,
    /// computed from the matrix), with its total. `None` when empty.
    pub fn medoid(&self) -> Option<(usize, u64)> {
        (0..self.m)
            .map(|i| {
                let s: u64 = (0..self.m).map(|j| self.get(i, j)).sum();
                (i, s)
            })
            .min_by_key(|&(i, s)| (s, i))
    }
}

/// Prepares every ranking of a profile for batch evaluation, validating
/// once that they share a domain.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if any two rankings differ in domain.
pub fn prepare_all(orders: &[BucketOrder]) -> Result<Vec<PreparedRanking<'_>>, MetricsError> {
    for w in orders.windows(2) {
        check_same_domain(&w[0], &w[1])?;
    }
    Ok(orders.iter().map(PreparedRanking::new).collect())
}

/// Computes the pairwise matrix single-threaded via prepared kernels:
/// each ranking is prepared once, then all `m(m−1)/2` pairs are
/// evaluated with no per-call setup.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the rankings differ in domain.
pub fn pairwise_matrix(
    orders: &[BucketOrder],
    metric: BatchMetric,
) -> Result<DistanceMatrix, MetricsError> {
    let prepared = prepare_all(orders)?;
    pairwise_matrix_prepared(&prepared, metric)
}

/// [`pairwise_matrix`] over already-prepared views (reuse them across
/// several metrics without re-preparing).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the prepared rankings differ in
/// domain.
pub fn pairwise_matrix_prepared(
    prepared: &[PreparedRanking<'_>],
    metric: BatchMetric,
) -> Result<DistanceMatrix, MetricsError> {
    let m = prepared.len();
    let mut values = vec![0u64; m * m];
    let mut arena = PairArena::new();
    for i in 0..m {
        for j in i + 1..m {
            let v = metric.prepared_in(&mut arena, &prepared[i], &prepared[j])?;
            values[i * m + j] = v;
            values[j * m + i] = v;
        }
    }
    Ok(DistanceMatrix { m, values })
}

/// Computes the pairwise matrix with `threads` worker threads over
/// prepared kernels (scoped std threads; `threads = 1` falls back to
/// the sequential path). Preparation is done once up front on the
/// calling thread — it is `O(m·n)`, negligible next to the
/// `O(m²·n log n)` pair work the threads split.
///
/// The flattened pair list is partitioned into contiguous chunks, one
/// per thread, which balances well because every pair costs roughly the
/// same. Each worker owns a private [`PairArena`] for the whole
/// matrix, so workers never contend and never allocate per pair.
///
/// # Errors
/// As [`pairwise_matrix`]. The first error encountered (by pair order)
/// is returned.
pub fn pairwise_matrix_parallel(
    orders: &[BucketOrder],
    metric: BatchMetric,
    threads: usize,
) -> Result<DistanceMatrix, MetricsError> {
    let prepared = prepare_all(orders)?;
    pairwise_matrix_prepared_parallel(&prepared, metric, threads)
}

/// [`pairwise_matrix_parallel`] over already-prepared views.
///
/// # Errors
/// As [`pairwise_matrix_parallel`].
pub fn pairwise_matrix_prepared_parallel(
    prepared: &[PreparedRanking<'_>],
    metric: BatchMetric,
    threads: usize,
) -> Result<DistanceMatrix, MetricsError> {
    let m = prepared.len();
    if threads <= 1 || m < 4 {
        return pairwise_matrix_prepared(prepared, metric);
    }
    // Flattened list of unordered pairs.
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (i + 1..m).map(move |j| (i, j)))
        .collect();
    let mut results: Vec<Result<u64, MetricsError>> = Vec::with_capacity(pairs.len());
    results.resize_with(pairs.len(), || Ok(0));

    std::thread::scope(|scope| {
        // Chunk the results buffer so each worker owns a disjoint slice.
        let chunk = pairs.len().div_ceil(threads);
        for (t, res_chunk) in results.chunks_mut(chunk).enumerate() {
            let pairs = &pairs;
            let prepared = &prepared;
            let start = t * chunk;
            scope.spawn(move || {
                let mut arena = PairArena::new();
                for (off, slot) in res_chunk.iter_mut().enumerate() {
                    let (i, j) = pairs[start + off];
                    *slot = metric.prepared_in(&mut arena, &prepared[i], &prepared[j]);
                }
            });
        }
    });

    let mut values = vec![0u64; m * m];
    for ((i, j), r) in pairs.into_iter().zip(results) {
        let v = r?;
        values[i * m + j] = v;
        values[j * m + i] = v;
    }
    Ok(DistanceMatrix { m, values })
}

/// Computes the pairwise matrix single-threaded with an arbitrary
/// distance function, calling it once per unordered pair. This is the
/// naive reference path — the prepared engine must match it exactly —
/// and the escape hatch for distances without a prepared kernel.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if the rankings differ in domain, or
/// any error from the distance function.
pub fn pairwise_matrix_with<D>(orders: &[BucketOrder], d: D) -> Result<DistanceMatrix, MetricsError>
where
    D: Fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError>,
{
    let m = orders.len();
    for w in orders.windows(2) {
        check_same_domain(&w[0], &w[1])?;
    }
    let mut values = vec![0u64; m * m];
    for i in 0..m {
        for j in i + 1..m {
            let v = d(&orders[i], &orders[j])?;
            values[i * m + j] = v;
            values[j * m + i] = v;
        }
    }
    Ok(DistanceMatrix { m, values })
}

/// [`pairwise_matrix_with`], parallelized over `threads` scoped worker
/// threads with the same chunked pair-list partitioning as
/// [`pairwise_matrix_parallel`].
///
/// # Errors
/// As [`pairwise_matrix_with`]. The first error encountered (by pair
/// order) is returned.
pub fn pairwise_matrix_parallel_with<D>(
    orders: &[BucketOrder],
    d: D,
    threads: usize,
) -> Result<DistanceMatrix, MetricsError>
where
    D: Fn(&BucketOrder, &BucketOrder) -> Result<u64, MetricsError> + Sync,
{
    let m = orders.len();
    if threads <= 1 || m < 4 {
        return pairwise_matrix_with(orders, d);
    }
    for w in orders.windows(2) {
        check_same_domain(&w[0], &w[1])?;
    }
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (i + 1..m).map(move |j| (i, j)))
        .collect();
    let mut results: Vec<Result<u64, MetricsError>> = Vec::with_capacity(pairs.len());
    results.resize_with(pairs.len(), || Ok(0));

    std::thread::scope(|scope| {
        let chunk = pairs.len().div_ceil(threads);
        for (t, res_chunk) in results.chunks_mut(chunk).enumerate() {
            let pairs = &pairs;
            let d = &d;
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in res_chunk.iter_mut().enumerate() {
                    let (i, j) = pairs[start + off];
                    *slot = d(&orders[i], &orders[j]);
                }
            });
        }
    });

    let mut values = vec![0u64; m * m];
    for ((i, j), r) in pairs.into_iter().zip(results) {
        let v = r?;
        values[i * m + j] = v;
        values[j * m + i] = v;
    }
    Ok(DistanceMatrix { m, values })
}

/// Per-ranking score vectors for a weighted matrix, after validating
/// the shared domain and the weights' length once.
fn weighted_scores_all(
    orders: &[BucketOrder],
    metric: WeightedMetric,
    w: &Weights,
) -> Result<Vec<Vec<u64>>, MetricsError> {
    for pair in orders.windows(2) {
        check_same_domain(&pair[0], &pair[1])?;
    }
    orders.iter().map(|o| metric.element_scores(o, w)).collect()
}

fn l1_gap(a: &[u64], b: &[u64]) -> u64 {
    a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum()
}

/// Computes the weighted pairwise matrix single-threaded: each
/// ranking's score vector is computed **once**, then all `m(m−1)/2`
/// pairs are plain `L1` zips — the weighted analogue of
/// [`pairwise_matrix`].
///
/// # Errors
/// [`MetricsError::DomainMismatch`] /
/// [`MetricsError::WeightsLengthMismatch`].
pub fn weighted_pairwise_matrix(
    orders: &[BucketOrder],
    metric: WeightedMetric,
    w: &Weights,
) -> Result<DistanceMatrix, MetricsError> {
    let scores = weighted_scores_all(orders, metric, w)?;
    let m = orders.len();
    let mut values = vec![0u64; m * m];
    for i in 0..m {
        for j in i + 1..m {
            let v = l1_gap(&scores[i], &scores[j]);
            values[i * m + j] = v;
            values[j * m + i] = v;
        }
    }
    Ok(DistanceMatrix { m, values })
}

/// [`weighted_pairwise_matrix`] with `threads` scoped worker threads
/// over the same chunked pair-list partitioning as
/// [`pairwise_matrix_parallel`]. Score vectors are computed once up
/// front on the calling thread; the workers only read them.
///
/// # Errors
/// As [`weighted_pairwise_matrix`].
pub fn weighted_pairwise_matrix_parallel(
    orders: &[BucketOrder],
    metric: WeightedMetric,
    w: &Weights,
    threads: usize,
) -> Result<DistanceMatrix, MetricsError> {
    let m = orders.len();
    if threads <= 1 || m < 4 {
        return weighted_pairwise_matrix(orders, metric, w);
    }
    let scores = weighted_scores_all(orders, metric, w)?;
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (i + 1..m).map(move |j| (i, j)))
        .collect();
    let mut results = vec![0u64; pairs.len()];

    std::thread::scope(|scope| {
        let chunk = pairs.len().div_ceil(threads);
        for (t, res_chunk) in results.chunks_mut(chunk).enumerate() {
            let pairs = &pairs;
            let scores = &scores;
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in res_chunk.iter_mut().enumerate() {
                    let (i, j) = pairs[start + off];
                    *slot = l1_gap(&scores[i], &scores[j]);
                }
            });
        }
    });

    let mut values = vec![0u64; m * m];
    for ((i, j), v) in pairs.into_iter().zip(results) {
        values[i * m + j] = v;
        values[j * m + i] = v;
    }
    Ok(DistanceMatrix { m, values })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<BucketOrder> {
        (0..9)
            .map(|i| {
                let keys: Vec<i64> = (0..12).map(|e| ((e * (i + 2) + i) % 5) as i64).collect();
                BucketOrder::from_keys(&keys)
            })
            .collect()
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let p = profile();
        let mx = pairwise_matrix(&p, BatchMetric::KProfX2).unwrap();
        assert_eq!(mx.len(), 9);
        assert!(!mx.is_empty());
        for i in 0..9 {
            assert_eq!(mx.get(i, i), 0);
            for j in 0..9 {
                assert_eq!(mx.get(i, j), mx.get(j, i));
            }
        }
    }

    #[test]
    fn prepared_engine_matches_naive_reference_for_all_metrics() {
        let p = profile();
        for metric in BatchMetric::ALL {
            let naive = pairwise_matrix_with(&p, |a, b| metric.direct(a, b)).unwrap();
            let seq = pairwise_matrix(&p, metric).unwrap();
            assert_eq!(naive, seq, "{} sequential", metric.name());
            for threads in [1usize, 2, 3, 8] {
                let par = pairwise_matrix_parallel(&p, metric, threads).unwrap();
                assert_eq!(naive, par, "{} threads = {threads}", metric.name());
            }
        }
    }

    #[test]
    fn prepared_views_are_reusable_across_metrics() {
        let p = profile();
        let prepared = prepare_all(&p).unwrap();
        for metric in BatchMetric::ALL {
            let from_views = pairwise_matrix_prepared(&prepared, metric).unwrap();
            let from_orders = pairwise_matrix(&p, metric).unwrap();
            assert_eq!(from_views, from_orders, "{}", metric.name());
            let par = pairwise_matrix_prepared_parallel(&prepared, metric, 4).unwrap();
            assert_eq!(from_views, par, "{} parallel", metric.name());
        }
    }

    #[test]
    fn medoid_matches_best_input_semantics() {
        let p = profile();
        let mx = pairwise_matrix(&p, BatchMetric::FProfX2).unwrap();
        let (medoid, total) = mx.medoid().unwrap();
        // Recompute directly.
        let direct: Vec<u64> = (0..p.len())
            .map(|i| {
                p.iter()
                    .map(|s| crate::footrule::fprof_x2(&p[i], s).unwrap())
                    .sum()
            })
            .collect();
        assert_eq!(total, direct[medoid]);
        assert_eq!(total, *direct.iter().min().unwrap());
        assert!(mx.total() > 0);
    }

    #[test]
    fn weighted_matrix_matches_naive_and_prepared_paths() {
        let p = profile();
        let w = Weights::from_units((1..=12u64).rev().collect()).unwrap();
        for metric in WeightedMetric::ALL {
            let naive = pairwise_matrix_with(&p, |a, b| metric.naive(a, b, &w)).unwrap();
            let mx = weighted_pairwise_matrix(&p, metric, &w).unwrap();
            assert_eq!(naive, mx, "{} sequential", metric.name());
            for threads in [1usize, 2, 3, 8] {
                let par = weighted_pairwise_matrix_parallel(&p, metric, &w, threads).unwrap();
                assert_eq!(naive, par, "{} threads = {threads}", metric.name());
            }
            // The arena kernel agrees with the matrix entries too.
            let prepared = prepare_all(&p).unwrap();
            let mut arena = PairArena::new();
            assert_eq!(
                metric
                    .prepared_in(&mut arena, &prepared[0], &prepared[1], &w)
                    .unwrap(),
                mx.get(0, 1),
                "{} arena kernel",
                metric.name()
            );
        }
    }

    #[test]
    fn weighted_matrix_rejects_bad_shapes() {
        let p = profile();
        let short = Weights::uniform(3);
        for metric in WeightedMetric::ALL {
            assert!(matches!(
                weighted_pairwise_matrix(&p, metric, &short),
                Err(MetricsError::WeightsLengthMismatch { weights: 3, domain: 12 })
            ));
            let mixed = vec![BucketOrder::trivial(3), BucketOrder::trivial(4)];
            assert!(weighted_pairwise_matrix_parallel(&mixed, metric, &short, 4).is_err());
        }
    }

    #[test]
    fn domain_mismatch_detected() {
        let p = vec![BucketOrder::trivial(3), BucketOrder::trivial(4)];
        assert!(pairwise_matrix(&p, BatchMetric::KProfX2).is_err());
        assert!(pairwise_matrix_parallel(&p, BatchMetric::KProfX2, 4).is_err());
        assert!(pairwise_matrix_with(&p, crate::kendall::kprof_x2).is_err());
        assert!(pairwise_matrix_parallel_with(&p, crate::kendall::kprof_x2, 4).is_err());
    }

    #[test]
    fn degenerate_sizes() {
        let empty: Vec<BucketOrder> = vec![];
        let mx = pairwise_matrix(&empty, BatchMetric::KProfX2).unwrap();
        assert!(mx.is_empty());
        assert_eq!(mx.medoid(), None);
        let one = vec![BucketOrder::trivial(3)];
        let mx = pairwise_matrix_parallel(&one, BatchMetric::KProfX2, 4).unwrap();
        assert_eq!(mx.len(), 1);
        assert_eq!(mx.medoid(), Some((0, 0)));
    }
}
