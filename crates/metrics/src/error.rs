//! Error type for metric computations.

use bucketrank_core::CoreError;
use std::fmt;

/// Errors produced by metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricsError {
    /// The two rankings do not share a domain.
    DomainMismatch {
        /// Domain size of the left ranking.
        left: usize,
        /// Domain size of the right ranking.
        right: usize,
    },
    /// The metric is defined only for full rankings (permutations) but an
    /// input had ties.
    NotFullRanking,
    /// The metric is defined only for top-k lists but an input was not one,
    /// or the two inputs had different `k`.
    NotTopK,
    /// The location parameter `ℓ` of `F^(ℓ)` must exceed `k`.
    InvalidLocationParameter,
    /// A weight entry was rejected: negative, non-finite, non-integral,
    /// over [`crate::weighted::MAX_WEIGHT`], or pushing the running
    /// total past the overflow-safety bound.
    InvalidWeight {
        /// Index of the offending entry in the weight vector.
        index: usize,
    },
    /// The weight vector's length does not match the rankings' domain.
    WeightsLengthMismatch {
        /// Length of the weight vector.
        weights: usize,
        /// Domain size of the rankings.
        domain: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MetricsError::DomainMismatch { left, right } => write!(
                f,
                "rankings have different domains (sizes {left} and {right})"
            ),
            MetricsError::NotFullRanking => {
                write!(f, "metric requires full rankings (no ties)")
            }
            MetricsError::NotTopK => {
                write!(f, "metric requires two top-k lists with the same k")
            }
            MetricsError::InvalidLocationParameter => {
                write!(f, "location parameter ℓ must be greater than k")
            }
            MetricsError::InvalidWeight { index } => {
                write!(f, "invalid weight at index {index}")
            }
            MetricsError::WeightsLengthMismatch { weights, domain } => write!(
                f,
                "weight vector length {weights} does not match domain size {domain}"
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

impl From<CoreError> for MetricsError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::DomainMismatch { left, right } => {
                MetricsError::DomainMismatch { left, right }
            }
            // Metric code only funnels domain mismatches through this
            // conversion; anything else indicates an internal bug.
            other => unreachable!("unexpected core error in metrics: {other}"),
        }
    }
}

/// Checks that two rankings share a domain.
pub(crate) fn check_same_domain(
    a: &bucketrank_core::BucketOrder,
    b: &bucketrank_core::BucketOrder,
) -> Result<(), MetricsError> {
    if a.len() != b.len() {
        return Err(MetricsError::DomainMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MetricsError::DomainMismatch { left: 2, right: 3 }
            .to_string()
            .contains("2 and 3"));
        assert!(MetricsError::NotFullRanking.to_string().contains("full"));
    }

    #[test]
    fn from_core_error() {
        let e: MetricsError = CoreError::DomainMismatch { left: 1, right: 2 }.into();
        assert_eq!(e, MetricsError::DomainMismatch { left: 1, right: 2 });
    }
}
