//! Metrics between partial rankings, after Fagin, Kumar, Mahdian,
//! Sivakumar and Vee, *"Comparing and Aggregating Rankings with Ties"*
//! (PODS 2004).
//!
//! The paper defines four metrics on bucket orders over a fixed domain and
//! proves they are within constant multiples of each other (Theorem 7):
//!
//! | metric | definition | here |
//! |---|---|---|
//! | `Kprof` | Kendall tau with penalty `p = 1/2` for pairs tied in exactly one ranking; equivalently `L1` between K-profiles | [`kendall::kprof_x2`] |
//! | `Fprof` | `L1` between position vectors (F-profiles) | [`footrule::fprof_x2`] |
//! | `KHaus` | Hausdorff–Kendall over the sets of full refinements | [`hausdorff::khaus`] |
//! | `FHaus` | Hausdorff–footrule over the sets of full refinements | [`hausdorff::fhaus`] |
//!
//! # Exact arithmetic
//!
//! Every metric value in the paper is a multiple of `1/2`, so this crate
//! returns **exact integers** with an explicit scale:
//!
//! * functions suffixed `_x2` return **twice** the paper's value
//!   (`Kprof`, `Fprof`, `Kavg`, `F^(ℓ)`);
//! * `KHaus`, `FHaus` and the full-ranking `K`, `F` are integers already
//!   and are returned unscaled.
//!
//! Floating-point convenience wrappers ([`kendall::kprof`],
//! [`footrule::fprof`], …) divide at the boundary.
//!
//! # Example
//!
//! ```
//! use bucketrank_core::BucketOrder;
//! use bucketrank_metrics::{footrule, hausdorff, kendall};
//!
//! let sigma = BucketOrder::from_buckets(3, vec![vec![0, 1], vec![2]]).unwrap();
//! let tau = BucketOrder::from_buckets(3, vec![vec![0], vec![1], vec![2]]).unwrap();
//!
//! let kp2 = kendall::kprof_x2(&sigma, &tau).unwrap(); // 2·Kprof
//! let fp2 = footrule::fprof_x2(&sigma, &tau).unwrap(); // 2·Fprof
//! let kh = hausdorff::khaus(&sigma, &tau).unwrap();
//! let fh = hausdorff::fhaus(&sigma, &tau).unwrap();
//!
//! // Theorem 7 equivalences, in scaled units:
//! assert!(kp2 <= fp2 && fp2 <= 2 * kp2);          // Kprof ≤ Fprof ≤ 2·Kprof
//! assert!(kh <= fh && fh <= 2 * kh);              // KHaus ≤ FHaus ≤ 2·KHaus
//! assert!(kp2 <= 2 * kh && kh <= kp2);            // Kprof ≤ KHaus ≤ 2·Kprof
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod batch;
mod error;
pub mod footrule;
pub mod full;
pub mod hausdorff;
pub mod kendall;
pub mod near;
pub mod normalized;
pub mod pairs;
pub mod prepared;
pub mod profile;
pub mod related;
pub mod topk;
pub mod weighted;

pub use error::MetricsError;
pub use pairs::PairCounts;
pub use prepared::{PairArena, PreparedRanking};
pub use weighted::Weights;
