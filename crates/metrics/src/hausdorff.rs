//! The Hausdorff metrics `FHaus` and `KHaus` (Section 3.2).
//!
//! For partial rankings `σ`, `τ`, the Hausdorff distance under a base
//! metric `d` on full rankings is
//!
//! ```text
//! max { max_{σ̄⪯σ} min_{τ̄⪯τ} d(σ̄, τ̄),  max_{τ̄⪯τ} min_{σ̄⪯σ} d(σ̄, τ̄) }
//! ```
//!
//! — a max-min over exponentially many refinements. Theorem 5 shows both
//! sides are witnessed by two explicitly constructible refinement pairs:
//! with an arbitrary full ranking `ρ`,
//!
//! ```text
//! σ1 = ρ∗τᴿ∗σ,  τ1 = ρ∗σ∗τ,    σ2 = ρ∗τ∗σ,  τ2 = ρ∗σᴿ∗τ
//! dHaus(σ, τ) = max { d(σ1, τ1), d(σ2, τ2) }
//! ```
//!
//! Proposition 6 additionally gives the closed form
//! `KHaus(σ, τ) = |U| + max{|S|, |T|}` over the pair statistics, which we
//! use as the primary `O(n log n)` implementation.

use crate::error::check_same_domain;
use crate::pairs::pair_counts;
use crate::{full, MetricsError};
use bucketrank_core::refine::{full_refinements, star_chain};
use bucketrank_core::BucketOrder;

/// `KHaus(σ, τ)` via Proposition 6: `|U| + max{|S|, |T|}`. `O(n log n)`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let c = pair_counts(sigma, tau)?;
    Ok(c.discordant + c.tied_left_only.max(c.tied_right_only))
}

/// The two candidate refinement pairs of Theorem 5, one of which exhibits
/// the Hausdorff distance for **both** `F` and `K`: `((σ1, τ1), (σ2, τ2))`.
///
/// Ties left by the chained refinements are broken by the identity ranking
/// (the theorem's arbitrary `ρ`), identically on both sides.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
#[allow(clippy::type_complexity)]
pub fn theorem5_witnesses(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<((BucketOrder, BucketOrder), (BucketOrder, BucketOrder)), MetricsError> {
    check_same_domain(sigma, tau)?;
    let rho = BucketOrder::identity(sigma.len());
    let sigma_r = sigma.reverse();
    let tau_r = tau.reverse();
    let s1 = star_chain(&[&rho, &tau_r], sigma)?;
    let t1 = star_chain(&[&rho, sigma], tau)?;
    let s2 = star_chain(&[&rho, tau], sigma)?;
    let t2 = star_chain(&[&rho, &sigma_r], tau)?;
    Ok(((s1, t1), (s2, t2)))
}

/// `FHaus(σ, τ)` via the Theorem 5 characterization. The witnesses are
/// full rankings, so the value is an exact integer in the paper's units.
/// `O(n log n)`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let ((s1, t1), (s2, t2)) = theorem5_witnesses(sigma, tau)?;
    Ok(full::footrule(&s1, &t1)?.max(full::footrule(&s2, &t2)?))
}

/// `KHaus(σ, τ)` via the Theorem 5 characterization (used to cross-check
/// [`khaus`]; both are `O(n log n)` but the closed form is cheaper).
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_theorem5(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    let ((s1, t1), (s2, t2)) = theorem5_witnesses(sigma, tau)?;
    Ok(full::kendall(&s1, &t1)?.max(full::kendall(&s2, &t2)?))
}

/// Lemma 3 as a public API: the distance from a **full** ranking `sigma`
/// to the *nearest* full refinement of `tau`, for both metrics at once:
/// returns `(K(σ, σ∗τ), F(σ, σ∗τ))`. The minimizing refinement itself is
/// `star(σ, τ)`.
///
/// This is the natural "how far is my permutation from being a
/// refinement of this partial order" query (zero iff `σ ⪯ τ`).
///
/// # Errors
/// [`MetricsError::NotFullRanking`] if `sigma` has ties;
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn nearest_refinement_distance(
    sigma: &BucketOrder,
    tau: &BucketOrder,
) -> Result<(u64, u64), MetricsError> {
    check_same_domain(sigma, tau)?;
    if !sigma.is_full() {
        return Err(MetricsError::NotFullRanking);
    }
    let nearest = bucketrank_core::refine::star(sigma, tau)?;
    Ok((
        full::kendall(sigma, &nearest)?,
        full::footrule(sigma, &nearest)?,
    ))
}

/// Generic Hausdorff distance between two finite sets under a distance
/// function (equation (2) of the paper).
///
/// # Panics
/// Panics if either set is empty.
pub fn hausdorff_sets<T, D: Fn(&T, &T) -> u64>(a: &[T], b: &[T], d: D) -> u64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "Hausdorff distance requires nonempty sets"
    );
    let one_sided = |xs: &[T], ys: &[T]| -> u64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| d(x, y)).min().expect("nonempty"))
            .max()
            .expect("nonempty")
    };
    one_sided(a, b).max(one_sided(b, a))
}

/// Brute-force `FHaus` by enumerating all full refinements. Exponential;
/// verification on small domains only.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fhaus_brute(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let refs_s: Vec<BucketOrder> = full_refinements(sigma).collect();
    let refs_t: Vec<BucketOrder> = full_refinements(tau).collect();
    Ok(hausdorff_sets(&refs_s, &refs_t, |a, b| {
        full::footrule(a, b).expect("full refinements share the domain")
    }))
}

/// Brute-force `KHaus` by enumerating all full refinements. Exponential;
/// verification on small domains only.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn khaus_brute(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let refs_s: Vec<BucketOrder> = full_refinements(sigma).collect();
    let refs_t: Vec<BucketOrder> = full_refinements(tau).collect();
    Ok(hausdorff_sets(&refs_s, &refs_t, |a, b| {
        full::kendall(a, b).expect("full refinements share the domain")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;
    use bucketrank_core::ElementId;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn khaus_closed_form_matches_theorem5_and_brute_exhaustive() {
        let orders = all_bucket_orders(4);
        for a in &orders {
            for b in &orders {
                let closed = khaus(a, b).unwrap();
                assert_eq!(closed, khaus_theorem5(a, b).unwrap(), "{a:?} {b:?}");
            }
        }
        // Brute force is heavier; restrict to n = 3 exhaustive.
        for a in all_bucket_orders(3) {
            for b in all_bucket_orders(3) {
                assert_eq!(khaus(&a, &b).unwrap(), khaus_brute(&a, &b).unwrap());
            }
        }
    }

    #[test]
    fn fhaus_theorem5_matches_brute_exhaustive() {
        for a in all_bucket_orders(3) {
            for b in all_bucket_orders(3) {
                assert_eq!(
                    fhaus(&a, &b).unwrap(),
                    fhaus_brute(&a, &b).unwrap(),
                    "{a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn fhaus_matches_brute_on_n4_spot() {
        // A non-exhaustive but tie-heavy slice of n = 4.
        let cases = [
            bo(4, vec![vec![0, 1, 2, 3]]),
            bo(4, vec![vec![0, 1], vec![2, 3]]),
            bo(4, vec![vec![3], vec![0, 1, 2]]),
            bo(4, vec![vec![1, 2], vec![0], vec![3]]),
            BucketOrder::identity(4),
            BucketOrder::identity(4).reverse(),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(fhaus(a, b).unwrap(), fhaus_brute(a, b).unwrap());
                assert_eq!(khaus(a, b).unwrap(), khaus_brute(a, b).unwrap());
            }
        }
    }

    #[test]
    fn hausdorff_metrics_reduce_to_base_on_full_rankings() {
        let a = BucketOrder::from_permutation(&[2, 0, 3, 1]).unwrap();
        let b = BucketOrder::from_permutation(&[1, 3, 0, 2]).unwrap();
        assert_eq!(khaus(&a, &b).unwrap(), full::kendall(&a, &b).unwrap());
        assert_eq!(fhaus(&a, &b).unwrap(), full::footrule(&a, &b).unwrap());
    }

    #[test]
    fn distance_to_trivial_order() {
        // σ = identity, τ = everything tied: every pair is tied in τ only,
        // so KHaus = max{0, C(n,2)} = C(n,2).
        let n = 5;
        let id = BucketOrder::identity(n);
        let triv = BucketOrder::trivial(n);
        assert_eq!(khaus(&id, &triv).unwrap(), 10);
        assert_eq!(khaus(&triv, &id).unwrap(), 10);
    }

    #[test]
    fn hausdorff_metrics_are_metrics_on_n3() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let kh = khaus(a, b).unwrap();
                let fh = fhaus(a, b).unwrap();
                assert_eq!(kh, khaus(b, a).unwrap());
                assert_eq!(fh, fhaus(b, a).unwrap());
                assert_eq!(kh == 0, a == b);
                assert_eq!(fh == 0, a == b);
                for c in &orders {
                    assert!(khaus(a, c).unwrap() <= kh + khaus(b, c).unwrap());
                    assert!(fhaus(a, c).unwrap() <= fh + fhaus(b, c).unwrap());
                }
            }
        }
    }

    #[test]
    fn nearest_refinement_is_minimal_and_detects_refinements() {
        use bucketrank_core::refine::{full_refinements, is_refinement};
        let tau = bo(5, vec![vec![0, 1], vec![2, 3, 4]]);
        let sigma = BucketOrder::from_permutation(&[2, 0, 1, 4, 3]).unwrap();
        let (k, f) = nearest_refinement_distance(&sigma, &tau).unwrap();
        // Brute-force minima over all refinements.
        let (mut bk, mut bf) = (u64::MAX, u64::MAX);
        for t in full_refinements(&tau) {
            bk = bk.min(full::kendall(&sigma, &t).unwrap());
            bf = bf.min(full::footrule(&sigma, &t).unwrap());
        }
        assert_eq!(k, bk);
        assert_eq!(f, bf);
        // Zero iff σ refines τ.
        let good = BucketOrder::from_permutation(&[1, 0, 4, 2, 3]).unwrap();
        assert!(is_refinement(&good, &tau).unwrap());
        assert_eq!(nearest_refinement_distance(&good, &tau).unwrap(), (0, 0));
        // Tied σ rejected.
        assert!(nearest_refinement_distance(&tau, &tau).is_err());
    }

    #[test]
    fn generic_hausdorff() {
        let a = [0i64, 10];
        let b = [2i64, 3];
        let d = |x: &i64, y: &i64| x.abs_diff(*y);
        assert_eq!(hausdorff_sets(&a, &b, d), 7); // 10 is 7 from {2,3}
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn generic_hausdorff_empty_panics() {
        hausdorff_sets::<i64, _>(&[], &[1], |x, y| x.abs_diff(*y));
    }

    #[test]
    fn domain_mismatch() {
        let a = BucketOrder::trivial(2);
        let b = BucketOrder::trivial(3);
        assert!(khaus(&a, &b).is_err());
        assert!(fhaus(&a, &b).is_err());
    }
}
