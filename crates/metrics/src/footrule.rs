//! Spearman-footrule generalizations to partial rankings: the profile
//! metric `Fprof` (Section 3.1) and the footrule with location parameter
//! `F^(ℓ)` for top-k lists (Appendix A.3).

use crate::error::check_same_domain;
use crate::MetricsError;
use bucketrank_core::{BucketOrder, ElementId, Pos};

/// **Twice** the profile footrule metric: `2·Fprof(σ, τ)`, exactly.
///
/// `Fprof` is the `L1` distance between the position vectors (F-profiles)
/// `⟨σ(d)⟩` and `⟨τ(d)⟩`. Positions are multiples of `1/2`, so `2·Fprof`
/// is an integer. `O(n)`.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] on differing domains.
pub fn fprof_x2(sigma: &BucketOrder, tau: &BucketOrder) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    let mut total = 0u64;
    for e in 0..sigma.len() as ElementId {
        total += sigma.position(e).abs_diff(tau.position(e));
    }
    Ok(total)
}

/// The profile footrule metric `Fprof(σ, τ)` as a float. Prefer
/// [`fprof_x2`] when exactness matters.
pub fn fprof(sigma: &BucketOrder, tau: &BucketOrder) -> Result<f64, MetricsError> {
    Ok(fprof_x2(sigma, tau)? as f64 / 2.0)
}

/// `L1` distance between two score vectors, in half-units. The aggregation
/// objective `Σ_i L1(τ, σ_i)` of Section 6 is this quantity summed over
/// the input rankings' F-profiles.
///
/// # Errors
/// [`MetricsError::DomainMismatch`] if lengths differ.
pub fn l1_x2(f: &[Pos], g: &[Pos]) -> Result<u64, MetricsError> {
    if f.len() != g.len() {
        return Err(MetricsError::DomainMismatch {
            left: f.len(),
            right: g.len(),
        });
    }
    Ok(f.iter().zip(g).map(|(a, b)| a.abs_diff(*b)).sum())
}

/// **Twice** the footrule distance with location parameter `ℓ`,
/// `2·F^(ℓ)(σ, τ)`, for two top-k lists with the same `k`
/// (Appendix A.3).
///
/// Every element ranked in the top `k` keeps its position; every
/// bottom-bucket element is treated as if at position `ℓ` (given in
/// half-units via [`Pos`]). The paper shows
/// `Fprof(σ, τ) = F^(ℓ)(σ, τ)` at `ℓ = (|D| + k + 1)/2`; see
/// [`canonical_location`].
///
/// `k` is passed explicitly because the shape alone can be ambiguous — a
/// full ranking is simultaneously a top-`n` and a top-`(n−1)` list.
///
/// # Errors
/// * [`MetricsError::NotTopK`] unless both inputs are top-`k` lists for the
///   given `k`;
/// * [`MetricsError::InvalidLocationParameter`] unless `ℓ > k`;
/// * [`MetricsError::DomainMismatch`] on differing domains.
pub fn footrule_location_x2(
    sigma: &BucketOrder,
    tau: &BucketOrder,
    k: usize,
    ell: Pos,
) -> Result<u64, MetricsError> {
    check_same_domain(sigma, tau)?;
    if !is_top_k_for(sigma, k) || !is_top_k_for(tau, k) {
        return Err(MetricsError::NotTopK);
    }
    if ell <= Pos::from_rank(k as i64) {
        return Err(MetricsError::InvalidLocationParameter);
    }
    let cutoff = Pos::from_rank(k as i64);
    let value = |o: &BucketOrder, e: ElementId| -> Pos {
        let p = o.position(e);
        if p <= cutoff {
            p
        } else {
            ell
        }
    };
    let mut total = 0u64;
    for e in 0..sigma.len() as ElementId {
        total += value(sigma, e).abs_diff(value(tau, e));
    }
    Ok(total)
}

/// Whether `o` has the shape of a top-`k` list for this specific `k`:
/// `k` singleton buckets followed by one bucket holding the rest of the
/// domain (none when `k = |D|`).
pub fn is_top_k_for(o: &BucketOrder, k: usize) -> bool {
    let n = o.len();
    if k > n {
        return false;
    }
    let expected_buckets = if n == k { k } else { k + 1 };
    o.num_buckets() == expected_buckets && o.buckets().iter().take(k).all(|b| b.len() == 1)
}

/// The canonical location parameter `ℓ = (|D| + k + 1)/2` at which
/// `F^(ℓ)` coincides with `Fprof` on top-k lists (Appendix A.3), in
/// half-units.
pub fn canonical_location(n: usize, k: usize) -> Pos {
    Pos::from_half_units((n + k + 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_core::consistent::all_bucket_orders;

    fn bo(n: usize, buckets: Vec<Vec<ElementId>>) -> BucketOrder {
        BucketOrder::from_buckets(n, buckets).unwrap()
    }

    #[test]
    fn fprof_basic() {
        // σ = [0 1 | 2] positions (1.5, 1.5, 3); τ = [0 | 1 | 2] (1, 2, 3).
        let s = bo(3, vec![vec![0, 1], vec![2]]);
        let t = BucketOrder::identity(3);
        // 2·Fprof = |3-2| + |3-4| + |6-6| = 2, so Fprof = 1.
        assert_eq!(fprof_x2(&s, &t).unwrap(), 2);
        assert_eq!(fprof(&s, &t).unwrap(), 1.0);
    }

    #[test]
    fn fprof_is_metric_on_n3() {
        let orders = all_bucket_orders(3);
        for a in &orders {
            for b in &orders {
                let d = fprof_x2(a, b).unwrap();
                assert_eq!(d, fprof_x2(b, a).unwrap());
                assert_eq!(d == 0, a == b, "regularity: {a:?} {b:?}");
                for c in &orders {
                    assert!(fprof_x2(a, c).unwrap() <= d + fprof_x2(b, c).unwrap());
                }
            }
        }
    }

    #[test]
    fn fprof_reduces_to_footrule_on_full_rankings() {
        let a = BucketOrder::from_permutation(&[2, 0, 1, 3]).unwrap();
        let b = BucketOrder::from_permutation(&[3, 1, 0, 2]).unwrap();
        assert_eq!(
            fprof_x2(&a, &b).unwrap(),
            2 * crate::full::footrule(&a, &b).unwrap()
        );
    }

    #[test]
    fn l1_matches_fprof_on_profiles() {
        let s = bo(4, vec![vec![0, 1], vec![2, 3]]);
        let t = bo(4, vec![vec![3], vec![0, 1, 2]]);
        assert_eq!(
            l1_x2(&s.positions(), &t.positions()).unwrap(),
            fprof_x2(&s, &t).unwrap()
        );
        assert!(l1_x2(&s.positions(), &[]).is_err());
    }

    #[test]
    fn location_parameter_identity() {
        // Fprof = F^(ℓ) at ℓ = (n+k+1)/2 for all pairs of top-k lists.
        let n = 6;
        for k in 1..n {
            let tops: Vec<BucketOrder> = top_k_lists(n, k);
            let ell = canonical_location(n, k);
            for a in &tops {
                for b in &tops {
                    assert_eq!(
                        footrule_location_x2(a, b, k, ell).unwrap(),
                        fprof_x2(a, b).unwrap(),
                        "n={n} k={k} a={a:?} b={b:?}"
                    );
                }
            }
        }
    }

    /// A modest sample of top-k lists on n elements (all k-subsets would be
    /// large; use rotations and reversals of the identity prefix).
    fn top_k_lists(n: usize, k: usize) -> Vec<BucketOrder> {
        let mut out = Vec::new();
        let ids: Vec<ElementId> = (0..n as ElementId).collect();
        for rot in 0..n {
            let mut top: Vec<ElementId> = (0..k).map(|i| ids[(rot + i) % n]).collect();
            out.push(BucketOrder::top_k(n, &top).unwrap());
            top.reverse();
            out.push(BucketOrder::top_k(n, &top).unwrap());
        }
        out
    }

    #[test]
    fn location_parameter_validation() {
        let a = BucketOrder::top_k(5, &[0, 1]).unwrap();
        let b = BucketOrder::top_k(5, &[3, 4]).unwrap();
        // ℓ must exceed k.
        assert_eq!(
            footrule_location_x2(&a, &b, 2, Pos::from_rank(2)),
            Err(MetricsError::InvalidLocationParameter)
        );
        assert!(footrule_location_x2(&a, &b, 2, Pos::from_half_units(5)).is_ok());
        // Mismatched k.
        let c = BucketOrder::top_k(5, &[0]).unwrap();
        assert_eq!(
            footrule_location_x2(&a, &c, 2, Pos::from_rank(4)),
            Err(MetricsError::NotTopK)
        );
        // Not a top-k list at all.
        let d = bo(5, vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(
            footrule_location_x2(&a, &d, 2, Pos::from_rank(4)),
            Err(MetricsError::NotTopK)
        );
    }

    #[test]
    fn top_k_shape_check() {
        let full = BucketOrder::identity(4);
        assert!(is_top_k_for(&full, 4));
        assert!(is_top_k_for(&full, 3)); // full ranking is also top-(n-1)
        assert!(!is_top_k_for(&full, 2));
        let t2 = BucketOrder::top_k(4, &[1, 3]).unwrap();
        assert!(is_top_k_for(&t2, 2));
        assert!(!is_top_k_for(&t2, 1));
        assert!(!is_top_k_for(&t2, 3));
        assert!(!is_top_k_for(&t2, 9));
    }

    #[test]
    fn larger_location_parameter_is_its_own_measure() {
        // For ℓ > (n+k+1)/2, F^(ℓ) weighs displaced elements more heavily.
        let n = 6;
        let a = BucketOrder::top_k(n, &[0, 1]).unwrap();
        let b = BucketOrder::top_k(n, &[2, 3]).unwrap();
        let canon = footrule_location_x2(&a, &b, 2, canonical_location(n, 2)).unwrap();
        let heavy = footrule_location_x2(&a, &b, 2, Pos::from_rank(n as i64)).unwrap();
        assert!(heavy > canon);
    }

    #[test]
    fn empty_domain() {
        let e = BucketOrder::trivial(0);
        assert_eq!(fprof_x2(&e, &e).unwrap(), 0);
    }
}
