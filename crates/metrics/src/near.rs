//! Property checkers for distance measures, metrics, and near metrics
//! (Section 2.1).
//!
//! A *distance measure* is nonnegative, symmetric, and regular
//! (`d(x, y) = 0 ⟺ x = y`); a *metric* additionally satisfies the
//! triangle inequality; a *near metric* satisfies the relaxed polygonal
//! inequality `d(x, z) ≤ c·(d(x, x₁) + … + d(x_{n−1}, z))` for a constant
//! `c` independent of the domain size. These checkers power the
//! reproduction of Proposition 13 (the `K^(p)` classification) and the
//! empirical side of Theorem 7.

use bucketrank_core::BucketOrder;

/// A witness that the triangle inequality fails:
/// `d(a, c) > d(a, b) + d(b, c)` at the given indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleViolation {
    /// Index of `a` in the checked slice.
    pub a: usize,
    /// Index of `b` in the checked slice.
    pub b: usize,
    /// Index of `c` in the checked slice.
    pub c: usize,
    /// The direct distance `d(a, c)`.
    pub direct: f64,
    /// The detour sum `d(a, b) + d(b, c)`.
    pub detour: f64,
}

/// How a binary function fails to be a distance measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistanceMeasureViolation {
    /// `d(x, y) < 0` at indices `(x, y)`.
    Negative(usize, usize),
    /// `d(x, y) ≠ d(y, x)` at indices `(x, y)`.
    Asymmetric(usize, usize),
    /// `d(x, x) ≠ 0` at index `x`.
    SelfDistanceNonzero(usize),
    /// `d(x, y) = 0` for distinct `x ≠ y` at indices `(x, y)`.
    DistinctAtDistanceZero(usize, usize),
}

/// Checks the distance-measure axioms over every pair from `orders`.
/// Returns the first violation found, or `None` if `d` is a distance
/// measure on this set.
pub fn check_distance_measure<D>(orders: &[BucketOrder], d: D) -> Option<DistanceMeasureViolation>
where
    D: Fn(&BucketOrder, &BucketOrder) -> f64,
{
    for (i, a) in orders.iter().enumerate() {
        if d(a, a) != 0.0 {
            return Some(DistanceMeasureViolation::SelfDistanceNonzero(i));
        }
        for (j, b) in orders.iter().enumerate().skip(i + 1) {
            let ab = d(a, b);
            let ba = d(b, a);
            if ab < 0.0 || ba < 0.0 {
                return Some(DistanceMeasureViolation::Negative(i, j));
            }
            if ab != ba {
                return Some(DistanceMeasureViolation::Asymmetric(i, j));
            }
            if ab == 0.0 && a != b {
                return Some(DistanceMeasureViolation::DistinctAtDistanceZero(i, j));
            }
        }
    }
    None
}

/// Checks the triangle inequality over every ordered triple from `orders`
/// (with a tiny absolute tolerance for float rounding). Returns the first
/// violation, or `None` if the inequality holds throughout.
pub fn check_triangle<D>(orders: &[BucketOrder], d: D) -> Option<TriangleViolation>
where
    D: Fn(&BucketOrder, &BucketOrder) -> f64,
{
    const EPS: f64 = 1e-9;
    for (ai, a) in orders.iter().enumerate() {
        for (bi, b) in orders.iter().enumerate() {
            let ab = d(a, b);
            for (ci, c) in orders.iter().enumerate() {
                let ac = d(a, c);
                let bc = d(b, c);
                if ac > ab + bc + EPS {
                    return Some(TriangleViolation {
                        a: ai,
                        b: bi,
                        c: ci,
                        direct: ac,
                        detour: ab + bc,
                    });
                }
            }
        }
    }
    None
}

/// The worst triangle ratio `d(a, c) / (d(a, b) + d(b, c))` over all
/// triples with a positive detour sum. A value `≤ 1` certifies the
/// triangle inequality on this set; the supremum over all domains is the
/// best constant `c` in the relaxed (length-2) polygonal inequality.
pub fn max_triangle_ratio<D>(orders: &[BucketOrder], d: D) -> Option<f64>
where
    D: Fn(&BucketOrder, &BucketOrder) -> f64,
{
    let mut worst: Option<f64> = None;
    for a in orders {
        for b in orders {
            let ab = d(a, b);
            for c in orders {
                let detour = ab + d(b, c);
                if detour > 0.0 {
                    let r = d(a, c) / detour;
                    if worst.is_none_or(|w| r > w) {
                        worst = Some(r);
                    }
                }
            }
        }
    }
    worst
}

/// The worst polygonal ratio `d(x, z) / Σ d(consecutive)` over the given
/// chains (each chain is a sequence of indices into `orders`). Chains with
/// zero path length are skipped. Used to estimate the near-metric constant
/// `c` for `K^(p)`, `p < 1/2`, on longer paths than triples.
pub fn max_polygonal_ratio<D>(orders: &[BucketOrder], chains: &[Vec<usize>], d: D) -> Option<f64>
where
    D: Fn(&BucketOrder, &BucketOrder) -> f64,
{
    let mut worst: Option<f64> = None;
    for chain in chains {
        if chain.len() < 2 {
            continue;
        }
        let path: f64 = chain
            .windows(2)
            .map(|w| d(&orders[w[0]], &orders[w[1]]))
            .sum();
        if path > 0.0 {
            let direct = d(&orders[chain[0]], &orders[chain[chain.len() - 1]]);
            let r = direct / path;
            if worst.is_none_or(|w| r > w) {
                worst = Some(r);
            }
        }
    }
    worst
}

/// The range of ratios `d1 / d2` over all pairs from `orders` where at
/// least one of the two distances is positive: returns `(min, max)`.
///
/// For equivalent distance measures (Definition 2) this range is contained
/// in `[1/c₂, 1/c₁]` for the equivalence constants; for the paper's metric
/// pairs the proved ranges are e.g. `Kprof/Fprof ∈ [1/2, 1]`.
/// Returns `None` if every pair has both distances zero, or `Some(Err)`
/// semantics are avoided by treating `d2 = 0 < d1` as an infinite ratio
/// (`f64::INFINITY`).
pub fn equivalence_ratio_range<D1, D2>(
    orders: &[BucketOrder],
    d1: D1,
    d2: D2,
) -> Option<(f64, f64)>
where
    D1: Fn(&BucketOrder, &BucketOrder) -> f64,
    D2: Fn(&BucketOrder, &BucketOrder) -> f64,
{
    let mut range: Option<(f64, f64)> = None;
    for (i, a) in orders.iter().enumerate() {
        for b in &orders[i + 1..] {
            let x = d1(a, b);
            let y = d2(a, b);
            if x == 0.0 && y == 0.0 {
                continue;
            }
            let r = if y == 0.0 { f64::INFINITY } else { x / y };
            range = Some(match range {
                None => (r, r),
                Some((lo, hi)) => (lo.min(r), hi.max(r)),
            });
        }
    }
    range
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{footrule, kendall};
    use bucketrank_core::consistent::all_bucket_orders;

    #[test]
    fn kprof_passes_all_checks_on_n3() {
        let orders = all_bucket_orders(3);
        let d = |a: &BucketOrder, b: &BucketOrder| kendall::kprof_x2(a, b).unwrap() as f64;
        assert_eq!(check_distance_measure(&orders, d), None);
        assert_eq!(check_triangle(&orders, d), None);
        assert!(max_triangle_ratio(&orders, d).unwrap() <= 1.0);
    }

    #[test]
    fn k0_fails_regularity() {
        let orders = all_bucket_orders(2);
        let d = |a: &BucketOrder, b: &BucketOrder| kendall::k_p(a, b, 0.0).unwrap();
        assert!(matches!(
            check_distance_measure(&orders, d),
            Some(DistanceMeasureViolation::DistinctAtDistanceZero(_, _))
        ));
    }

    #[test]
    fn k_quarter_fails_triangle_on_n2() {
        let orders = all_bucket_orders(2);
        let d = |a: &BucketOrder, b: &BucketOrder| kendall::k_p(a, b, 0.25).unwrap();
        let v = check_triangle(&orders, d).expect("triangle must fail for p < 1/2");
        assert!(v.direct > v.detour);
        // Worst ratio is 1/(2p) = 2 for the paper's example triple.
        let r = max_triangle_ratio(&orders, d).unwrap();
        assert!((r - 2.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn polygonal_ratio_on_chains() {
        let orders = all_bucket_orders(2);
        // Find indices: τ1 = [0|1], τ2 = [0 1], τ3 = [1|0].
        let idx = |disp: &str| orders.iter().position(|o| o.display() == disp).unwrap();
        let chain = vec![idx("[0 | 1]"), idx("[0 1]"), idx("[1 | 0]")];
        let d = |a: &BucketOrder, b: &BucketOrder| kendall::k_p(a, b, 0.25).unwrap();
        let r = max_polygonal_ratio(&orders, &[chain], d).unwrap();
        assert!((r - 2.0).abs() < 1e-12);
        // Degenerate chains are skipped.
        assert_eq!(max_polygonal_ratio(&orders, &[vec![0]], d), None);
    }

    #[test]
    fn equivalence_range_kprof_fprof() {
        let orders = all_bucket_orders(4);
        let (lo, hi) = equivalence_ratio_range(
            &orders,
            |a, b| kendall::kprof_x2(a, b).unwrap() as f64,
            |a, b| footrule::fprof_x2(a, b).unwrap() as f64,
        )
        .unwrap();
        // Kprof ≤ Fprof ≤ 2·Kprof  ⟹  ratio ∈ [1/2, 1].
        assert!(lo >= 0.5 - 1e-12, "lo = {lo}");
        assert!(hi <= 1.0 + 1e-12, "hi = {hi}");
    }

    #[test]
    fn empty_inputs() {
        let d = |_: &BucketOrder, _: &BucketOrder| 0.0;
        assert_eq!(check_distance_measure(&[], d), None);
        assert_eq!(check_triangle(&[], d), None);
        assert_eq!(max_triangle_ratio(&[], d), None);
        assert_eq!(equivalence_ratio_range(&[], d, d), None);
    }
}
