//! A dependency-free TCP service for rankings with ties.
//!
//! This crate hosts named [`DynamicProfile`](bucketrank_aggregate::DynamicProfile)
//! sessions behind a small length-prefixed binary protocol, so the
//! streaming aggregation engine and the prepared metric kernels can be
//! driven over a socket instead of in-process. It is built entirely on
//! `std` — no async runtime, no serialization framework — in keeping
//! with the workspace's hermetic, path-only dependency policy.
//!
//! The layers, bottom to top:
//!
//! - [`proto`] — the wire format: framed, versioned, bounded requests
//!   and responses with typed decode errors, including the protocol v2
//!   `Batch`/`BatchReply` frames that carry many ops per round trip.
//!   Malformed or oversized input fails the *connection*, never the
//!   process.
//! - [`wal`] — the durability substrate: an append-only write-ahead
//!   log of CRC-framed edit records plus atomic session checkpoints,
//!   with total decoders in the [`proto`] style (torn tails and
//!   corrupt records are typed errors that truncate, never panics).
//! - [`service`] — transport-agnostic request handling: sessions
//!   sharded by a stable name hash, where edits go through a
//!   per-session `DynamicProfile` under the owning shard's lock (and
//!   onto its WAL before acknowledgement when a data directory is
//!   configured), and reads go through immutable published
//!   [`DynamicSnapshot`](bucketrank_aggregate::DynamicSnapshot)s so
//!   they never block writers. Batches dispatch through
//!   [`Service::handle_batch`], which amortizes the session lookup.
//!   Restarting over the same data directory replays every
//!   acknowledged edit; sessions beyond the resident cap park on disk
//!   and fault back in on touch.
//! - [`server`] — the TCP front: a single readiness-based event thread
//!   owning every nonblocking connection (no thread per connection)
//!   and a fixed worker pool behind a bounded job queue with explicit
//!   backpressure ([`Response::Busy`]), per-connection pipelining with
//!   in-order replies, and graceful, drain-the-in-flight shutdown.
//! - [`client`] — a blocking loopback client used by the integration
//!   tests, the CI smoke gate, and `bench_server`; supports batch
//!   calls and K-outstanding pipelining ([`Client::pipeline`]).
//!
//! # Quickstart (loopback)
//!
//! ```
//! use bucketrank_server::{Client, Server, ServerConfig, WirePolicy};
//! use bucketrank_core::BucketOrder;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.create_session("demo", 3, WirePolicy::Lower).unwrap();
//! client.push_voter("demo", &BucketOrder::from_keys(&[0, 1, 1])).unwrap();
//! client.push_voter("demo", &BucketOrder::from_keys(&[0, 1, 2])).unwrap();
//! let median = client.median_order("demo").unwrap();
//! assert_eq!(median.len(), 3);
//!
//! let stats = server.shutdown();
//! assert!(stats.requests >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod service;
mod shard;
pub mod wal;

pub use client::{Client, ClientError, Pipeline, PipelineReply};
pub use proto::{
    ErrorCode, FrameError, MetricKind, ProtoError, Request, Response, ShardStats, WirePolicy,
    WireRequest, WireRule, DEFAULT_MAX_FRAME, MAX_BATCH, MAX_RULES, MAX_SHARDS, PROTO_VERSION,
    PROTO_VERSION_2,
};
pub use server::{Server, ServerConfig, ServerStats};
pub use service::{Service, ServiceConfig, DEFAULT_CHECKPOINT_EVERY, DEFAULT_SHARDS};
pub use wal::{WalError, WalOp, WalRecord};
