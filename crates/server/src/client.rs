//! A blocking, dependency-free client for the wire protocol — the
//! reference consumer used by the integration tests, the CI smoke
//! gate, and the `bench_server` loopback driver.
//!
//! One [`Client`] owns one connection. The typed convenience methods
//! issue one request at a time; for throughput, [`Client::call_batch`]
//! packs many sub-requests into a single v2 `Batch` frame, and
//! [`Client::pipeline`] keeps up to K frames outstanding with strict
//! in-order reply matching (the server guarantees replies in arrival
//! order). Every method decodes the reply into a typed result:
//! server-side failures arrive as [`ClientError::Server`] with the
//! wire [`ErrorCode`], backpressure as [`ClientError::Busy`].

use crate::proto::{
    decode_batch_reply, encode_batch, read_frame, validate_batch, write_frame, ErrorCode,
    FrameError, MetricKind, ProtoError, Request, Response, WirePolicy, WireRule,
    DEFAULT_MAX_FRAME,
};
use bucketrank_core::BucketOrder;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport failure (includes timeouts and the peer dying).
    Io(io::Error),
    /// The server closed the connection (e.g. after a protocol
    /// violation we produced, or a drained shutdown).
    Closed,
    /// The reply could not be decoded.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// The wire failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server rejected the request for backpressure; retry later.
    Busy,
    /// The reply decoded but was not the kind this call expects.
    Unexpected {
        /// A short description of the reply that arrived.
        got: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Busy => write!(f, "server is busy"),
            ClientError::Unexpected { got } => write!(f, "unexpected reply kind: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Closed => ClientError::Closed,
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Proto(e) => ClientError::Proto(e),
        }
    }
}

fn resp_kind(resp: &Response) -> &'static str {
    match resp {
        Response::Pong => "Pong",
        Response::SessionCreated => "SessionCreated",
        Response::SessionDropped => "SessionDropped",
        Response::VoterPushed { .. } => "VoterPushed",
        Response::VoterRemoved => "VoterRemoved",
        Response::VoterReplaced => "VoterReplaced",
        Response::Ranking { .. } => "Ranking",
        Response::CostX2 { .. } => "CostX2",
        Response::RankingCost { .. } => "RankingCost",
        Response::Busy => "Busy",
        Response::Error { .. } => "Error",
        Response::Stats { .. } => "Stats",
        Response::ShutdownAck => "ShutdownAck",
    }
}

/// The blocking connection handle; see the [module docs](self).
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// The underlying [`io::Error`].
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sets both socket timeouts (None = block forever).
    ///
    /// # Errors
    /// The underlying [`io::Error`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Issues one request and returns the **raw reply body** — the
    /// exact bytes the server framed. The differential suite compares
    /// these against locally-encoded expected responses, so the
    /// byte-identical acceptance bar is checked without interpretation.
    ///
    /// # Errors
    /// [`ClientError::Proto`] if the request violates an encoding bound
    /// ([`Request::validate`], e.g. an over-long session name that
    /// `encode` would otherwise truncate); [`ClientError::Io`] /
    /// [`ClientError::Closed`] on transport failure.
    pub fn call_raw(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        req.validate().map_err(ClientError::Proto)?;
        write_frame(&mut self.stream, &req.encode(), self.max_frame)?;
        Ok(read_frame(&mut self.stream, self.max_frame)?)
    }

    /// Issues one request and decodes the typed reply.
    ///
    /// # Errors
    /// Any [`ClientError`] except `Server`/`Busy` (those are values
    /// here; the convenience wrappers turn them into errors).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let body = self.call_raw(req)?;
        Response::decode(&body).map_err(ClientError::Proto)
    }

    fn expect(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Busy => Err(ClientError::Busy),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// [`ClientError`] on transport failure or a non-`Pong` reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Creates a named session over an `n`-element domain.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::SessionExists`] /
    /// [`ErrorCode::BadRequest`], or a transport failure.
    pub fn create_session(
        &mut self,
        name: &str,
        n: usize,
        policy: WirePolicy,
    ) -> Result<(), ClientError> {
        let req = Request::CreateSession {
            name: name.to_owned(),
            n: n as u32,
            policy,
        };
        match self.expect(&req)? {
            Response::SessionCreated => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Drops a session.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::UnknownSession`], or a
    /// transport failure.
    pub fn drop_session(&mut self, name: &str) -> Result<(), ClientError> {
        let req = Request::DropSession {
            name: name.to_owned(),
        };
        match self.expect(&req)? {
            Response::SessionDropped => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Pushes a voter; returns the issued raw voter id.
    ///
    /// # Errors
    /// [`ClientError::Server`] mirroring the engine's typed errors, or
    /// a transport failure.
    pub fn push_voter(&mut self, session: &str, ranking: &BucketOrder) -> Result<u64, ClientError> {
        let req = Request::PushVoter {
            session: session.to_owned(),
            ranking: ranking.clone(),
        };
        match self.expect(&req)? {
            Response::VoterPushed { voter } => Ok(voter),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Removes a live voter.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::UnknownVoter`], or a
    /// transport failure.
    pub fn remove_voter(&mut self, session: &str, voter: u64) -> Result<(), ClientError> {
        let req = Request::RemoveVoter {
            session: session.to_owned(),
            voter,
        };
        match self.expect(&req)? {
            Response::VoterRemoved => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Replaces a live voter's ranking.
    ///
    /// # Errors
    /// [`ClientError::Server`] mirroring the engine's typed errors, or
    /// a transport failure.
    pub fn replace_voter(
        &mut self,
        session: &str,
        voter: u64,
        ranking: &BucketOrder,
    ) -> Result<(), ClientError> {
        let req = Request::ReplaceVoter {
            session: session.to_owned(),
            voter,
            ranking: ranking.clone(),
        };
        match self.expect(&req)? {
            Response::VoterReplaced => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// The session's median order.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::NoVoters`] /
    /// [`ErrorCode::UnknownSession`], or a transport failure.
    pub fn median_order(&mut self, session: &str) -> Result<BucketOrder, ClientError> {
        let req = Request::MedianOrder {
            session: session.to_owned(),
        };
        match self.expect(&req)? {
            Response::Ranking { order } => Ok(order),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// The session's median top-`k`.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::InvalidK`] and
    /// friends, or a transport failure.
    pub fn top_k(&mut self, session: &str, k: usize) -> Result<BucketOrder, ClientError> {
        let req = Request::TopK {
            session: session.to_owned(),
            k: k as u32,
        };
        match self.expect(&req)? {
            Response::Ranking { order } => Ok(order),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Kemeny cost (×2) of a candidate against the session's profile.
    ///
    /// # Errors
    /// [`ClientError::Server`] mirroring the tally's typed errors, or a
    /// transport failure.
    pub fn kemeny_cost_x2(
        &mut self,
        session: &str,
        candidate: &BucketOrder,
    ) -> Result<u64, ClientError> {
        let req = Request::KemenyCost {
            session: session.to_owned(),
            candidate: candidate.clone(),
        };
        match self.expect(&req)? {
            Response::CostX2 { value } => Ok(value),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// A pairwise metric (×2 scale) between two stored voter rankings.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::UnknownVoter`] and
    /// friends, or a transport failure.
    pub fn pair_metric_x2(
        &mut self,
        session: &str,
        metric: MetricKind,
        voter_a: u64,
        voter_b: u64,
    ) -> Result<u64, ClientError> {
        let req = Request::PairMetric {
            session: session.to_owned(),
            metric,
            voter_a,
            voter_b,
        };
        match self.expect(&req)? {
            Response::CostX2 { value } => Ok(value),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Weighted footrule (×2 scale) between two stored voter rankings
    /// under a per-position weight vector (integer units, index `p`
    /// weighting 1-based rank `p + 1`).
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::UnknownVoter`] /
    /// [`ErrorCode::DomainMismatch`] (wrong-length weights) /
    /// [`ErrorCode::BadRequest`] (invalid weight values), or a
    /// transport failure.
    pub fn weighted_dist_x2(
        &mut self,
        session: &str,
        voter_a: u64,
        voter_b: u64,
        weights: &[u64],
    ) -> Result<u64, ClientError> {
        let req = Request::WeightedDist {
            session: session.to_owned(),
            voter_a,
            voter_b,
            weights: weights.to_vec(),
        };
        match self.expect(&req)? {
            Response::CostX2 { value } => Ok(value),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Top-difference distance between two stored voter rankings under
    /// a per-position weight vector, as on
    /// [`weighted_dist_x2`](Client::weighted_dist_x2).
    ///
    /// # Errors
    /// As on [`weighted_dist_x2`](Client::weighted_dist_x2).
    pub fn top_diff(
        &mut self,
        session: &str,
        voter_a: u64,
        voter_b: u64,
        weights: &[u64],
    ) -> Result<u64, ClientError> {
        let req = Request::TopDiff {
            session: session.to_owned(),
            voter_a,
            voter_b,
            weights: weights.to_vec(),
        };
        match self.expect(&req)? {
            Response::CostX2 { value } => Ok(value),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Minmax aggregation over the session's live voters: the full
    /// ranking minimizing the maximum per-voter `Kprof ×2` distance,
    /// plus that maximum. Empty `labels` and `rules` means
    /// unconstrained; otherwise `labels` must cover the session's
    /// domain and the rules constrain per-class counts inside prefix
    /// windows.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`ErrorCode::NoVoters`] /
    /// [`ErrorCode::DomainMismatch`] (wrong-length labels) /
    /// [`ErrorCode::BadRequest`] (malformed or infeasible rules), or a
    /// transport failure.
    pub fn minmax_agg(
        &mut self,
        session: &str,
        labels: &[u32],
        rules: &[WireRule],
    ) -> Result<(BucketOrder, u64), ClientError> {
        let req = Request::MinMaxAgg {
            session: session.to_owned(),
            labels: labels.to_vec(),
            rules: rules.to_vec(),
        };
        match self.expect(&req)? {
            Response::RankingCost { order, cost_x2 } => Ok((order, cost_x2)),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Per-shard service counters (sessions, WAL bytes, checkpoints,
    /// evictions, recoveries), one row per shard.
    ///
    /// # Errors
    /// [`ClientError`] on transport failure or an unexpected reply.
    pub fn stats(&mut self) -> Result<Vec<crate::proto::ShardStats>, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats { shards } => Ok(shards),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Asks the server to shut down gracefully; returns once the
    /// acknowledgement arrives (the drain proceeds server-side).
    ///
    /// # Errors
    /// [`ClientError`] on transport failure or an unexpected reply.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected { got: resp_kind(&other) }),
        }
    }

    /// Issues one v2 `Batch` frame and returns the **raw sub-reply
    /// bodies** in request order — the exact bytes the server framed,
    /// for the differential suite's byte-identical comparisons.
    ///
    /// # Errors
    /// [`ClientError::Proto`] if the batch violates an encoding bound
    /// (empty, over [`crate::proto::MAX_BATCH`], or a sub-request that
    /// fails [`Request::validate`]); transport failures as on
    /// [`call_raw`](Client::call_raw). A server answering the whole
    /// frame with a single v1 `Busy`/`Error` (queue backpressure or an
    /// oversized reply) surfaces as [`ClientError::Busy`] /
    /// [`ClientError::Server`].
    pub fn call_batch_raw(&mut self, reqs: &[Request]) -> Result<Vec<Vec<u8>>, ClientError> {
        validate_batch(reqs).map_err(ClientError::Proto)?;
        write_frame(&mut self.stream, &encode_batch(reqs), self.max_frame)?;
        let reply = read_frame(&mut self.stream, self.max_frame)?;
        split_batch_reply(&reply)
    }

    /// Issues one v2 `Batch` frame and decodes every per-op reply, in
    /// request order. Per-op failures are **values** here (typed
    /// [`Response::Error`] / [`Response::Busy`] entries), not errors —
    /// a failure mid-batch never hides the replies after it.
    ///
    /// # Errors
    /// As on [`call_batch_raw`](Client::call_batch_raw).
    pub fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        self.call_batch_raw(reqs)?
            .iter()
            .map(|body| Response::decode(body).map_err(ClientError::Proto))
            .collect()
    }

    /// Starts a pipelined exchange with up to `depth` frames
    /// outstanding (clamped to at least 1). The pipeline borrows the
    /// client exclusively, so unmatched replies cannot leak into later
    /// plain calls: drop it only once [`Pipeline::outstanding`] is 0
    /// (use [`Pipeline::drain`]).
    pub fn pipeline(&mut self, depth: usize) -> Pipeline<'_> {
        Pipeline {
            client: self,
            depth: depth.max(1),
            outstanding: VecDeque::new(),
        }
    }
}

/// Splits a reply frame body into per-op raw bodies: a v2 `BatchReply`
/// yields its sub-bodies; a v1 `Busy` or `Error` body (the server's
/// whole-frame degradations) is surfaced as the matching error.
fn split_batch_reply(reply: &[u8]) -> Result<Vec<Vec<u8>>, ClientError> {
    match decode_batch_reply(reply) {
        Ok(bodies) => Ok(bodies),
        Err(batch_err) => match Response::decode(reply) {
            Ok(Response::Busy) => Err(ClientError::Busy),
            Ok(Response::Error { code, message }) => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Proto(batch_err)),
        },
    }
}

/// What one pipelined send is owed on the wire.
enum Expect {
    /// A v1 frame: one raw reply body.
    Single,
    /// A v2 `Batch` frame: a `BatchReply` carrying this many bodies.
    Batch(usize),
}

/// One in-order reply to a pipelined send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineReply {
    /// Raw reply body to a [`Pipeline::send`].
    Single(Vec<u8>),
    /// Raw per-op reply bodies to a [`Pipeline::send_batch`], in
    /// request order.
    Batch(Vec<Vec<u8>>),
}

/// A pipelined exchange over one connection: up to `depth` frames
/// outstanding, replies matched strictly **in send order** (FIFO).
/// Built by [`Client::pipeline`]; see the [module docs](self).
pub struct Pipeline<'a> {
    client: &'a mut Client,
    depth: usize,
    outstanding: VecDeque<Expect>,
}

impl Pipeline<'_> {
    /// Frames currently awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// The configured outstanding-frame bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Sends one v1 request frame. If the pipeline is at depth, the
    /// oldest reply is received first and returned, so the bound holds
    /// without a separate wait call.
    ///
    /// # Errors
    /// Validation and transport failures as on
    /// [`Client::call_raw`]; any received reply's failures as on
    /// [`recv`](Pipeline::recv).
    pub fn send(&mut self, req: &Request) -> Result<Option<PipelineReply>, ClientError> {
        req.validate().map_err(ClientError::Proto)?;
        let evicted = self.make_room()?;
        write_frame(
            &mut self.client.stream,
            &req.encode(),
            self.client.max_frame,
        )?;
        self.outstanding.push_back(Expect::Single);
        Ok(evicted)
    }

    /// Sends one v2 `Batch` frame (counted as a single outstanding
    /// frame). If the pipeline is at depth, the oldest reply is
    /// received first and returned.
    ///
    /// # Errors
    /// As on [`Client::call_batch_raw`] plus any received reply's
    /// failures as on [`recv`](Pipeline::recv).
    pub fn send_batch(&mut self, reqs: &[Request]) -> Result<Option<PipelineReply>, ClientError> {
        validate_batch(reqs).map_err(ClientError::Proto)?;
        let evicted = self.make_room()?;
        write_frame(
            &mut self.client.stream,
            &encode_batch(reqs),
            self.client.max_frame,
        )?;
        self.outstanding.push_back(Expect::Batch(reqs.len()));
        Ok(evicted)
    }

    /// Receives the oldest outstanding reply; `None` when nothing is
    /// outstanding.
    ///
    /// # Errors
    /// Transport failures; [`ClientError::Proto`] if a batch reply does
    /// not carry exactly the sub-replies its request promised.
    pub fn recv(&mut self) -> Result<Option<PipelineReply>, ClientError> {
        let Some(expect) = self.outstanding.pop_front() else {
            return Ok(None);
        };
        let reply = read_frame(&mut self.client.stream, self.client.max_frame)?;
        match expect {
            Expect::Single => Ok(Some(PipelineReply::Single(reply))),
            Expect::Batch(count) => {
                let bodies = split_batch_reply(&reply)?;
                if bodies.len() != count {
                    return Err(ClientError::Proto(ProtoError::Truncated {
                        needed: count,
                        have: bodies.len(),
                    }));
                }
                Ok(Some(PipelineReply::Batch(bodies)))
            }
        }
    }

    /// Receives every outstanding reply, oldest first.
    ///
    /// # Errors
    /// As on [`recv`](Pipeline::recv).
    pub fn drain(&mut self) -> Result<Vec<PipelineReply>, ClientError> {
        let mut replies = Vec::with_capacity(self.outstanding.len());
        while let Some(reply) = self.recv()? {
            replies.push(reply);
        }
        Ok(replies)
    }

    fn make_room(&mut self) -> Result<Option<PipelineReply>, ClientError> {
        if self.outstanding.len() >= self.depth {
            self.recv()
        } else {
            Ok(None)
        }
    }
}
