//! Per-shard durability: the write-ahead log and checkpoint codecs.
//!
//! # WAL record grammar
//!
//! A shard's WAL is an append-only file of framed records:
//!
//! ```text
//! ┌────────────────┬────────────────┬───────────────────────────┐
//! │ u32 BE length  │ u32 BE CRC-32  │ body (`length` bytes)     │
//! └────────────────┴────────────────┴───────────────────────────┘
//! body = [ u64 seq | u8 op | u8 name-len + name | payload… ]
//! ```
//!
//! `seq` is the shard's monotonic edit sequence number; the CRC (IEEE
//! 802.3, the zlib polynomial) covers the body only. One record is
//! appended — and the file flushed — per **acknowledged** edit, before
//! the reply is sent, so the recovery invariant is *acknowledged ⇒
//! replayed*. Failed edits write nothing. The claim covers **system**
//! crashes, not just process kills: record appends `fdatasync` the log
//! before the reply, and every create/rename on the durability path
//! (log creation, checkpoint renames, the shard meta file) syncs its
//! parent directory, so neither file contents nor the directory
//! entries naming them can be lost to power failure once acknowledged.
//!
//! Ops mirror the canonical edit set of the service:
//!
//! | op | payload |
//! |----|---------|
//! | `1` create  | `u32 n` + `u8 policy` |
//! | `2` push    | `u64 voter id` + ranking |
//! | `3` remove  | `u64 voter id` |
//! | `4` replace | `u64 voter id` + ranking |
//! | `5` drop    | — |
//!
//! Rankings and names use the wire encodings of [`crate::proto`]; the
//! decoders here are total in the same way — every malformed input is
//! a typed [`WalError`], never a panic. A scan
//! ([`scan_bytes`]/[`scan_file`]) stops at the **first** bad record
//! (torn tail, lying length, CRC mismatch, undecodable body) and
//! reports the prefix length that was valid; recovery truncates the
//! file there and never replays past it.
//!
//! # Checkpoints
//!
//! A session checkpoint is one framed record (same `[len | crc |
//! body]` shape) in its own file, carrying the session's full state:
//! name, domain size, policy, id counter, the shard sequence number it
//! was taken at, and every live voter `(id, ranking)` pair. Checkpoint
//! files are written atomically (tmp + rename) so a crash mid-write
//! leaves the old state intact. Replay applies only WAL records with
//! `seq >` the checkpoint's `last_seq`, which is what makes
//! eviction-then-replay apply each edit exactly once.

use crate::proto::{self, Cursor, ProtoError, WirePolicy, MAX_NAME};
use bucketrank_core::BucketOrder;
use bucketrank_aggregate::AggregateError;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one WAL record body. Sized for the largest edit the
/// service can accept (a push/replace of a [`proto::MAX_ELEMENTS`]
/// ranking plus name and header bytes); a declared length above it is
/// typed corruption **before** any allocation.
pub const MAX_WAL_RECORD: usize = 4 * proto::MAX_ELEMENTS + MAX_NAME + 64;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 / zlib polynomial), table-driven, no deps.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `bytes` (IEEE 802.3, as used by zlib and PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Errors.

/// A typed durability failure. Scan-level variants carry the byte
/// offset of the offending record; replay-level variants carry the
/// sequence number. Recovery treats any of them as "stop here":
/// the valid prefix stands, nothing past the fault is replayed, and
/// the process never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalError {
    /// The file ended inside a record's frame (torn tail, or a length
    /// prefix lying past EOF).
    TornTail {
        /// Byte offset of the record's length prefix.
        at: u64,
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// A record's body does not match its CRC.
    BadCrc {
        /// Byte offset of the record's length prefix.
        at: u64,
    },
    /// A record declared a body longer than [`MAX_WAL_RECORD`].
    RecordTooLarge {
        /// Byte offset of the record's length prefix.
        at: u64,
        /// The declared body length.
        len: usize,
    },
    /// A record's CRC matched but its body failed to decode.
    Malformed {
        /// Byte offset of the record's length prefix.
        at: u64,
        /// The decode failure.
        error: ProtoError,
    },
    /// Replay saw a create for a session that already exists (a
    /// duplicate create record — the log is self-inconsistent).
    DuplicateCreate {
        /// The record's sequence number.
        seq: u64,
        /// The session name.
        name: String,
    },
    /// Replay saw an edit for a session no surviving record created.
    UnknownSession {
        /// The record's sequence number.
        seq: u64,
        /// The session name.
        name: String,
    },
    /// Replaying a push reproduced a different voter id than the one
    /// acknowledged — the log and engine disagree on id assignment.
    IdMismatch {
        /// The record's sequence number.
        seq: u64,
        /// The id the record carries.
        expected: u64,
        /// The id the replayed push produced.
        found: u64,
    },
    /// Replaying an edit failed in the engine (e.g. a remove of an id
    /// the reconstructed profile does not hold).
    Edit {
        /// The record's sequence number.
        seq: u64,
        /// The engine's typed rejection.
        error: AggregateError,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::TornTail { at, needed, have } => write!(
                f,
                "torn WAL tail at byte {at}: frame needed {needed} more bytes, had {have}"
            ),
            WalError::BadCrc { at } => write!(f, "WAL record at byte {at} fails its CRC"),
            WalError::RecordTooLarge { at, len } => write!(
                f,
                "WAL record at byte {at} declares {len} bytes (bound {MAX_WAL_RECORD})"
            ),
            WalError::Malformed { at, error } => {
                write!(f, "WAL record at byte {at} is malformed: {error}")
            }
            WalError::DuplicateCreate { seq, name } => {
                write!(f, "WAL record {seq} re-creates existing session {name:?}")
            }
            WalError::UnknownSession { seq, name } => {
                write!(f, "WAL record {seq} edits unknown session {name:?}")
            }
            WalError::IdMismatch { seq, expected, found } => write!(
                f,
                "WAL record {seq} expected voter id {expected}, replay produced {found}"
            ),
            WalError::Edit { seq, error } => {
                write!(f, "WAL record {seq} failed to replay: {error}")
            }
        }
    }
}

impl std::error::Error for WalError {}

// ---------------------------------------------------------------------
// Records.

const WOP_CREATE: u8 = 1;
const WOP_PUSH: u8 = 2;
const WOP_REMOVE: u8 = 3;
const WOP_REPLACE: u8 = 4;
const WOP_DROP: u8 = 5;

/// The edit a WAL record describes. Every variant names its session —
/// a shard's log interleaves records from all the sessions it hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Session creation.
    Create {
        /// Session name.
        name: String,
        /// Domain size.
        n: u32,
        /// Median policy.
        policy: WirePolicy,
    },
    /// An acknowledged push, with the voter id it was issued.
    Push {
        /// Session name.
        name: String,
        /// The id the push was acknowledged with; replay verifies the
        /// reconstructed engine assigns the same one.
        voter: u64,
        /// The pushed ranking.
        ranking: BucketOrder,
    },
    /// An acknowledged removal.
    Remove {
        /// Session name.
        name: String,
        /// The removed voter id.
        voter: u64,
    },
    /// An acknowledged in-place replacement.
    Replace {
        /// Session name.
        name: String,
        /// The replaced voter id.
        voter: u64,
        /// The replacement ranking.
        ranking: BucketOrder,
    },
    /// Session drop.
    Drop {
        /// Session name.
        name: String,
    },
}

impl WalOp {
    /// The session this op addresses.
    pub fn session(&self) -> &str {
        match self {
            WalOp::Create { name, .. }
            | WalOp::Push { name, .. }
            | WalOp::Remove { name, .. }
            | WalOp::Replace { name, .. }
            | WalOp::Drop { name } => name,
        }
    }
}

/// One WAL record: a shard sequence number plus the edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The shard's monotonic edit sequence number.
    pub seq: u64,
    /// The edit.
    pub op: WalOp,
}

impl WalRecord {
    /// Encodes the record as framed file bytes (`len | crc | body`).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        proto::put_u64(&mut body, self.seq);
        match &self.op {
            WalOp::Create { name, n, policy } => {
                body.push(WOP_CREATE);
                proto::put_name(&mut body, name);
                proto::put_u32(&mut body, *n);
                body.push(policy.code());
            }
            WalOp::Push { name, voter, ranking } => {
                body.push(WOP_PUSH);
                proto::put_name(&mut body, name);
                proto::put_u64(&mut body, *voter);
                proto::put_ranking(&mut body, ranking);
            }
            WalOp::Remove { name, voter } => {
                body.push(WOP_REMOVE);
                proto::put_name(&mut body, name);
                proto::put_u64(&mut body, *voter);
            }
            WalOp::Replace { name, voter, ranking } => {
                body.push(WOP_REPLACE);
                proto::put_name(&mut body, name);
                proto::put_u64(&mut body, *voter);
                proto::put_ranking(&mut body, ranking);
            }
            WalOp::Drop { name } => {
                body.push(WOP_DROP);
                proto::put_name(&mut body, name);
            }
        }
        frame(&body)
    }

    /// Decodes one record **body** (the bytes the CRC covers). Never
    /// panics.
    ///
    /// # Errors
    /// A typed [`ProtoError`] on any malformed input.
    pub fn decode_body(body: &[u8]) -> Result<WalRecord, ProtoError> {
        let mut c = Cursor::new(body);
        let seq = c.u64()?;
        let opb = c.u8()?;
        let name = c.name()?;
        let op = match opb {
            WOP_CREATE => {
                let n = c.u32()?;
                let policy = WirePolicy::from_code(c.u8()?)?;
                WalOp::Create { name, n, policy }
            }
            WOP_PUSH => {
                let voter = c.u64()?;
                let ranking = c.ranking()?;
                WalOp::Push { name, voter, ranking }
            }
            WOP_REMOVE => {
                let voter = c.u64()?;
                WalOp::Remove { name, voter }
            }
            WOP_REPLACE => {
                let voter = c.u64()?;
                let ranking = c.ranking()?;
                WalOp::Replace { name, voter, ranking }
            }
            WOP_DROP => WalOp::Drop { name },
            other => return Err(ProtoError::UnknownOpcode { opcode: other }),
        };
        c.finish()?;
        Ok(WalRecord { seq, op })
    }
}

/// Frames a body as `[u32 len | u32 crc | body]`.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    proto::put_u32(&mut out, body.len() as u32);
    proto::put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);
    out
}

/// Unframes `[u32 len | u32 crc | body]` at offset `at` of `buf`;
/// returns the body slice and the total frame length.
fn unframe(buf: &[u8], at: usize, max_body: usize) -> Result<(&[u8], usize), WalError> {
    let rest = &buf[at..];
    if rest.len() < 8 {
        return Err(WalError::TornTail {
            at: at as u64,
            needed: 8 - rest.len(),
            have: rest.len(),
        });
    }
    let len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    if len > max_body {
        return Err(WalError::RecordTooLarge { at: at as u64, len });
    }
    let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
    let have = rest.len() - 8;
    if have < len {
        return Err(WalError::TornTail {
            at: at as u64,
            needed: len - have,
            have,
        });
    }
    let body = &rest[8..8 + len];
    if crc32(body) != crc {
        return Err(WalError::BadCrc { at: at as u64 });
    }
    Ok((body, 8 + len))
}

// ---------------------------------------------------------------------
// Scanning.

/// The result of scanning a WAL: every record in the valid prefix, the
/// prefix's byte length, and the typed fault that ended the scan (if
/// any). Scanning is total — corrupt input shortens the prefix, it
/// never errors the scan itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix; recovery truncates the file to
    /// this length.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did. `None` means the file
    /// ended exactly on a record boundary.
    pub corruption: Option<WalError>,
}

/// Scans WAL bytes into the valid record prefix. Total: stops at the
/// first torn/oversized/corrupt/undecodable record and reports it,
/// never panics, never reads past the fault.
pub fn scan_bytes(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match unframe(buf, at, MAX_WAL_RECORD) {
            Err(e) => {
                return WalScan {
                    records,
                    valid_len: at as u64,
                    corruption: Some(e),
                }
            }
            Ok((body, frame_len)) => match WalRecord::decode_body(body) {
                Err(error) => {
                    return WalScan {
                        records,
                        valid_len: at as u64,
                        corruption: Some(WalError::Malformed {
                            at: at as u64,
                            error,
                        }),
                    }
                }
                Ok(rec) => {
                    records.push(rec);
                    at += frame_len;
                }
            },
        }
    }
    WalScan {
        records,
        valid_len: at as u64,
        corruption: None,
    }
}

/// [`scan_bytes`] over a file; a missing file is an empty (clean) scan.
///
/// # Errors
/// Only real I/O failures — corruption is reported *inside* the scan.
pub fn scan_file(path: &Path) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(scan_bytes(&buf))
}

// ---------------------------------------------------------------------
// Appending.

/// An append handle on one shard's WAL file. Every append flushes to
/// the OS and syncs file data before returning, so a record that was
/// acknowledged is on disk — the recovery invariant's write half.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path` for appending. The
    /// parent directory is synced so a just-created log's directory
    /// entry is durable before any record is acknowledged against it.
    ///
    /// # Errors
    /// Any I/O failure.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        sync_dir(path)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            bytes,
        })
    }

    /// Appends one record and syncs it to disk; returns the framed
    /// size in bytes.
    ///
    /// # Errors
    /// Any I/O failure (the caller must fail the edit, not ack it).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        let bytes = rec.encode();
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        self.bytes += bytes.len() as u64;
        Ok(bytes.len() as u64)
    }

    /// Current file length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Truncates the file to `len` bytes (recovery discarding a
    /// corrupt suffix, or compaction resetting to empty).
    ///
    /// # Errors
    /// Any I/O failure.
    pub fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.bytes = len;
        Ok(())
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Checkpoints.

/// A session's full state at a point in the shard's edit sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Session name.
    pub name: String,
    /// Domain size.
    pub n: u32,
    /// Median policy.
    pub policy: WirePolicy,
    /// The id the session's next push will be assigned.
    pub next_id: u64,
    /// The shard sequence number this state is current through; replay
    /// applies only records with `seq >` this.
    pub last_seq: u64,
    /// Every live voter, as `(raw id, ranking)` pairs.
    pub voters: Vec<(u64, BucketOrder)>,
}

impl Checkpoint {
    /// Encodes the checkpoint as framed file bytes (`len | crc |
    /// body`).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.voters.len() * (12 + 4 * self.n as usize));
        proto::put_name(&mut body, &self.name);
        proto::put_u32(&mut body, self.n);
        body.push(self.policy.code());
        proto::put_u64(&mut body, self.next_id);
        proto::put_u64(&mut body, self.last_seq);
        proto::put_u32(&mut body, self.voters.len() as u32);
        for (id, ranking) in &self.voters {
            proto::put_u64(&mut body, *id);
            proto::put_ranking(&mut body, ranking);
        }
        frame(&body)
    }

    /// Decodes framed checkpoint file bytes. Total — torn, oversized,
    /// CRC-failing and undecodable input are all typed [`WalError`]s,
    /// and a trailing-bytes suffix after the frame is rejected too
    /// (checkpoint files hold exactly one frame).
    ///
    /// # Errors
    /// A typed [`WalError`] on any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, WalError> {
        // A checkpoint body is bounded by its own file, not
        // MAX_WAL_RECORD — a big session legitimately outgrows one edit
        // record. `unframe` still bounds the declared length by what
        // the file really holds.
        let (body, frame_len) = unframe(bytes, 0, bytes.len().saturating_sub(8))?;
        if frame_len != bytes.len() {
            return Err(WalError::Malformed {
                at: 0,
                error: ProtoError::TrailingBytes {
                    extra: bytes.len() - frame_len,
                },
            });
        }
        let mut c = Cursor::new(body);
        let inner = (|| -> Result<Checkpoint, ProtoError> {
            let name = c.name()?;
            let n = c.u32()?;
            let policy = WirePolicy::from_code(c.u8()?)?;
            let next_id = c.u64()?;
            let last_seq = c.u64()?;
            let count = c.u32()? as usize;
            // Bound the reservation by what the body can hold: each
            // voter costs at least 8 id bytes + a 4-byte ranking header.
            let have = body.len() / 12;
            let mut voters = Vec::with_capacity(count.min(have));
            for _ in 0..count {
                let id = c.u64()?;
                let ranking = c.ranking()?;
                voters.push((id, ranking));
            }
            Ok(Checkpoint {
                name,
                n,
                policy,
                next_id,
                last_seq,
                voters,
            })
        })();
        let ck = inner.map_err(|error| WalError::Malformed { at: 0, error })?;
        c.finish().map_err(|error| WalError::Malformed { at: 0, error })?;
        Ok(ck)
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    /// `Ok(Err(..))` for typed corruption, `Err(..)` for real I/O
    /// failures — callers treat the two differently (corrupt
    /// checkpoints are skipped, I/O faults abort startup).
    pub fn read(path: &Path) -> io::Result<Result<Checkpoint, WalError>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(Checkpoint::decode(&buf))
    }
}

/// Syncs the directory containing `path`. Fsyncing a file persists its
/// contents, not the directory entry naming it: after a rename or a
/// file creation the entry itself must be synced, or an OS crash or
/// power loss can forget the file existed even though its data was
/// durable. Every rename/create on the durability path goes through
/// this, which is what extends the "acknowledged ⇒ on disk" guarantee
/// from process crashes to system crashes.
///
/// # Errors
/// Any I/O failure.
pub(crate) fn sync_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => File::open(parent)?.sync_all(),
        _ => File::open(".")?.sync_all(),
    }
}

/// Writes `bytes` to `path` atomically: tmp file in the same
/// directory, data sync, rename over the target, directory sync. A
/// crash at any point — including an OS crash after the rename —
/// leaves either the old file or the new one, never a torn mix and
/// never a forgotten rename.
///
/// # Errors
/// Any I/O failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(path)
}

/// Sets a faulted WAL aside as `<name>.corrupt-<secs>-<k>` in the same
/// directory so the discarded suffix stays available for post-mortem
/// (recovery would otherwise truncate it permanently); the caller
/// reopens a fresh, empty log afterwards. Best effort: returns the
/// preserved path, or `None` when the rename failed — recovery
/// proceeds either way.
pub fn preserve_corrupt(path: &Path) -> Option<PathBuf> {
    let name = path.file_name()?.to_str()?;
    let parent = path.parent()?;
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for k in 0..16u32 {
        let dst = parent.join(format!("{name}.corrupt-{secs}-{k}"));
        if dst.exists() {
            continue;
        }
        if fs::rename(path, &dst).is_ok() {
            let _ = sync_dir(path);
            return Some(dst);
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        let r = BucketOrder::from_keys(&[2, 1, 1, 3]);
        vec![
            WalRecord {
                seq: 0,
                op: WalOp::Create {
                    name: "s".into(),
                    n: 4,
                    policy: WirePolicy::Lower,
                },
            },
            WalRecord {
                seq: 1,
                op: WalOp::Push {
                    name: "s".into(),
                    voter: 0,
                    ranking: r.clone(),
                },
            },
            WalRecord {
                seq: 2,
                op: WalOp::Replace {
                    name: "s".into(),
                    voter: 0,
                    ranking: r,
                },
            },
            WalRecord {
                seq: 3,
                op: WalOp::Remove {
                    name: "s".into(),
                    voter: 0,
                },
            },
            WalRecord {
                seq: 4,
                op: WalOp::Drop { name: "s".into() },
            },
        ]
    }

    #[test]
    fn crc_reference_values() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip_through_a_scan() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            buf.extend_from_slice(&r.encode());
        }
        let scan = scan_bytes(&buf);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(scan.corruption, None);
    }

    #[test]
    fn every_torn_tail_truncates_to_the_last_boundary() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            buf.extend_from_slice(&r.encode());
            boundaries.push(buf.len());
        }
        for cut in 0..buf.len() {
            let scan = scan_bytes(&buf[..cut]);
            let keep = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records, recs[..keep], "cut {cut}");
            assert_eq!(scan.valid_len, boundaries[keep] as u64, "cut {cut}");
            // A cut exactly on a boundary is clean; anything else is
            // a typed torn tail.
            if boundaries.contains(&cut) {
                assert_eq!(scan.corruption, None, "cut {cut}");
            } else {
                assert!(
                    matches!(scan.corruption, Some(WalError::TornTail { .. })),
                    "cut {cut}: {:?}",
                    scan.corruption
                );
            }
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let rec = &sample_records()[1];
        let good = rec.encode();
        for bit in 0..good.len() * 8 {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let scan = scan_bytes(&bad);
            assert!(
                scan.records.is_empty() && scan.corruption.is_some(),
                "bit {bit} survived: {scan:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_typed_before_allocation() {
        let mut buf = Vec::new();
        proto::put_u32(&mut buf, u32::MAX);
        proto::put_u32(&mut buf, 0);
        buf.extend_from_slice(&[0; 32]);
        let scan = scan_bytes(&buf);
        assert_eq!(
            scan.corruption,
            Some(WalError::RecordTooLarge {
                at: 0,
                len: u32::MAX as usize
            })
        );
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption() {
        let ck = Checkpoint {
            name: "a session".into(),
            n: 3,
            policy: WirePolicy::Upper,
            next_id: 17,
            last_seq: 120,
            voters: vec![
                (3, BucketOrder::from_keys(&[1, 2, 3])),
                (16, BucketOrder::from_keys(&[2, 2, 2])),
            ],
        };
        let bytes = ck.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), ck);
        // Every strict prefix and every bit flip is typed corruption.
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(Checkpoint::decode(&bad).is_err(), "bit {bit}");
        }
        // Trailing bytes after the frame are rejected.
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            Checkpoint::decode(&padded),
            Err(WalError::Malformed { .. })
        ));
    }

    #[test]
    fn writer_appends_and_truncates() {
        let dir = std::env::temp_dir().join(format!("brwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let recs = sample_records();
        {
            let mut w = WalWriter::open(&path).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
            assert_eq!(w.bytes(), std::fs::metadata(&path).unwrap().len());
        }
        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.records, recs);
        // Truncating into the middle of the last record leaves the
        // prefix intact.
        let mut w = WalWriter::open(&path).unwrap();
        w.truncate_to(scan.valid_len - 1).unwrap();
        let scan2 = scan_file(&path).unwrap();
        assert_eq!(scan2.records, recs[..recs.len() - 1]);
        assert!(scan2.corruption.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_is_a_clean_empty_scan() {
        let scan = scan_file(Path::new("/nonexistent/brwal/wal.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.corruption.is_none());
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("brck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-0.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
