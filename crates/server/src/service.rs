//! Request handlers over named [`DynamicProfile`] sessions.
//!
//! A [`Service`] owns a registry of sessions. Each session pairs the
//! live streaming engine with the **latest snapshot**, refreshed after
//! every successful edit:
//!
//! * edits (`push_voter` / `remove_voter` / `replace_voter`) take the
//!   session's edit mutex, apply the `O(n²)` incremental update, and
//!   publish a fresh [`DynamicSnapshot`] behind an `RwLock<Arc<…>>`;
//! * reads (`median_order`, `top_k`, `kemeny_cost`) clone the `Arc`
//!   under a momentary read lock and compute entirely on the owned
//!   snapshot — a read **never holds the edit mutex**, so a slow or
//!   numerous read mix cannot block writers (DESIGN.md §3.3d);
//! * pairwise metrics between stored voter rankings clone the two
//!   `O(n)` rankings under the edit mutex, then run the zero-alloc
//!   [`PreparedRanking`] kernels outside it.
//!
//! Every handler is total: each failure maps to a typed
//! [`ErrorCode`]-carrying [`Response::Error`] — a malformed or
//! unlucky request can never poison a session or the process.

use crate::proto::{ErrorCode, MetricKind, Request, Response, WirePolicy, MAX_ELEMENTS, MAX_NAME};
use bucketrank_aggregate::dynamic::{DynamicProfile, DynamicSnapshot, VoterId};
use bucketrank_aggregate::{AggregateError, MedianPolicy};
use bucketrank_core::BucketOrder;
use bucketrank_metrics::prepared::{
    fhaus_x2_prepared, fprof_x2_prepared, khaus_x2_prepared, kprof_x2_prepared, PreparedRanking,
};
use bucketrank_metrics::MetricsError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// One named session: the live engine plus its published read view.
struct Session {
    /// Edit path: owned exclusively by one writer at a time.
    profile: Mutex<DynamicProfile>,
    /// Read path: the snapshot at the last successful edit (`None`
    /// while the session has no live voters).
    snap: RwLock<Option<Arc<DynamicSnapshot>>>,
}

impl Session {
    fn new(n: usize, policy: MedianPolicy) -> Self {
        Session {
            profile: Mutex::new(DynamicProfile::new(n, policy)),
            snap: RwLock::new(None),
        }
    }

    /// Republishes the snapshot after an edit (called with the edit
    /// mutex held, so publications are ordered with the edits).
    fn publish(&self, dp: &DynamicProfile) {
        let fresh = dp.snapshot().ok().map(Arc::new);
        *self.snap.write().expect("snapshot lock") = fresh;
    }

    /// The published read view, if any voter is live.
    fn read_view(&self) -> Option<Arc<DynamicSnapshot>> {
        self.snap.read().expect("snapshot lock").clone()
    }
}

/// The shared, thread-safe handler state; see the [module docs](self).
pub struct Service {
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    max_sessions: usize,
}

fn agg_error(e: &AggregateError) -> Response {
    let code = match e {
        AggregateError::NoInputs => ErrorCode::NoVoters,
        AggregateError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        AggregateError::InvalidK { .. } => ErrorCode::InvalidK,
        AggregateError::UnknownVoter { .. } => ErrorCode::UnknownVoter,
        AggregateError::TooManyVoters { .. } => ErrorCode::TooManyVoters,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn metrics_error(e: &MetricsError) -> Response {
    let code = match e {
        MetricsError::DomainMismatch { .. } => ErrorCode::DomainMismatch,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

impl Service {
    /// An empty registry holding at most `max_sessions` sessions.
    pub fn new(max_sessions: usize) -> Self {
        Service {
            sessions: RwLock::new(HashMap::new()),
            max_sessions,
        }
    }

    /// Number of live sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.read().expect("session lock").len()
    }

    fn get(&self, name: &str) -> Result<Arc<Session>, Response> {
        self.sessions
            .read()
            .expect("session lock")
            .get(name)
            .cloned()
            .ok_or_else(|| error(ErrorCode::UnknownSession, format!("no session named {name:?}")))
    }

    /// Handles one request to completion. Total: every outcome is a
    /// [`Response`], including [`Request::Shutdown`] (acknowledged
    /// here; the transport layer performs the actual drain).
    pub fn handle(&self, req: Request) -> Response {
        let mut cache = None;
        self.handle_cached(req, &mut cache)
    }

    /// Handles a batch of requests in order, answering each with its
    /// own typed [`Response`] — one sub-reply per sub-request, a
    /// failure mid-batch never aborts the ops after it. The session
    /// lookup is amortized across consecutive ops on the same session
    /// (the common case for pipelined edit streams), so a batch of K
    /// edits pays one registry read, not K.
    ///
    /// [`Request::Shutdown`] is **not** a batch operation: inside a
    /// batch it answers a typed [`ErrorCode::BadRequest`] error and
    /// does not trigger a drain — shutdown must arrive as a v1 frame
    /// where the transport can sequence the acknowledgement against
    /// the connection's remaining traffic.
    pub fn handle_batch(&self, reqs: Vec<Request>) -> Vec<Response> {
        let mut cache = None;
        reqs.into_iter()
            .map(|req| match req {
                Request::Shutdown => error(
                    ErrorCode::BadRequest,
                    "shutdown is not valid inside a batch; send it as a v1 frame",
                ),
                req => self.handle_cached(req, &mut cache),
            })
            .collect()
    }

    /// One request against a one-slot session cache. The cache maps a
    /// session name to its resolved [`Session`] and is invalidated by
    /// the lifecycle ops (create/drop), so a cached hit always serves
    /// exactly what an uncached registry read would.
    fn handle_cached(&self, req: Request, cache: &mut Option<(String, Arc<Session>)>) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Shutdown => Response::ShutdownAck,
            Request::CreateSession { name, n, policy } => {
                *cache = None;
                self.create(&name, n as usize, policy)
            }
            Request::DropSession { name } => {
                *cache = None;
                self.drop_session(&name)
            }
            Request::PushVoter { session, ranking } => self.edit(&session, cache, |dp| {
                dp.push_voter(ranking)
                    .map(|id| Response::VoterPushed { voter: id.raw() })
            }),
            Request::RemoveVoter { session, voter } => self.edit(&session, cache, |dp| {
                dp.remove_voter(VoterId::from_raw(voter))
                    .map(|_| Response::VoterRemoved)
            }),
            Request::ReplaceVoter {
                session,
                voter,
                ranking,
            } => self.edit(&session, cache, |dp| {
                dp.replace_voter(VoterId::from_raw(voter), ranking)
                    .map(|_| Response::VoterReplaced)
            }),
            Request::MedianOrder { session } => {
                self.read(&session, cache, |snap| Ok(Response::Ranking {
                    order: snap.median_order(),
                }))
            }
            Request::TopK { session, k } => self.read(&session, cache, |snap| {
                snap.top_k(k as usize)
                    .map(|order| Response::Ranking { order })
            }),
            Request::KemenyCost { session, candidate } => self.read(&session, cache, |snap| {
                snap.tally()
                    .kemeny_cost_x2(&candidate)
                    .map(|value| Response::CostX2 { value })
            }),
            Request::PairMetric {
                session,
                metric,
                voter_a,
                voter_b,
            } => self.pair_metric(&session, cache, metric, voter_a, voter_b),
        }
    }

    /// Resolves a session through the one-slot cache, filling it on
    /// miss.
    fn resolve(
        &self,
        name: &str,
        cache: &mut Option<(String, Arc<Session>)>,
    ) -> Result<Arc<Session>, Response> {
        if let Some((cached, session)) = cache {
            if cached == name {
                return Ok(Arc::clone(session));
            }
        }
        let session = self.get(name)?;
        *cache = Some((name.to_owned(), Arc::clone(&session)));
        Ok(session)
    }

    fn create(&self, name: &str, n: usize, policy: WirePolicy) -> Response {
        if name.is_empty() || name.len() > MAX_NAME {
            return error(
                ErrorCode::BadRequest,
                format!("session names must be 1..={MAX_NAME} bytes"),
            );
        }
        if n > MAX_ELEMENTS {
            return error(
                ErrorCode::BadRequest,
                format!("domain of {n} elements exceeds {MAX_ELEMENTS}"),
            );
        }
        let policy = match policy {
            WirePolicy::Lower => MedianPolicy::Lower,
            WirePolicy::Upper => MedianPolicy::Upper,
        };
        let mut sessions = self.sessions.write().expect("session lock");
        if sessions.contains_key(name) {
            return error(
                ErrorCode::SessionExists,
                format!("session {name:?} already exists"),
            );
        }
        if sessions.len() >= self.max_sessions {
            return error(
                ErrorCode::BadRequest,
                format!("server is at its {}-session capacity", self.max_sessions),
            );
        }
        sessions.insert(name.to_owned(), Arc::new(Session::new(n, policy)));
        Response::SessionCreated
    }

    fn drop_session(&self, name: &str) -> Response {
        match self.sessions.write().expect("session lock").remove(name) {
            Some(_) => Response::SessionDropped,
            None => error(ErrorCode::UnknownSession, format!("no session named {name:?}")),
        }
    }

    /// Runs one edit under the session's edit mutex and republishes
    /// the snapshot on success; failed edits leave both the engine and
    /// the published view untouched (the engine's own guarantee).
    fn edit(
        &self,
        name: &str,
        cache: &mut Option<(String, Arc<Session>)>,
        op: impl FnOnce(&mut DynamicProfile) -> Result<Response, AggregateError>,
    ) -> Response {
        let session = match self.resolve(name, cache) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let mut dp = session.profile.lock().expect("edit lock");
        match op(&mut dp) {
            Ok(resp) => {
                session.publish(&dp);
                resp
            }
            Err(e) => agg_error(&e),
        }
    }

    /// Serves one read from the published snapshot — the edit mutex is
    /// never taken, so reads cannot block writers.
    fn read(
        &self,
        name: &str,
        cache: &mut Option<(String, Arc<Session>)>,
        op: impl FnOnce(&DynamicSnapshot) -> Result<Response, AggregateError>,
    ) -> Response {
        let session = match self.resolve(name, cache) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        match session.read_view() {
            Some(snap) => match op(&snap) {
                Ok(resp) => resp,
                Err(e) => agg_error(&e),
            },
            None => error(
                ErrorCode::NoVoters,
                format!("session {name:?} has no live voters"),
            ),
        }
    }

    fn pair_metric(
        &self,
        name: &str,
        cache: &mut Option<(String, Arc<Session>)>,
        metric: MetricKind,
        voter_a: u64,
        voter_b: u64,
    ) -> Response {
        let session = match self.resolve(name, cache) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Clone the two stored rankings under the edit mutex (O(n)),
        // then evaluate the prepared kernels outside it.
        let (a, b): (BucketOrder, BucketOrder) = {
            let dp = session.profile.lock().expect("edit lock");
            let fetch = |raw: u64| -> Result<BucketOrder, Response> {
                dp.get_voter(VoterId::from_raw(raw)).cloned().ok_or_else(|| {
                    agg_error(&AggregateError::UnknownVoter { id: raw })
                })
            };
            match (fetch(voter_a), fetch(voter_b)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(resp), _) | (_, Err(resp)) => return resp,
            }
        };
        let pa = PreparedRanking::new(&a);
        let pb = PreparedRanking::new(&b);
        let value = match metric {
            MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
            MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
            MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
            MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
        };
        match value {
            Ok(value) => Response::CostX2 { value },
            Err(e) => metrics_error(&e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    fn with_session(n: u32) -> Service {
        let svc = Service::new(8);
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "s".into(),
                n,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        svc
    }

    fn push(svc: &Service, r: BucketOrder) -> u64 {
        match svc.handle(Request::PushVoter {
            session: "s".into(),
            ranking: r,
        }) {
            Response::VoterPushed { voter } => voter,
            other => panic!("push failed: {other:?}"),
        }
    }

    #[test]
    fn lifecycle_and_reads_match_in_process() {
        let svc = with_session(4);
        let v0 = push(&svc, keys(&[1, 2, 3, 4]));
        let v1 = push(&svc, keys(&[2, 2, 1, 1]));
        assert_ne!(v0, v1);

        let inputs = [keys(&[1, 2, 3, 4]), keys(&[2, 2, 1, 1])];
        let (dp, _) = DynamicProfile::from_profile(&inputs, MedianPolicy::Lower).unwrap();
        let snap = dp.snapshot().unwrap();

        assert_eq!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Ranking {
                order: snap.median_order()
            }
        );
        assert_eq!(
            svc.handle(Request::TopK {
                session: "s".into(),
                k: 2
            }),
            Response::Ranking {
                order: snap.top_k(2).unwrap()
            }
        );
        let cand = keys(&[4, 3, 2, 1]);
        assert_eq!(
            svc.handle(Request::KemenyCost {
                session: "s".into(),
                candidate: cand.clone()
            }),
            Response::CostX2 {
                value: snap.tally().kemeny_cost_x2(&cand).unwrap()
            }
        );

        // Pairwise metrics between the stored rankings.
        let pa = PreparedRanking::new(&inputs[0]);
        let pb = PreparedRanking::new(&inputs[1]);
        for metric in MetricKind::ALL {
            let expect = match metric {
                MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
                MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
                MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
                MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
            }
            .unwrap();
            assert_eq!(
                svc.handle(Request::PairMetric {
                    session: "s".into(),
                    metric,
                    voter_a: v0,
                    voter_b: v1,
                }),
                Response::CostX2 { value: expect },
                "{metric:?}"
            );
        }

        assert_eq!(
            svc.handle(Request::RemoveVoter {
                session: "s".into(),
                voter: v0
            }),
            Response::VoterRemoved
        );
        assert_eq!(
            svc.handle(Request::ReplaceVoter {
                session: "s".into(),
                voter: v1,
                ranking: keys(&[1, 1, 1, 2]),
            }),
            Response::VoterReplaced
        );
        assert_eq!(
            svc.handle(Request::DropSession { name: "s".into() }),
            Response::SessionDropped
        );
        assert_eq!(svc.sessions(), 0);
    }

    #[test]
    fn typed_errors_cover_every_failure() {
        let svc = with_session(3);
        let err_code = |resp: Response| match resp {
            Response::Error { code, .. } => code,
            other => panic!("expected error, got {other:?}"),
        };
        // Duplicate create, unknown session, capacity.
        assert_eq!(
            err_code(svc.handle(Request::CreateSession {
                name: "s".into(),
                n: 3,
                policy: WirePolicy::Upper,
            })),
            ErrorCode::SessionExists
        );
        assert_eq!(
            err_code(svc.handle(Request::MedianOrder { session: "nope".into() })),
            ErrorCode::UnknownSession
        );
        assert_eq!(
            err_code(svc.handle(Request::DropSession { name: "nope".into() })),
            ErrorCode::UnknownSession
        );
        assert_eq!(
            err_code(svc.handle(Request::CreateSession {
                name: "".into(),
                n: 3,
                policy: WirePolicy::Lower,
            })),
            ErrorCode::BadRequest
        );
        // Reads on an empty session.
        assert_eq!(
            err_code(svc.handle(Request::MedianOrder { session: "s".into() })),
            ErrorCode::NoVoters
        );
        // Domain mismatch on push; unknown voter on remove/pair.
        assert_eq!(
            err_code(svc.handle(Request::PushVoter {
                session: "s".into(),
                ranking: keys(&[1, 2]),
            })),
            ErrorCode::DomainMismatch
        );
        let v = push(&svc, keys(&[1, 2, 3]));
        assert_eq!(
            err_code(svc.handle(Request::RemoveVoter {
                session: "s".into(),
                voter: v + 100,
            })),
            ErrorCode::UnknownVoter
        );
        assert_eq!(
            err_code(svc.handle(Request::PairMetric {
                session: "s".into(),
                metric: MetricKind::KprofX2,
                voter_a: v,
                voter_b: v + 100,
            })),
            ErrorCode::UnknownVoter
        );
        // Invalid k.
        assert_eq!(
            err_code(svc.handle(Request::TopK {
                session: "s".into(),
                k: 99,
            })),
            ErrorCode::InvalidK
        );
        // The failed edits left the session serving.
        assert!(matches!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Ranking { .. }
        ));
    }

    #[test]
    fn session_capacity_is_enforced() {
        let svc = Service::new(1);
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "a".into(),
                n: 2,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        assert!(matches!(
            svc.handle(Request::CreateSession {
                name: "b".into(),
                n: 2,
                policy: WirePolicy::Lower,
            }),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn reads_track_the_latest_edit() {
        let svc = with_session(3);
        let v = push(&svc, keys(&[1, 2, 3]));
        let before = svc.handle(Request::MedianOrder { session: "s".into() });
        svc.handle(Request::ReplaceVoter {
            session: "s".into(),
            voter: v,
            ranking: keys(&[3, 2, 1]),
        });
        let after = svc.handle(Request::MedianOrder { session: "s".into() });
        assert_ne!(before, after);
        assert_eq!(
            after,
            Response::Ranking {
                order: keys(&[3, 2, 1])
            }
        );
        // Draining the last voter returns reads to the typed empty
        // state.
        svc.handle(Request::RemoveVoter {
            session: "s".into(),
            voter: v,
        });
        assert!(matches!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Error {
                code: ErrorCode::NoVoters,
                ..
            }
        ));
    }

    #[test]
    fn ping_and_shutdown_are_pure_acks() {
        let svc = Service::new(1);
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
        assert_eq!(svc.handle(Request::Shutdown), Response::ShutdownAck);
    }

    /// A mixed batch (with the session cache hot and invalidated
    /// mid-stream by create/drop) must answer exactly what a fresh
    /// `Service` replaying the same ops one `handle` at a time would.
    #[test]
    fn handle_batch_matches_per_op_handle() {
        let script = vec![
            Request::Ping,
            Request::CreateSession {
                name: "a".into(),
                n: 3,
                policy: WirePolicy::Lower,
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[1, 2, 3]),
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[3, 1, 2]),
            },
            Request::MedianOrder { session: "a".into() },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[1, 2]), // domain mismatch mid-batch
            },
            Request::TopK {
                session: "a".into(),
                k: 2,
            },
            Request::DropSession { name: "a".into() },
            Request::MedianOrder { session: "a".into() }, // now unknown
            Request::CreateSession {
                name: "a".into(),
                n: 2,
                policy: WirePolicy::Upper,
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[2, 1]),
            },
            Request::MedianOrder { session: "a".into() },
        ];
        let batched = Service::new(4).handle_batch(script.clone());
        let mirror = Service::new(4);
        let sequential: Vec<Response> = script.into_iter().map(|r| mirror.handle(r)).collect();
        assert_eq!(batched, sequential);
        // Errors mid-batch did not abort the ops after them.
        assert!(matches!(batched.last(), Some(Response::Ranking { .. })));
    }

    #[test]
    fn shutdown_inside_a_batch_is_a_typed_error() {
        let svc = Service::new(1);
        let replies = svc.handle_batch(vec![Request::Ping, Request::Shutdown, Request::Ping]);
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0], Response::Pong);
        assert!(matches!(
            &replies[1],
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert_eq!(replies[2], Response::Pong);
    }
}
