//! Request handlers over named [`DynamicProfile`] sessions.
//!
//! A [`Service`] routes every request to one of N [`shard`]s by a
//! stable hash of the session name; each shard owns its sessions'
//! edit locks, WAL and checkpoint files, so edits on different shards
//! never contend (DESIGN.md §3.3e). Within a session the shape is
//! unchanged from the unsharded service:
//!
//! * edits (`push_voter` / `remove_voter` / `replace_voter`) take the
//!   shard mutex to resolve the session, log a write-ahead record when
//!   durability is on, apply the `O(n²)` incremental update under the
//!   session's edit mutex, and publish a fresh [`DynamicSnapshot`];
//! * reads (`median_order`, `top_k`, `kemeny_cost`) clone the
//!   published `Arc` and compute entirely on the owned snapshot — a
//!   read **never holds the edit mutex**, so a slow or numerous read
//!   mix cannot block writers (DESIGN.md §3.3d);
//! * pairwise metrics between stored voter rankings clone the two
//!   `O(n)` rankings under the edit mutex, then run the zero-alloc
//!   [`PreparedRanking`] kernels outside it.
//!
//! Every handler is total: each failure maps to a typed
//! [`ErrorCode`]-carrying [`Response::Error`] — a malformed or
//! unlucky request can never poison a session or the process. With a
//! data directory configured ([`ServiceConfig::data_dir`]), every
//! acknowledged lifecycle or edit op is on disk before its reply is
//! produced, and [`Service::with_config`] replays whatever a prior
//! process left behind.

use crate::proto::{
    ErrorCode, MetricKind, Request, Response, ShardStats, WirePolicy, WireRule, MAX_ELEMENTS,
    MAX_NAME, MAX_SHARDS,
};
use crate::shard::{agg_error, error, shard_index, Edit, Session, Shard};
use bucketrank_aggregate::dynamic::{DynamicSnapshot, VoterId};
use bucketrank_aggregate::minmax::{self, ClassConstraints, WindowRule};
use bucketrank_aggregate::AggregateError;
use bucketrank_core::BucketOrder;
use bucketrank_metrics::prepared::{
    fhaus_x2_prepared, fprof_x2_prepared, khaus_x2_prepared, kprof_x2_prepared, PreparedRanking,
};
use bucketrank_metrics::weighted::{top_diff_prepared, weighted_footrule_x2_prepared};
use bucketrank_metrics::{MetricsError, Weights};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Default shard count when none is configured.
pub const DEFAULT_SHARDS: usize = 4;

/// Default compaction threshold: WAL records appended to a shard
/// before it checkpoints its sessions and truncates the log.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

/// Construction-time configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (`1..=`[`MAX_SHARDS`]). The session-name →
    /// shard map is a stable hash, so a durable data directory must be
    /// reopened with the shard count it was created with.
    pub shards: usize,
    /// Global resident-session budget, distributed evenly: each shard
    /// admits at most `ceil(max_sessions / shards)` resident sessions.
    /// Memory-only services refuse creates beyond the cap; durable
    /// services evict the least-recently-used session to disk instead.
    pub max_sessions: usize,
    /// Root of the durable state (one `shard-<i>/` subdirectory per
    /// shard). `None` runs memory-only: no WAL, no checkpoints, no
    /// eviction.
    pub data_dir: Option<PathBuf>,
    /// Per-shard compaction threshold (clamped to ≥ 1).
    pub checkpoint_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: DEFAULT_SHARDS,
            max_sessions: 1024,
            data_dir: None,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// The shared, thread-safe handler state; see the [module docs](self).
pub struct Service {
    shards: Vec<Shard>,
}

/// A connection's one-slot session cache: name, the owning shard's
/// lifecycle epoch at fill time, and the resolved session. A hit is
/// honored only while the epoch is unchanged, so a cached entry can
/// never outlive an eviction, fault-in, create or drop of any session
/// on that shard.
pub(crate) type SessionCache = Option<(String, u64, Arc<Session>)>;

fn metrics_error(e: &MetricsError) -> Response {
    let code = match e {
        MetricsError::DomainMismatch { .. } | MetricsError::WeightsLengthMismatch { .. } => {
            ErrorCode::DomainMismatch
        }
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

impl Service {
    /// An empty memory-only registry holding at most `max_sessions`
    /// sessions across [`DEFAULT_SHARDS`] shards.
    pub fn new(max_sessions: usize) -> Self {
        Service::with_config(ServiceConfig {
            max_sessions,
            ..ServiceConfig::default()
        })
        .expect("memory-only service construction is infallible")
    }

    /// Builds a service from `cfg`, recovering durable state from
    /// `cfg.data_dir` when set: checkpoints load, each shard's WAL
    /// valid prefix replays, corruption is truncated at the first
    /// fault, and the logs restart compacted — every edit acknowledged
    /// by the prior process is visible, and nothing past a fault is.
    ///
    /// # Errors
    /// Invalid configuration (shard count out of `1..=`[`MAX_SHARDS`],
    /// zero `max_sessions`, reopening a data directory with a
    /// different shard count) and real I/O failures. Corrupt durable
    /// *records* are never errors — they are typed, logged and
    /// truncated.
    pub fn with_config(cfg: ServiceConfig) -> io::Result<Self> {
        if cfg.shards == 0 || cfg.shards > MAX_SHARDS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard count must be 1..={MAX_SHARDS}, got {}", cfg.shards),
            ));
        }
        if cfg.max_sessions == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_sessions must be at least 1",
            ));
        }
        let cap = cfg.max_sessions.div_ceil(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        match &cfg.data_dir {
            None => {
                for _ in 0..cfg.shards {
                    shards.push(Shard::new(cap, cfg.max_sessions));
                }
            }
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                check_meta(dir, cfg.shards)?;
                for i in 0..cfg.shards {
                    shards.push(Shard::open(
                        cap,
                        cfg.max_sessions,
                        dir.join(format!("shard-{i}")),
                        cfg.checkpoint_every,
                    )?);
                }
            }
        }
        Ok(Service { shards })
    }

    /// Number of resident sessions across all shards.
    pub fn sessions(&self) -> usize {
        self.shards.iter().map(Shard::resident).sum()
    }

    /// One stats row per shard.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    fn shard_for(&self, name: &str) -> &Shard {
        &self.shards[shard_index(name, self.shards.len())]
    }

    /// Handles one request to completion. Total: every outcome is a
    /// [`Response`], including [`Request::Shutdown`] (acknowledged
    /// here; the transport layer performs the actual drain).
    pub fn handle(&self, req: Request) -> Response {
        let mut cache = None;
        self.handle_cached(req, &mut cache)
    }

    /// Handles a batch of requests in order, answering each with its
    /// own typed [`Response`] — one sub-reply per sub-request, a
    /// failure mid-batch never aborts the ops after it. The session
    /// lookup is amortized across consecutive reads of the same
    /// session (the common case for pipelined streams), so a batch of
    /// K reads pays one registry resolve, not K.
    ///
    /// [`Request::Shutdown`] is **not** a batch operation: inside a
    /// batch it answers a typed [`ErrorCode::BadRequest`] error and
    /// does not trigger a drain — shutdown must arrive as a v1 frame
    /// where the transport can sequence the acknowledgement against
    /// the connection's remaining traffic.
    pub fn handle_batch(&self, reqs: Vec<Request>) -> Vec<Response> {
        let mut cache = None;
        reqs.into_iter()
            .map(|req| match req {
                Request::Shutdown => error(
                    ErrorCode::BadRequest,
                    "shutdown is not valid inside a batch; send it as a v1 frame",
                ),
                req => self.handle_cached(req, &mut cache),
            })
            .collect()
    }

    /// One request against a one-slot session cache (reads and
    /// pairwise metrics only — edits and lifecycle ops always resolve
    /// under the shard mutex, because the durable path must observe
    /// evictions). Hits are epoch-validated; see [`SessionCache`].
    fn handle_cached(&self, req: Request, cache: &mut SessionCache) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats {
                shards: self.stats(),
            },
            Request::Shutdown => Response::ShutdownAck,
            Request::CreateSession { name, n, policy } => {
                *cache = None;
                self.create(&name, n as usize, policy)
            }
            Request::DropSession { name } => {
                *cache = None;
                self.shard_for(&name).drop_session(&name)
            }
            Request::PushVoter { session, ranking } => self
                .shard_for(&session)
                .edit(&session, Edit::Push { ranking }),
            Request::RemoveVoter { session, voter } => self
                .shard_for(&session)
                .edit(&session, Edit::Remove { voter }),
            Request::ReplaceVoter {
                session,
                voter,
                ranking,
            } => self
                .shard_for(&session)
                .edit(&session, Edit::Replace { voter, ranking }),
            Request::MedianOrder { session } => {
                self.read(&session, cache, |snap| Ok(Response::Ranking {
                    order: snap.median_order(),
                }))
            }
            Request::TopK { session, k } => self.read(&session, cache, |snap| {
                snap.top_k(k as usize)
                    .map(|order| Response::Ranking { order })
            }),
            Request::KemenyCost { session, candidate } => self.read(&session, cache, |snap| {
                snap.tally()
                    .kemeny_cost_x2(&candidate)
                    .map(|value| Response::CostX2 { value })
            }),
            Request::PairMetric {
                session,
                metric,
                voter_a,
                voter_b,
            } => self.pair_metric(&session, cache, metric, voter_a, voter_b),
            Request::WeightedDist {
                session,
                voter_a,
                voter_b,
                weights,
            } => self.weighted_pair(&session, cache, voter_a, voter_b, weights, false),
            Request::TopDiff {
                session,
                voter_a,
                voter_b,
                weights,
            } => self.weighted_pair(&session, cache, voter_a, voter_b, weights, true),
            Request::MinMaxAgg {
                session,
                labels,
                rules,
            } => self.minmax_agg(&session, cache, labels, rules),
        }
    }

    /// Resolves a session through the one-slot cache, filling it on
    /// miss or on a stale epoch. The epoch is sampled **before** the
    /// registry resolve, so a lifecycle change racing the fill leaves
    /// the cached entry already-stale rather than wrongly fresh.
    fn resolve(&self, name: &str, cache: &mut SessionCache) -> Result<Arc<Session>, Response> {
        let shard = self.shard_for(name);
        if let Some((cached, epoch, session)) = cache {
            if cached == name && *epoch == shard.epoch() {
                shard.touch(session);
                return Ok(Arc::clone(session));
            }
        }
        let epoch = shard.epoch();
        let session = shard.resolve(name)?;
        *cache = Some((name.to_owned(), epoch, Arc::clone(&session)));
        Ok(session)
    }

    fn create(&self, name: &str, n: usize, policy: WirePolicy) -> Response {
        if name.is_empty() || name.len() > MAX_NAME {
            return error(
                ErrorCode::BadRequest,
                format!("session names must be 1..={MAX_NAME} bytes"),
            );
        }
        if n > MAX_ELEMENTS {
            return error(
                ErrorCode::BadRequest,
                format!("domain of {n} elements exceeds {MAX_ELEMENTS}"),
            );
        }
        self.shard_for(name).create(name, n, policy)
    }

    /// Serves one read from the published snapshot — the edit mutex is
    /// never taken, so reads cannot block writers.
    fn read(
        &self,
        name: &str,
        cache: &mut SessionCache,
        op: impl FnOnce(&DynamicSnapshot) -> Result<Response, AggregateError>,
    ) -> Response {
        let session = match self.resolve(name, cache) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        match session.read_view() {
            Some(snap) => match op(&snap) {
                Ok(resp) => resp,
                Err(e) => agg_error(&e),
            },
            None => error(
                ErrorCode::NoVoters,
                format!("session {name:?} has no live voters"),
            ),
        }
    }

    /// Clones two stored voter rankings under the edit mutex (O(n)),
    /// so the prepared kernels can run outside it.
    fn fetch_pair(
        &self,
        name: &str,
        cache: &mut SessionCache,
        voter_a: u64,
        voter_b: u64,
    ) -> Result<(BucketOrder, BucketOrder), Response> {
        let session = self.resolve(name, cache)?;
        let dp = session.profile.lock().expect("edit lock");
        let fetch = |raw: u64| -> Result<BucketOrder, Response> {
            dp.get_voter(VoterId::from_raw(raw)).cloned().ok_or_else(|| {
                agg_error(&AggregateError::UnknownVoter { id: raw })
            })
        };
        Ok((fetch(voter_a)?, fetch(voter_b)?))
    }

    fn pair_metric(
        &self,
        name: &str,
        cache: &mut SessionCache,
        metric: MetricKind,
        voter_a: u64,
        voter_b: u64,
    ) -> Response {
        let (a, b) = match self.fetch_pair(name, cache, voter_a, voter_b) {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        let pa = PreparedRanking::new(&a);
        let pb = PreparedRanking::new(&b);
        let value = match metric {
            MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
            MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
            MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
            MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
        };
        match value {
            Ok(value) => Response::CostX2 { value },
            Err(e) => metrics_error(&e),
        }
    }

    /// The two weighted kernels share one handler: the weight vector
    /// travels in the frame and is validated here by
    /// [`Weights::from_units`], so a negative-free but overflowing or
    /// wrong-length vector is a typed error, never a panic.
    fn weighted_pair(
        &self,
        name: &str,
        cache: &mut SessionCache,
        voter_a: u64,
        voter_b: u64,
        weights: Vec<u64>,
        top: bool,
    ) -> Response {
        let (a, b) = match self.fetch_pair(name, cache, voter_a, voter_b) {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        let w = match Weights::from_units(weights) {
            Ok(w) => w,
            Err(e) => return metrics_error(&e),
        };
        let pa = PreparedRanking::new(&a);
        let pb = PreparedRanking::new(&b);
        let value = if top {
            top_diff_prepared(&pa, &pb, &w)
        } else {
            weighted_footrule_x2_prepared(&pa, &pb, &w)
        };
        match value {
            Ok(value) => Response::CostX2 { value },
            Err(e) => metrics_error(&e),
        }
    }

    /// Minmax aggregation over the session's live voters. The stored
    /// rankings are cloned under the edit mutex (O(m·n)) in ascending
    /// voter-id order, then the deterministic heuristic pipeline runs
    /// outside it at the fixed wire seed — the reply for a given voter
    /// set, label vector and rule set is byte-reproducible across
    /// processes. Constraint faults (bad window, unknown class,
    /// infeasible rule set) come back typed through [`agg_error`].
    fn minmax_agg(
        &self,
        name: &str,
        cache: &mut SessionCache,
        labels: Vec<u32>,
        rules: Vec<WireRule>,
    ) -> Response {
        let session = match self.resolve(name, cache) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let rankings: Vec<BucketOrder> = {
            let dp = session.profile.lock().expect("edit lock");
            dp.voter_ids()
                .into_iter()
                .filter_map(|id| dp.get_voter(id).cloned())
                .collect()
        };
        if rankings.is_empty() {
            return error(
                ErrorCode::NoVoters,
                format!("session {name:?} has no live voters"),
            );
        }
        let cons = if labels.is_empty() && rules.is_empty() {
            None
        } else {
            let rules = rules
                .into_iter()
                .map(|r| WindowRule {
                    window: r.window,
                    class: r.class,
                    min: r.min,
                    max: r.max,
                })
                .collect();
            match ClassConstraints::new(labels, rules) {
                Ok(c) => Some(c),
                Err(e) => return agg_error(&e),
            }
        };
        match minmax::minmax_aggregate(&rankings, cons.as_ref(), minmax::DEFAULT_SEED) {
            Ok((order, cost_x2)) => Response::RankingCost { order, cost_x2 },
            Err(e) => agg_error(&e),
        }
    }
}

/// Refuses to reopen a data directory with a different shard count
/// than it was created with (the name→shard hash would scatter the
/// durable records); records the count on first open.
fn check_meta(dir: &std::path::Path, shards: usize) -> io::Result<()> {
    let meta = dir.join("meta");
    match std::fs::read_to_string(&meta) {
        Ok(text) => {
            let recorded: usize = text
                .trim()
                .strip_prefix("shards=")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unreadable shard meta file {}", meta.display()),
                    )
                })?;
            if recorded != shards {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "data dir was created with {recorded} shards but was opened with {shards}"
                    ),
                ));
            }
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            crate::wal::write_atomic(&meta, format!("shards={shards}\n").as_bytes())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bucketrank_aggregate::dynamic::DynamicProfile;
    use bucketrank_aggregate::MedianPolicy;

    fn keys(k: &[i64]) -> BucketOrder {
        BucketOrder::from_keys(k)
    }

    fn with_session(n: u32) -> Service {
        let svc = Service::new(8);
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "s".into(),
                n,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        svc
    }

    fn push(svc: &Service, r: BucketOrder) -> u64 {
        match svc.handle(Request::PushVoter {
            session: "s".into(),
            ranking: r,
        }) {
            Response::VoterPushed { voter } => voter,
            other => panic!("push failed: {other:?}"),
        }
    }

    #[test]
    fn lifecycle_and_reads_match_in_process() {
        let svc = with_session(4);
        let v0 = push(&svc, keys(&[1, 2, 3, 4]));
        let v1 = push(&svc, keys(&[2, 2, 1, 1]));
        assert_ne!(v0, v1);

        let inputs = [keys(&[1, 2, 3, 4]), keys(&[2, 2, 1, 1])];
        let (dp, _) = DynamicProfile::from_profile(&inputs, MedianPolicy::Lower).unwrap();
        let snap = dp.snapshot().unwrap();

        assert_eq!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Ranking {
                order: snap.median_order()
            }
        );
        assert_eq!(
            svc.handle(Request::TopK {
                session: "s".into(),
                k: 2
            }),
            Response::Ranking {
                order: snap.top_k(2).unwrap()
            }
        );
        let cand = keys(&[4, 3, 2, 1]);
        assert_eq!(
            svc.handle(Request::KemenyCost {
                session: "s".into(),
                candidate: cand.clone()
            }),
            Response::CostX2 {
                value: snap.tally().kemeny_cost_x2(&cand).unwrap()
            }
        );

        // Pairwise metrics between the stored rankings.
        let pa = PreparedRanking::new(&inputs[0]);
        let pb = PreparedRanking::new(&inputs[1]);
        for metric in MetricKind::ALL {
            let expect = match metric {
                MetricKind::KprofX2 => kprof_x2_prepared(&pa, &pb),
                MetricKind::FprofX2 => fprof_x2_prepared(&pa, &pb),
                MetricKind::KhausX2 => khaus_x2_prepared(&pa, &pb),
                MetricKind::FhausX2 => fhaus_x2_prepared(&pa, &pb),
            }
            .unwrap();
            assert_eq!(
                svc.handle(Request::PairMetric {
                    session: "s".into(),
                    metric,
                    voter_a: v0,
                    voter_b: v1,
                }),
                Response::CostX2 { value: expect },
                "{metric:?}"
            );
        }

        // Weighted kernels with the weight vector carried in the frame.
        let w = Weights::from_units(vec![7, 3, 1, 1]).unwrap();
        assert_eq!(
            svc.handle(Request::WeightedDist {
                session: "s".into(),
                voter_a: v0,
                voter_b: v1,
                weights: w.units().to_vec(),
            }),
            Response::CostX2 {
                value: weighted_footrule_x2_prepared(&pa, &pb, &w).unwrap()
            }
        );
        assert_eq!(
            svc.handle(Request::TopDiff {
                session: "s".into(),
                voter_a: v0,
                voter_b: v1,
                weights: w.units().to_vec(),
            }),
            Response::CostX2 {
                value: top_diff_prepared(&pa, &pb, &w).unwrap()
            }
        );

        assert_eq!(
            svc.handle(Request::RemoveVoter {
                session: "s".into(),
                voter: v0
            }),
            Response::VoterRemoved
        );
        assert_eq!(
            svc.handle(Request::ReplaceVoter {
                session: "s".into(),
                voter: v1,
                ranking: keys(&[1, 1, 1, 2]),
            }),
            Response::VoterReplaced
        );
        assert_eq!(
            svc.handle(Request::DropSession { name: "s".into() }),
            Response::SessionDropped
        );
        assert_eq!(svc.sessions(), 0);
    }

    #[test]
    fn typed_errors_cover_every_failure() {
        let svc = with_session(3);
        let err_code = |resp: Response| match resp {
            Response::Error { code, .. } => code,
            other => panic!("expected error, got {other:?}"),
        };
        // Duplicate create, unknown session, capacity.
        assert_eq!(
            err_code(svc.handle(Request::CreateSession {
                name: "s".into(),
                n: 3,
                policy: WirePolicy::Upper,
            })),
            ErrorCode::SessionExists
        );
        assert_eq!(
            err_code(svc.handle(Request::MedianOrder { session: "nope".into() })),
            ErrorCode::UnknownSession
        );
        assert_eq!(
            err_code(svc.handle(Request::DropSession { name: "nope".into() })),
            ErrorCode::UnknownSession
        );
        assert_eq!(
            err_code(svc.handle(Request::CreateSession {
                name: "".into(),
                n: 3,
                policy: WirePolicy::Lower,
            })),
            ErrorCode::BadRequest
        );
        // Reads on an empty session.
        assert_eq!(
            err_code(svc.handle(Request::MedianOrder { session: "s".into() })),
            ErrorCode::NoVoters
        );
        // Domain mismatch on push; unknown voter on remove/pair.
        assert_eq!(
            err_code(svc.handle(Request::PushVoter {
                session: "s".into(),
                ranking: keys(&[1, 2]),
            })),
            ErrorCode::DomainMismatch
        );
        let v = push(&svc, keys(&[1, 2, 3]));
        assert_eq!(
            err_code(svc.handle(Request::RemoveVoter {
                session: "s".into(),
                voter: v + 100,
            })),
            ErrorCode::UnknownVoter
        );
        assert_eq!(
            err_code(svc.handle(Request::PairMetric {
                session: "s".into(),
                metric: MetricKind::KprofX2,
                voter_a: v,
                voter_b: v + 100,
            })),
            ErrorCode::UnknownVoter
        );
        // Invalid k.
        assert_eq!(
            err_code(svc.handle(Request::TopK {
                session: "s".into(),
                k: 99,
            })),
            ErrorCode::InvalidK
        );
        // Weighted requests: unknown voter, wrong-length weights,
        // overflowing weights — all typed, session stays serving.
        assert_eq!(
            err_code(svc.handle(Request::WeightedDist {
                session: "s".into(),
                voter_a: v,
                voter_b: v + 100,
                weights: vec![1, 1, 1],
            })),
            ErrorCode::UnknownVoter
        );
        assert_eq!(
            err_code(svc.handle(Request::TopDiff {
                session: "s".into(),
                voter_a: v,
                voter_b: v,
                weights: vec![1, 1], // two weights, three elements
            })),
            ErrorCode::DomainMismatch
        );
        assert_eq!(
            err_code(svc.handle(Request::WeightedDist {
                session: "s".into(),
                voter_a: v,
                voter_b: v,
                weights: vec![u64::MAX, 1, 1],
            })),
            ErrorCode::BadRequest
        );
        // The failed edits left the session serving.
        assert!(matches!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Ranking { .. }
        ));
    }

    #[test]
    fn session_capacity_is_enforced() {
        // One shard so the global budget is exact; memory-only, so the
        // cap refuses (durable services would evict instead).
        let svc = Service::with_config(ServiceConfig {
            shards: 1,
            max_sessions: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(
            svc.handle(Request::CreateSession {
                name: "a".into(),
                n: 2,
                policy: WirePolicy::Lower,
            }),
            Response::SessionCreated
        );
        assert!(matches!(
            svc.handle(Request::CreateSession {
                name: "b".into(),
                n: 2,
                policy: WirePolicy::Lower,
            }),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn invalid_configs_are_refused() {
        for cfg in [
            ServiceConfig {
                shards: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                shards: MAX_SHARDS + 1,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                max_sessions: 0,
                ..ServiceConfig::default()
            },
        ] {
            assert!(Service::with_config(cfg).is_err());
        }
    }

    #[test]
    fn stats_report_one_row_per_shard() {
        let svc = with_session(3);
        let rows = match svc.handle(Request::Stats) {
            Response::Stats { shards } => shards,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(rows.len(), DEFAULT_SHARDS);
        assert_eq!(rows.iter().map(|r| r.sessions).sum::<u64>(), 1);
        // Memory-only: no durability activity at all.
        assert!(rows.iter().all(|r| r.wal_records == 0
            && r.wal_bytes == 0
            && r.checkpoints == 0
            && r.evictions == 0
            && r.recoveries == 0));
    }

    /// End-to-end durability smoke at the service layer: acknowledged
    /// edits survive a drop-and-reopen (no checkpoint ever fires —
    /// recovery is pure WAL replay), and reopening with a different
    /// shard count is refused.
    #[test]
    fn durable_sessions_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("brsvc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServiceConfig {
            shards: 2,
            max_sessions: 8,
            data_dir: Some(dir.clone()),
            checkpoint_every: 1_000_000,
        };
        let expected;
        {
            let svc = Service::with_config(cfg()).unwrap();
            assert_eq!(
                svc.handle(Request::CreateSession {
                    name: "s".into(),
                    n: 3,
                    policy: WirePolicy::Lower,
                }),
                Response::SessionCreated
            );
            for r in [keys(&[1, 2, 3]), keys(&[3, 2, 1]), keys(&[2, 1, 3])] {
                assert!(matches!(
                    svc.handle(Request::PushVoter {
                        session: "s".into(),
                        ranking: r,
                    }),
                    Response::VoterPushed { .. }
                ));
            }
            expected = svc.handle(Request::MedianOrder { session: "s".into() });
            assert!(matches!(expected, Response::Ranking { .. }));
        }
        {
            let svc = Service::with_config(cfg()).unwrap();
            assert_eq!(svc.handle(Request::MedianOrder { session: "s".into() }), expected);
            // Voter ids continue from the recovered next_id.
            assert!(matches!(
                svc.handle(Request::PushVoter {
                    session: "s".into(),
                    ranking: keys(&[1, 1, 2]),
                }),
                Response::VoterPushed { voter: 3 }
            ));
            assert!(Service::with_config(ServiceConfig {
                shards: 3,
                ..cfg()
            })
            .is_err());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_track_the_latest_edit() {
        let svc = with_session(3);
        let v = push(&svc, keys(&[1, 2, 3]));
        let before = svc.handle(Request::MedianOrder { session: "s".into() });
        svc.handle(Request::ReplaceVoter {
            session: "s".into(),
            voter: v,
            ranking: keys(&[3, 2, 1]),
        });
        let after = svc.handle(Request::MedianOrder { session: "s".into() });
        assert_ne!(before, after);
        assert_eq!(
            after,
            Response::Ranking {
                order: keys(&[3, 2, 1])
            }
        );
        // Draining the last voter returns reads to the typed empty
        // state.
        svc.handle(Request::RemoveVoter {
            session: "s".into(),
            voter: v,
        });
        assert!(matches!(
            svc.handle(Request::MedianOrder { session: "s".into() }),
            Response::Error {
                code: ErrorCode::NoVoters,
                ..
            }
        ));
    }

    #[test]
    fn ping_and_shutdown_are_pure_acks() {
        let svc = Service::new(1);
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
        assert_eq!(svc.handle(Request::Shutdown), Response::ShutdownAck);
    }

    /// A mixed batch (with the session cache hot and invalidated
    /// mid-stream by create/drop) must answer exactly what a fresh
    /// `Service` replaying the same ops one `handle` at a time would.
    #[test]
    fn handle_batch_matches_per_op_handle() {
        let script = vec![
            Request::Ping,
            Request::CreateSession {
                name: "a".into(),
                n: 3,
                policy: WirePolicy::Lower,
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[1, 2, 3]),
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[3, 1, 2]),
            },
            Request::MedianOrder { session: "a".into() },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[1, 2]), // domain mismatch mid-batch
            },
            Request::TopK {
                session: "a".into(),
                k: 2,
            },
            Request::DropSession { name: "a".into() },
            Request::MedianOrder { session: "a".into() }, // now unknown
            Request::CreateSession {
                name: "a".into(),
                n: 2,
                policy: WirePolicy::Upper,
            },
            Request::PushVoter {
                session: "a".into(),
                ranking: keys(&[2, 1]),
            },
            Request::MedianOrder { session: "a".into() },
        ];
        let batched = Service::new(4).handle_batch(script.clone());
        let mirror = Service::new(4);
        let sequential: Vec<Response> = script.into_iter().map(|r| mirror.handle(r)).collect();
        assert_eq!(batched, sequential);
        // Errors mid-batch did not abort the ops after them.
        assert!(matches!(batched.last(), Some(Response::Ranking { .. })));
    }

    #[test]
    fn shutdown_inside_a_batch_is_a_typed_error() {
        let svc = Service::new(1);
        let replies = svc.handle_batch(vec![Request::Ping, Request::Shutdown, Request::Ping]);
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0], Response::Pong);
        assert!(matches!(
            &replies[1],
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert_eq!(replies[2], Response::Pong);
    }
}
