//! The TCP transport: accept loop, worker pool, backpressure, and
//! graceful shutdown.
//!
//! # Threading model
//!
//! One **accept thread** takes connections off the listener. Each
//! accepted connection gets a **connection thread** that reads frames,
//! decodes requests, and submits jobs to a **bounded queue** drained by
//! a fixed pool of **worker threads** (the only threads that touch
//! [`Service`] state). The connection thread blocks on a rendezvous
//! channel for its response, then writes the reply frame — so a
//! connection has at most one request in flight and the queue depth
//! bounds the server's total outstanding work.
//!
//! # Backpressure, caps and timeouts
//!
//! * Queue full → the connection replies [`Response::Busy`]
//!   immediately; nothing queues unboundedly.
//! * Connection table full → the acceptor writes one `Busy` frame and
//!   closes the socket without spawning anything.
//! * Idle connections are closed after `read_timeout` (polled at a
//!   short interval so shutdown never waits on an idle peer; a
//!   per-connection [`FrameReader`] carries partial-frame bytes across
//!   poll ticks, so slow frames are reassembled, never desynced);
//!   writes are bounded by `write_timeout` at the socket.
//!
//! # Failure posture
//!
//! A malformed, oversized, or truncated frame kills **that
//! connection** — after a best-effort typed error reply — and nothing
//! else. Worker and accept threads never see raw bytes, so a hostile
//! peer cannot reach a panic path (`tests/proto_fuzz.rs`).
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] (or a wire [`Request::Shutdown`], which
//! acknowledges first and then triggers the same path) stops the
//! acceptor, closes the queue, lets the workers drain every queued
//! job, answers in-flight waits, and joins every thread before
//! returning its final [`ServerStats`].

use crate::proto::{
    write_frame, FrameError, FrameReader, ProtoError, Request, Response, DEFAULT_MAX_FRAME,
};
use crate::service::Service;
use crate::ErrorCode;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`]; `Default` suits tests and small
/// deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Maximum simultaneously served connections; excess connections
    /// receive one `Busy` frame and are closed.
    pub max_connections: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// Socket write timeout for response frames.
    pub write_timeout: Duration,
    /// Maximum frame-body size accepted or produced.
    pub max_frame: usize,
    /// Maximum live sessions in the service registry.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            max_sessions: 1024,
        }
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`Server::shutdown`] and readable live via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests executed to completion (any response, including typed
    /// errors).
    pub requests: u64,
    /// Requests or connections rejected with `Busy` for backpressure.
    pub rejected_busy: u64,
    /// Connections dropped for a protocol violation.
    pub protocol_errors: u64,
}

/// Granularity at which blocking socket reads wake up to re-check the
/// shutdown flag and the idle deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

type Job = Box<dyn FnOnce() + Send>;

/// The bounded MPMC job queue: `try_push` refuses instead of waiting,
/// which is what turns overload into `Busy` replies.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct JobQueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Why a job was not enqueued.
enum PushRefused {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushRefused> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushRefused::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushRefused::Full);
        }
        inner.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, so closing still lets every accepted job run.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// State shared by every thread of one server.
struct Shared {
    service: Service,
    queue: JobQueue,
    config: ServerConfig,
    shutting_down: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cv: Condvar,
    live_connections: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        *self.shutdown_signal.lock().expect("shutdown lock") = true;
        self.shutdown_cv.notify_all();
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping it shuts it down. See the
/// [module docs](self).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    finished: bool,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    ///
    /// # Errors
    /// The underlying [`io::Error`] from bind.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: Service::new(config.max_sessions),
            queue: JobQueue::new(config.queue_depth.max(1)),
            config: config.clone(),
            shutting_down: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            live_connections: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bucketrank-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("bucketrank-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
            conn_threads,
            finished: false,
        })
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Flags the server for shutdown without blocking (also triggered
    /// by a wire [`Request::Shutdown`]). Pair with
    /// [`wait_shutdown_requested`](Server::wait_shutdown_requested) /
    /// [`shutdown`](Server::shutdown).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
        self.wake_acceptor();
    }

    /// Blocks until someone — a wire request or
    /// [`request_shutdown`](Server::request_shutdown) — asks the
    /// server to stop.
    pub fn wait_shutdown_requested(&self) {
        let mut flagged = self.shared.shutdown_signal.lock().expect("shutdown lock");
        while !*flagged {
            flagged = self.shared.shutdown_cv.wait(flagged).expect("shutdown lock");
        }
    }

    /// Unblocks the accept loop by poking our own listening socket.
    fn wake_acceptor(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Graceful shutdown: stop accepting, drain every queued and
    /// in-flight request, join every thread, and return the final
    /// counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.finish()
    }

    fn finish(&mut self) -> ServerStats {
        if self.finished {
            return self.shared.stats();
        }
        self.finished = true;
        self.shared.request_shutdown();
        self.wake_acceptor();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connection threads notice the flag within one poll interval
        // and finish their in-flight request first.
        let conns = std::mem::take(&mut *self.conn_threads.lock().expect("conn list"));
        for t in conns {
            let _ = t.join();
        }
        // Close the queue only after the producers are gone: every
        // accepted job still runs before the workers exit.
        self.shared.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Accept errors can persist (EMFILE under connection
                // pressure); back off briefly instead of spinning hot.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if shared.live_connections.load(Ordering::SeqCst) >= shared.config.max_connections {
            // Over the cap: one Busy frame, then close. No thread is
            // spawned, so a connection flood cannot exhaust threads.
            shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let _ = write_frame(
                &mut stream,
                &Response::Busy.encode(),
                shared.config.max_frame,
            );
            continue;
        }
        shared.live_connections.fetch_add(1, Ordering::SeqCst);
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("bucketrank-conn".to_owned())
            .spawn(move || {
                connection_loop(stream, &shared);
                shared.live_connections.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        let mut handles = conn_threads.lock().expect("conn list");
        // Reap finished connection threads so the handle list tracks
        // live connections, not every connection ever served.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        handles.push(handle);
    }
}

/// Serves one connection until the peer closes, the idle deadline
/// passes, a protocol violation occurs, or the server drains.
fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let cfg = &shared.config;
    // Short socket timeout + explicit idle deadline: the thread wakes
    // at poll granularity, so shutdown and the idle limit are both
    // honored without a long blocking read.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL.min(cfg.read_timeout)));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let max_frame = cfg.max_frame;
    let mut idle_since = Instant::now();
    // The reader holds partial-frame state across poll timeouts: a
    // frame whose bytes straddle a >POLL_INTERVAL network gap resumes
    // where it stopped instead of losing the consumed prefix and
    // desyncing the stream.
    let mut reader = FrameReader::new();

    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let body = match reader.read_frame(&mut stream, max_frame) {
            Ok(body) => body,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Poll tick. Mid-frame the consumed bytes stay buffered
                // in `reader`; either way the idle deadline (measured
                // from the last complete frame) bounds how long a
                // silent or trickling peer holds the thread.
                if idle_since.elapsed() >= cfg.read_timeout {
                    return; // idle limit: close quietly
                }
                continue;
            }
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Proto(e)) => {
                // Oversized frame: typed reply, then fail the
                // connection (we cannot resynchronize the stream).
                fail_connection(&mut stream, shared, &e);
                return;
            }
        };
        idle_since = Instant::now();
        let request = match Request::decode(&body) {
            Ok(req) => req,
            Err(e) => {
                fail_connection(&mut stream, shared, &e);
                return;
            }
        };

        let is_shutdown = matches!(request, Request::Shutdown);
        // Rendezvous with the worker that runs our job.
        let (tx, rx) = mpsc::sync_channel::<Response>(1);
        let job_shared = Arc::clone(shared);
        let job: Job = Box::new(move || {
            let resp = job_shared.service.handle(request);
            job_shared.requests.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(resp);
        });
        let response = match shared.queue.try_push(job) {
            Ok(()) => match rx.recv() {
                Ok(resp) => resp,
                Err(_) => return, // worker pool tore down mid-request
            },
            Err(PushRefused::Full) => {
                shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
                Response::Busy
            }
            Err(PushRefused::Closed) => Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".to_owned(),
            },
        };
        if write_frame(&mut stream, &response.encode(), max_frame).is_err() {
            return;
        }
        if is_shutdown && matches!(response, Response::ShutdownAck) {
            // Acknowledged on the wire; now trigger the real drain.
            // Waking the acceptor here is best-effort — if the socket
            // can no longer report its address, Server::shutdown's own
            // wake still unblocks it.
            shared.request_shutdown();
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
            return;
        }
    }
}

/// Best-effort typed error reply, then the connection is abandoned.
fn fail_connection(stream: &mut TcpStream, shared: &Arc<Shared>, e: &ProtoError) {
    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let resp = Response::Error {
        code: ErrorCode::BadRequest,
        message: format!("protocol error: {e}"),
    };
    let _ = write_frame(stream, &resp.encode(), shared.config.max_frame);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn job_queue_bounds_and_drains() {
        let q = JobQueue::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let mk = |ran: &Arc<AtomicUsize>| -> Job {
            let ran = Arc::clone(ran);
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert!(q.try_push(mk(&ran)).is_ok());
        assert!(q.try_push(mk(&ran)).is_ok());
        assert!(matches!(q.try_push(mk(&ran)), Err(PushRefused::Full)));
        q.close();
        assert!(matches!(q.try_push(mk(&ran)), Err(PushRefused::Closed)));
        // Closed but not drained: both accepted jobs still pop and run.
        while let Some(job) = q.pop() {
            job();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn queue_pop_blocks_until_push() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().is_some());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(Box::new(|| {})).map_err(|_| "full").unwrap();
        assert!(t.join().unwrap());
    }

    #[test]
    fn bind_on_ephemeral_port_and_idle_shutdown() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.requests, 0);
    }
}
