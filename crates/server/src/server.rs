//! The TCP transport: a readiness-based connection loop, worker pool,
//! backpressure, and graceful shutdown.
//!
//! # Threading model (protocol v2)
//!
//! One **event thread** owns a nonblocking listener and every
//! connection. It accepts, reads, parses, dispatches, and writes —
//! no thread is ever spawned per connection, so thousands of idle
//! connections cost a socket and a small state machine each, not a
//! stack. A fixed pool of **worker threads** (the only threads that
//! touch [`Service`] state) drains a **bounded queue** of jobs and
//! hands finished reply bytes back through a completion queue that
//! doubles as the event thread's wakeup.
//!
//! Readiness without `epoll` (std-only, no `libc`): sockets are
//! nonblocking and the event thread keeps a **ready queue** of hot
//! connections — anything that produced bytes recently — swept every
//! iteration, while cold connections are swept at a coarse interval.
//! A [`FrameReader`] per connection carries partial frames across
//! sweeps, so a frame that trickles in over many poll intervals is
//! reassembled, never desynced. The loop's sleep is adaptive: it
//! spins near 50µs under load (and is woken instantly by completions)
//! and backs off to a few milliseconds when every connection is idle.
//!
//! # Pipelining and ordering
//!
//! A connection may have many frames outstanding (`pipeline_depth`
//! bounds the parsed-but-unanswered ops; beyond it the loop simply
//! stops reading that socket, turning the bound into TCP
//! backpressure). At most **one job per connection** is in flight at
//! a time, and a job takes the connection's entire pending frame
//! queue and executes it in order — so replies are written in exactly
//! the order the requests arrived, byte-identical to serving them one
//! at a time (`tests/server_pipeline.rs`), and a batch of edits pays
//! one session lookup, not N.
//!
//! # Backpressure, caps and timeouts
//!
//! * Job queue full → every pending frame on that connection is
//!   answered [`Response::Busy`] (a `Batch` frame gets a `BatchReply`
//!   of per-op Busy); nothing queues unboundedly.
//! * Connection table full → the acceptor writes one `Busy` frame and
//!   closes the socket without registering anything.
//! * Idle connections are closed after `read_timeout` (measured from
//!   the last complete frame); a peer that stalls our writes longer
//!   than `write_timeout` is dropped.
//!
//! # Failure posture
//!
//! A malformed, oversized, or truncated frame kills **that
//! connection** — after every already-parsed frame is answered and a
//! best-effort typed error reply is flushed — and nothing else.
//! Workers never see raw bytes, so a hostile peer cannot reach a
//! panic path (`tests/proto_fuzz.rs`).
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] (or a wire [`Request::Shutdown`], which is
//! acknowledged in-order like any reply and then triggers the same
//! path) stops accepting, stops reading, serves every already-parsed
//! frame, flushes every write buffer, closes every connection, and
//! joins every thread before returning the final [`ServerStats`].

use crate::proto::{
    encode_batch_reply, write_frame, FrameError, FrameReader, ProtoError, Request, Response,
    WireRequest, DEFAULT_MAX_FRAME,
};
use crate::service::Service;
use crate::ErrorCode;
use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`]; `Default` suits tests and small
/// deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Maximum simultaneously served connections; excess connections
    /// receive one `Busy` frame and are closed.
    pub max_connections: usize,
    /// Idle time after which a connection is closed.
    pub read_timeout: Duration,
    /// How long a peer may stall our reply writes before the
    /// connection is dropped.
    pub write_timeout: Duration,
    /// Maximum frame-body size accepted or produced.
    pub max_frame: usize,
    /// Maximum live sessions in the service registry.
    pub max_sessions: usize,
    /// Per-connection bound on parsed-but-unanswered ops; past it the
    /// event loop stops reading that socket (TCP backpressure) until
    /// replies drain.
    pub pipeline_depth: usize,
    /// Session-registry shards (`1..=`[`crate::proto::MAX_SHARDS`]);
    /// edits on different shards never contend.
    pub shards: usize,
    /// Durable state root; `None` runs memory-only. With a directory
    /// set, every acknowledged edit is on its shard's WAL before the
    /// reply, and a rebind over the same directory (with the same
    /// shard count) recovers every acknowledged edit.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL records a shard accumulates before checkpointing its
    /// sessions and truncating the log.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            max_sessions: 1024,
            pipeline_depth: 128,
            shards: crate::service::DEFAULT_SHARDS,
            data_dir: None,
            checkpoint_every: crate::service::DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`Server::shutdown`] and readable live via [`Server::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests executed to completion (any response, including typed
    /// errors); each op inside a `Batch` frame counts once.
    pub requests: u64,
    /// Requests or connections rejected with `Busy` for backpressure.
    pub rejected_busy: u64,
    /// Connections dropped for a protocol violation.
    pub protocol_errors: u64,
}

/// Shortest event-loop sleep: the poll cadence under active load.
const SLEEP_MIN: Duration = Duration::from_micros(50);
/// Sleep cap while any connection is hot (recently produced bytes).
const SLEEP_HOT_CAP: Duration = Duration::from_micros(500);
/// Sleep cap when every connection is cold.
const SLEEP_COLD_CAP: Duration = Duration::from_millis(10);
/// Cold connections are swept for readability at this interval; a
/// request on a long-idle connection waits at most about this long
/// before the loop notices it.
const COLD_SWEEP_INTERVAL: Duration = Duration::from_millis(20);
/// A hot connection with no bytes for this long goes cold.
const HOT_IDLE: Duration = Duration::from_millis(100);

type Job = Box<dyn FnOnce() + Send>;

/// The bounded MPMC job queue: `try_push` refuses instead of waiting,
/// which is what turns overload into `Busy` replies.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct JobQueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Why a job was not enqueued.
enum PushRefused {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(JobQueueInner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// True while a `try_push` would be accepted. The event thread is
    /// the only producer, so space observed here cannot be stolen
    /// before its push (workers only ever free space).
    fn has_capacity(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        !inner.closed && inner.jobs.len() < self.capacity
    }

    fn try_push(&self, job: Job) -> Result<(), PushRefused> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushRefused::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushRefused::Full);
        }
        inner.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, so closing still lets every accepted job run.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// A finished job's reply bytes, addressed by slab token. Stale
/// generations (the connection died while the job ran) are dropped.
struct Done {
    idx: usize,
    gen: u64,
    bytes: Vec<u8>,
    shutdown: bool,
}

/// Worker → event-thread channel; the condvar doubles as the event
/// loop's wakeup, so a completed job never waits on a poll tick.
#[derive(Default)]
struct Completions {
    inner: Mutex<Vec<Done>>,
    cv: Condvar,
}

impl Completions {
    fn push(&self, done: Done) {
        self.inner.lock().expect("completion lock").push(done);
        self.cv.notify_one();
    }

    fn drain(&self) -> Vec<Done> {
        std::mem::take(&mut *self.inner.lock().expect("completion lock"))
    }

    /// Wakes the event loop without delivering anything (shutdown).
    fn notify(&self) {
        self.cv.notify_all();
    }

    /// Sleeps until a completion lands, `notify` is called, or
    /// `timeout` passes — the event loop's only blocking point.
    fn wait(&self, timeout: Duration) {
        let guard = self.inner.lock().expect("completion lock");
        if guard.is_empty() {
            let _ = self.cv.wait_timeout(guard, timeout).expect("completion lock");
        }
    }
}

/// State shared by every thread of one server.
struct Shared {
    service: Service,
    queue: JobQueue,
    completions: Completions,
    config: ServerConfig,
    shutting_down: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cv: Condvar,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        *self.shutdown_signal.lock().expect("shutdown lock") = true;
        self.shutdown_cv.notify_all();
        // The event loop may be mid-sleep; kick it.
        self.completions.notify();
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping it shuts it down. See the
/// [module docs](self).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    finished: bool,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// event loop and worker pool.
    ///
    /// # Errors
    /// The underlying [`io::Error`] from bind, or a service
    /// construction failure (invalid shard/session configuration, or
    /// an I/O failure opening/recovering the data directory).
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Service::with_config(crate::service::ServiceConfig {
            shards: config.shards,
            max_sessions: config.max_sessions,
            data_dir: config.data_dir.clone(),
            checkpoint_every: config.checkpoint_every,
        })?;
        let shared = Arc::new(Shared {
            service,
            queue: JobQueue::new(config.queue_depth.max(1)),
            completions: Completions::default(),
            config: config.clone(),
            shutting_down: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bucketrank-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let event_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bucketrank-event".to_owned())
                .spawn(move || EventLoop::new(listener, shared).run())
                .expect("spawn event loop")
        };

        Ok(Server {
            addr,
            shared,
            event_thread: Some(event_thread),
            workers,
            finished: false,
        })
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Flags the server for shutdown without blocking (also triggered
    /// by a wire [`Request::Shutdown`]). Pair with
    /// [`wait_shutdown_requested`](Server::wait_shutdown_requested) /
    /// [`shutdown`](Server::shutdown).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until someone — a wire request or
    /// [`request_shutdown`](Server::request_shutdown) — asks the
    /// server to stop.
    pub fn wait_shutdown_requested(&self) {
        let mut flagged = self.shared.shutdown_signal.lock().expect("shutdown lock");
        while !*flagged {
            flagged = self.shared.shutdown_cv.wait(flagged).expect("shutdown lock");
        }
    }

    /// Graceful shutdown: stop accepting, drain every parsed and
    /// in-flight request, flush and close every connection, join every
    /// thread, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.finish()
    }

    fn finish(&mut self) -> ServerStats {
        if self.finished {
            return self.shared.stats();
        }
        self.finished = true;
        self.shared.request_shutdown();
        // The event loop drains in-flight work (the workers are still
        // alive to finish it), flushes, closes, and exits.
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        // Close the queue only after the producer is gone: every
        // accepted job still runs before the workers exit.
        self.shared.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Per-connection state machine owned by the event thread.
struct Conn {
    stream: TcpStream,
    /// Carries partial frames across sweeps.
    reader: FrameReader,
    /// Parsed frames not yet handed to a worker.
    pending: VecDeque<WireRequest>,
    /// Ops represented by `pending` (a batch counts its sub-requests).
    pending_ops: usize,
    /// At most one worker job per connection keeps replies in order.
    in_flight: bool,
    /// Unwritten reply bytes (`wpos` marks the flushed prefix).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Set when a write would block with bytes still unflushed.
    write_stalled: Option<Instant>,
    /// Last complete frame (the idle-timeout clock).
    idle_since: Instant,
    /// Last byte seen (the hot/cold clock).
    last_data: Instant,
    /// On the ready queue?
    hot: bool,
    /// Peer closed its write side; serve what we have, then drop.
    read_closed: bool,
    /// Close once `wbuf` flushes (shutdown ack or protocol error sent).
    closing: bool,
    /// First protocol violation; reported after pending work drains.
    broken: Option<ProtoError>,
    /// Unrecoverable socket error; reaped immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            reader: FrameReader::new(),
            pending: VecDeque::new(),
            pending_ops: 0,
            in_flight: false,
            wbuf: Vec::new(),
            wpos: 0,
            write_stalled: None,
            idle_since: now,
            last_data: now,
            hot: false,
            read_closed: false,
            closing: false,
            broken: None,
            dead: false,
        }
    }

    /// Nothing queued, running, or unflushed.
    fn drained(&self) -> bool {
        !self.in_flight && self.pending.is_empty() && self.wpos >= self.wbuf.len()
    }
}

/// Generation-tagged connection slab: indices are reused, tokens are
/// not, so a completion for a dead connection can never reach its
/// replacement.
#[derive(Default)]
struct Slab {
    slots: Vec<(u64, Option<Conn>)>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx].1 = Some(conn);
            idx
        } else {
            self.slots.push((0, Some(conn)));
            self.slots.len() - 1
        }
    }

    fn generation(&self, idx: usize) -> u64 {
        self.slots[idx].0
    }

    fn get_mut(&mut self, idx: usize, gen: u64) -> Option<&mut Conn> {
        match self.slots.get_mut(idx) {
            Some((g, conn)) if *g == gen => conn.as_mut(),
            _ => None,
        }
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slots.get_mut(idx).and_then(|(_, c)| c.as_mut())
    }

    fn remove(&mut self, idx: usize) {
        if self.slots[idx].1.take().is_some() {
            self.slots[idx].0 += 1;
            self.free.push(idx);
            self.live -= 1;
        }
    }

    /// Indices of live connections (allocation-light snapshot).
    fn indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, (_, c))| c.as_ref().map(|_| i))
            .collect()
    }
}

/// Appends one framed reply to `out`; a body that exceeds `max_frame`
/// degrades to a typed error frame instead of a torn stream.
fn append_frame(out: &mut Vec<u8>, body: &[u8], max_frame: usize) {
    if write_frame(out, body, max_frame).is_err() {
        let fallback = Response::Error {
            code: ErrorCode::BadRequest,
            message: "reply exceeds the maximum frame size".to_owned(),
        }
        .encode();
        let _ = write_frame(out, &fallback, max_frame);
    }
}

/// Executes one connection's pending frames **in order** on a worker
/// and posts the concatenated reply frames back to the event thread.
fn run_frames(shared: &Arc<Shared>, idx: usize, gen: u64, frames: Vec<WireRequest>) {
    let max_frame = shared.config.max_frame;
    let mut bytes = Vec::new();
    let mut shutdown = false;
    let mut ops = 0u64;
    for frame in frames {
        match frame {
            WireRequest::Single(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = shared.service.handle(req);
                ops += 1;
                if is_shutdown && matches!(resp, Response::ShutdownAck) {
                    shutdown = true;
                }
                append_frame(&mut bytes, &resp.encode(), max_frame);
            }
            WireRequest::Batch(reqs) => {
                ops += reqs.len() as u64;
                let replies = shared.service.handle_batch(reqs);
                append_frame(&mut bytes, &encode_batch_reply(&replies), max_frame);
            }
        }
    }
    shared.requests.fetch_add(ops, Ordering::Relaxed);
    if shutdown {
        // Unblock `wait_shutdown_requested` immediately; the event
        // loop flushes the in-order ack before closing the connection.
        shared.request_shutdown();
    }
    shared.completions.push(Done {
        idx,
        gen,
        bytes,
        shutdown,
    });
}

/// The event thread: owns the listener and every connection.
struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    slab: Slab,
    /// The ready queue: connections swept every iteration.
    ready: Vec<usize>,
    last_cold_sweep: Instant,
    sleep: Duration,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>) -> Self {
        EventLoop {
            listener,
            shared,
            slab: Slab::default(),
            ready: Vec::new(),
            last_cold_sweep: Instant::now(),
            sleep: SLEEP_MIN,
        }
    }

    fn run(mut self) {
        loop {
            let mut worked = self.drain_completions();
            let shutting = self.shared.shutting_down.load(Ordering::SeqCst);
            if !shutting {
                worked |= self.accept_new();
                worked |= self.sweep_reads();
            }
            worked |= self.dispatch();
            worked |= self.flush_writes();
            self.reap(shutting);
            if shutting && self.slab.live == 0 {
                return;
            }
            if worked {
                self.sleep = SLEEP_MIN;
                continue;
            }
            let cap = if self.ready.is_empty() {
                SLEEP_COLD_CAP
            } else {
                SLEEP_HOT_CAP
            };
            self.shared.completions.wait(self.sleep.min(cap));
            self.sleep = (self.sleep * 2).min(cap);
        }
    }

    /// Moves finished reply bytes into their connections' write
    /// buffers; stale tokens (connection already reaped) are dropped.
    fn drain_completions(&mut self) -> bool {
        let done = self.shared.completions.drain();
        let worked = !done.is_empty();
        for d in done {
            if let Some(conn) = self.slab.get_mut(d.idx, d.gen) {
                conn.in_flight = false;
                if conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                }
                conn.wbuf.extend_from_slice(&d.bytes);
                if d.shutdown {
                    conn.closing = true;
                }
                self.promote(d.idx);
            }
        }
        worked
    }

    fn accept_new(&mut self) -> bool {
        let mut worked = false;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    worked = true;
                    if self.slab.live >= self.shared.config.max_connections {
                        // Over the cap: one best-effort Busy frame,
                        // then close. Nothing is registered, so a
                        // connection flood cannot exhaust the slab.
                        self.shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(self.shared.config.write_timeout));
                        let _ = write_frame(
                            &mut stream,
                            &Response::Busy.encode(),
                            self.shared.config.max_frame,
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    let idx = self.slab.insert(Conn::new(stream));
                    self.promote(idx);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Accept errors can persist (EMFILE under connection
                // pressure); the adaptive sleep bounds the retry rate.
                Err(_) => break,
            }
        }
        worked
    }

    /// Reads every hot connection each iteration and every cold one at
    /// [`COLD_SWEEP_INTERVAL`]; demotes hot connections that went
    /// quiet.
    fn sweep_reads(&mut self) -> bool {
        let mut worked = false;
        for idx in std::mem::take(&mut self.ready) {
            worked |= self.read_conn(idx);
        }
        if self.last_cold_sweep.elapsed() >= COLD_SWEEP_INTERVAL {
            self.last_cold_sweep = Instant::now();
            for idx in self.slab.indices() {
                let already_hot = self.slab.conn_mut(idx).is_some_and(|c| c.hot);
                if !already_hot {
                    worked |= self.read_conn(idx);
                }
            }
        }
        // Rebuild the ready queue: keep connections with recent bytes
        // or outstanding work.
        let now = Instant::now();
        for idx in self.slab.indices() {
            let Some(conn) = self.slab.conn_mut(idx) else { continue };
            let keep = !conn.dead
                && (now.duration_since(conn.last_data) < HOT_IDLE
                    || conn.in_flight
                    || !conn.pending.is_empty()
                    || conn.wpos < conn.wbuf.len()
                    || conn.reader.mid_frame());
            conn.hot = keep;
            if keep {
                self.ready.push(idx);
            }
        }
        worked
    }

    /// Drains one socket: parses complete frames into `pending` until
    /// the socket would block or the pipeline bound is hit.
    fn read_conn(&mut self, idx: usize) -> bool {
        let max_frame = self.shared.config.max_frame;
        let depth = self.shared.config.pipeline_depth.max(1);
        let Some(conn) = self.slab.conn_mut(idx) else {
            return false;
        };
        if conn.read_closed || conn.dead || conn.broken.is_some() {
            return false;
        }
        let mut got = false;
        loop {
            if conn.pending_ops >= depth {
                break; // backpressure: let TCP push back on the peer
            }
            match conn.reader.read_frame(&mut conn.stream, max_frame) {
                Ok(body) => {
                    got = true;
                    let now = Instant::now();
                    conn.idle_since = now;
                    conn.last_data = now;
                    match WireRequest::decode(&body) {
                        Ok(w) => {
                            conn.pending_ops += w.ops();
                            conn.pending.push_back(w);
                        }
                        Err(e) => {
                            conn.broken = Some(e);
                            break;
                        }
                    }
                }
                Err(FrameError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if conn.reader.mid_frame() {
                        // A partial frame is trickling in; keep the
                        // connection hot so it is re-polled promptly.
                        conn.last_data = Instant::now();
                    }
                    break;
                }
                Err(FrameError::Closed) => {
                    conn.read_closed = true;
                    break;
                }
                Err(FrameError::Io(_)) => {
                    conn.dead = true;
                    break;
                }
                Err(FrameError::Proto(e)) => {
                    conn.broken = Some(e);
                    break;
                }
            }
        }
        got
    }

    /// Hands each connection's pending frames to a worker (one job per
    /// connection, executing all of them in order), or answers Busy
    /// when the queue is full; reports protocol violations once all
    /// prior work has drained.
    fn dispatch(&mut self) -> bool {
        let mut worked = false;
        let max_frame = self.shared.config.max_frame;
        for idx in self.slab.indices() {
            let gen = self.slab.generation(idx);
            let has_space = self.shared.queue.has_capacity();
            let shared = Arc::clone(&self.shared);
            let Some(conn) = self.slab.conn_mut(idx) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if !conn.in_flight && !conn.pending.is_empty() {
                worked = true;
                if has_space {
                    let frames: Vec<WireRequest> = conn.pending.drain(..).collect();
                    conn.pending_ops = 0;
                    conn.in_flight = true;
                    let job: Job = Box::new(move || run_frames(&shared, idx, gen, frames));
                    if self.shared.queue.try_push(job).is_err() {
                        // Only reachable if the queue closed under us;
                        // nothing will answer, so fail the connection.
                        let Some(conn) = self.slab.conn_mut(idx) else {
                            continue;
                        };
                        conn.in_flight = false;
                        conn.dead = true;
                    }
                    continue;
                }
                // Queue full: answer Busy per wire frame, in order. A
                // batch frame still gets its shape-preserving reply so
                // a pipelined client never desyncs.
                let refused = conn.pending.len() as u64;
                for w in conn.pending.drain(..) {
                    let body = match w {
                        WireRequest::Single(_) => Response::Busy.encode(),
                        WireRequest::Batch(reqs) => {
                            encode_batch_reply(&vec![Response::Busy; reqs.len()])
                        }
                    };
                    append_frame(&mut conn.wbuf, &body, max_frame);
                }
                conn.pending_ops = 0;
                self.shared.rejected_busy.fetch_add(refused, Ordering::Relaxed);
                continue;
            }
            if !conn.in_flight && conn.pending.is_empty() && conn.wpos >= conn.wbuf.len() {
                if let Some(e) = conn.broken.take() {
                    // Every earlier reply has flushed: now the typed
                    // error, then close (the stream cannot resync).
                    worked = true;
                    self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("protocol error: {e}"),
                    };
                    append_frame(&mut conn.wbuf, &resp.encode(), max_frame);
                    conn.closing = true;
                }
            }
        }
        worked
    }

    /// Flushes write buffers as far as each socket will take them.
    fn flush_writes(&mut self) -> bool {
        let mut worked = false;
        for idx in self.slab.indices() {
            let Some(conn) = self.slab.conn_mut(idx) else {
                continue;
            };
            if conn.dead || conn.wpos >= conn.wbuf.len() {
                continue;
            }
            loop {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(k) => {
                        worked = true;
                        conn.wpos += k;
                        conn.write_stalled = None;
                        if conn.wpos >= conn.wbuf.len() {
                            conn.wbuf.clear();
                            conn.wpos = 0;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if conn.write_stalled.is_none() {
                            conn.write_stalled = Some(Instant::now());
                        }
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        worked
    }

    /// Closes connections that are finished, idle past the deadline,
    /// stalled past the write timeout, or drained during shutdown.
    fn reap(&mut self, shutting: bool) {
        let read_timeout = self.shared.config.read_timeout;
        let write_timeout = self.shared.config.write_timeout;
        for idx in self.slab.indices() {
            let Some(conn) = self.slab.conn_mut(idx) else {
                continue;
            };
            let drained = conn.drained();
            let remove = conn.dead
                || (drained && (conn.closing || conn.read_closed || shutting))
                || (drained && conn.broken.is_none() && conn.idle_since.elapsed() >= read_timeout)
                || conn
                    .write_stalled
                    .is_some_and(|t| t.elapsed() >= write_timeout);
            if remove {
                self.slab.remove(idx);
            }
        }
    }

    fn promote(&mut self, idx: usize) {
        if let Some(conn) = self.slab.conn_mut(idx) {
            if !conn.hot && !conn.dead {
                conn.hot = true;
                self.ready.push(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn job_queue_bounds_and_drains() {
        let q = JobQueue::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let mk = |ran: &Arc<AtomicUsize>| -> Job {
            let ran = Arc::clone(ran);
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert!(q.has_capacity());
        assert!(q.try_push(mk(&ran)).is_ok());
        assert!(q.try_push(mk(&ran)).is_ok());
        assert!(!q.has_capacity());
        assert!(matches!(q.try_push(mk(&ran)), Err(PushRefused::Full)));
        q.close();
        assert!(!q.has_capacity());
        assert!(matches!(q.try_push(mk(&ran)), Err(PushRefused::Closed)));
        // Closed but not drained: both accepted jobs still pop and run.
        while let Some(job) = q.pop() {
            job();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn queue_pop_blocks_until_push() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().is_some());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(Box::new(|| {})).map_err(|_| "full").unwrap();
        assert!(t.join().unwrap());
    }

    #[test]
    fn slab_tokens_do_not_alias_across_reuse() {
        let mut slab = Slab::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let s1 = TcpStream::connect(addr).unwrap();
        let s2 = TcpStream::connect(addr).unwrap();
        let idx = slab.insert(Conn::new(s1));
        let gen = slab.generation(idx);
        assert!(slab.get_mut(idx, gen).is_some());
        slab.remove(idx);
        assert!(slab.get_mut(idx, gen).is_none());
        let idx2 = slab.insert(Conn::new(s2));
        assert_eq!(idx2, idx, "slot is reused");
        assert!(
            slab.get_mut(idx, gen).is_none(),
            "a stale token must not reach the new connection"
        );
        assert!(slab.get_mut(idx2, slab.generation(idx2)).is_some());
        assert_eq!(slab.live, 1);
    }

    #[test]
    fn bind_on_ephemeral_port_and_idle_shutdown() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.requests, 0);
    }
}
