//! The length-prefixed binary wire protocol.
//!
//! # Framing
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! ┌────────────────┬───────────────────────────────────────────┐
//! │ u32 BE length  │ body (`length` bytes)                     │
//! └────────────────┴───────────────────────────────────────────┘
//! body = [ u8 version | u8 opcode | payload… ]
//! ```
//!
//! Two versions share the framing. A **v1** body carries one request
//! (or one response). A **v2** body is a *batch*: `[2 | 0x20 |
//! u16 count | count × (u32 len | v1 request body)]`, answered by
//! exactly one batch reply `[2 | 0xa0 | u16 count | count × (u32 len |
//! v1 response body)]` whose sub-replies preserve request order —
//! per-op failures travel as typed `Error` sub-replies, not connection
//! faults. v1 and v2 frames interleave freely on one connection
//! ([`WireRequest::decode`] dispatches on the version byte), and the
//! batch count is bounded by [`MAX_BATCH`] before any per-request
//! allocation, mirroring the frame-length bound.
//!
//! The length counts the body only and is bounded by the transport's
//! `max_frame` (default [`DEFAULT_MAX_FRAME`]); a declared length above
//! the bound is a typed [`ProtoError::FrameTooLarge`] **before** any
//! allocation, so a hostile peer cannot make the server reserve memory
//! it never sends. Integers are big-endian throughout. Strings are
//! `u8 length + UTF-8 bytes` (session names are short); rankings are
//! `u32 n + n × u32` bucket indices (the element→bucket map of a
//! [`BucketOrder`], decoded with [`BucketOrder::from_keys`], which
//! accepts any key vector). A body that decodes but has bytes left
//! over is [`ProtoError::TrailingBytes`] — lengths are exact, never
//! advisory.
//!
//! # Error posture
//!
//! Decoding **never panics**. Every malformed input — truncated
//! payload, unknown opcode, bad UTF-8, oversized declared length —
//! returns a typed [`ProtoError`]. The server's connection loop treats
//! any such error as fatal *for that connection only*: it fails the
//! connection cleanly and keeps serving others (`tests/proto_fuzz.rs`
//! drives random, truncated and oversized byte streams through both
//! the decoder and a live socket to pin this down).

use bucketrank_core::BucketOrder;
use std::io::{self, Read, Write};

/// Protocol version carried in every single-request frame body.
pub const PROTO_VERSION: u8 = 1;

/// Protocol version of the multi-op batch frames ([`encode_batch`] /
/// [`decode_batch`]). A v2 frame carries N complete v1 request bodies
/// and is answered by exactly one batch-reply frame carrying N v1
/// response bodies in the same order; v1 and v2 frames may be freely
/// interleaved on one connection.
pub const PROTO_VERSION_2: u8 = 2;

/// Default upper bound on a frame body, requests and responses alike.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Upper bound on the number of sub-requests in one batch frame. The
/// count is validated against this bound **before** any per-request
/// allocation, like the frame length itself.
pub const MAX_BATCH: usize = 1024;

/// Upper bound on a session-name length (encoded with a `u8` length).
pub const MAX_NAME: usize = 255;

/// Upper bound on a ranking's domain size accepted off the wire; keeps
/// a single decoded request's allocation proportional to the frame
/// bound.
pub const MAX_ELEMENTS: usize = 1 << 20;

/// Upper bound on the shard count a service may be configured with,
/// and on the per-shard rows a [`Response::Stats`] decoder accepts
/// before allocating.
pub const MAX_SHARDS: usize = 1024;

/// Upper bound on the number of class-constraint rules a
/// [`Request::MinMaxAgg`] may carry; bounded before allocation like
/// every other count on the wire.
pub const MAX_RULES: usize = 4096;

/// A typed wire-protocol failure. Fatal for the connection that
/// produced it, harmless for the server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The body ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// A frame declared a body longer than the negotiated bound.
    FrameTooLarge {
        /// The declared body length.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// The version byte is not [`PROTO_VERSION`].
    UnsupportedVersion {
        /// The version byte received.
        found: u8,
    },
    /// The opcode byte names no known message.
    UnknownOpcode {
        /// The opcode received.
        opcode: u8,
    },
    /// The body decoded completely but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A session name exceeded [`MAX_NAME`].
    NameTooLong {
        /// The declared length.
        len: usize,
    },
    /// A ranking declared more elements than [`MAX_ELEMENTS`].
    RankingTooLarge {
        /// The declared element count.
        len: usize,
    },
    /// A weight vector declared more entries than [`MAX_ELEMENTS`].
    WeightsTooLarge {
        /// The declared entry count.
        len: usize,
    },
    /// A class-label vector declared more entries than
    /// [`MAX_ELEMENTS`].
    LabelsTooLarge {
        /// The declared entry count.
        len: usize,
    },
    /// A constraint-rule vector declared more entries than
    /// [`MAX_RULES`].
    RulesTooLarge {
        /// The declared entry count.
        len: usize,
    },
    /// A field carried a value outside its enumeration (metric code,
    /// median policy, error code).
    BadValue {
        /// Which field was out of range.
        what: &'static str,
    },
    /// A batch frame declared zero sub-requests.
    EmptyBatch,
    /// A batch frame declared more sub-requests than [`MAX_BATCH`].
    BatchTooLarge {
        /// The declared sub-request count.
        len: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ProtoError::Truncated { needed, have } => {
                write!(f, "truncated body: needed {needed} more bytes, had {have}")
            }
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte bound")
            }
            ProtoError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found} (expected {PROTO_VERSION})")
            }
            ProtoError::UnknownOpcode { opcode } => write!(f, "unknown opcode {opcode:#04x}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete body")
            }
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::NameTooLong { len } => {
                write!(f, "session name of {len} bytes exceeds {MAX_NAME}")
            }
            ProtoError::RankingTooLarge { len } => {
                write!(f, "ranking of {len} elements exceeds {MAX_ELEMENTS}")
            }
            ProtoError::WeightsTooLarge { len } => {
                write!(f, "weight vector of {len} entries exceeds {MAX_ELEMENTS}")
            }
            ProtoError::LabelsTooLarge { len } => {
                write!(f, "label vector of {len} entries exceeds {MAX_ELEMENTS}")
            }
            ProtoError::RulesTooLarge { len } => {
                write!(f, "rule vector of {len} entries exceeds {MAX_RULES}")
            }
            ProtoError::BadValue { what } => write!(f, "out-of-range value for {what}"),
            ProtoError::EmptyBatch => write!(f, "batch frame with zero sub-requests"),
            ProtoError::BatchTooLarge { len } => {
                write!(f, "batch of {len} sub-requests exceeds {MAX_BATCH}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Which pairwise metric a [`Request::PairMetric`] asks for, on the
/// exact `_x2` integer scale of the prepared kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `2·Kprof` — [`bucketrank_metrics::prepared::kprof_x2_prepared`].
    KprofX2,
    /// `2·Fprof` — [`bucketrank_metrics::prepared::fprof_x2_prepared`].
    FprofX2,
    /// `2·KHaus` — [`bucketrank_metrics::prepared::khaus_x2_prepared`].
    KhausX2,
    /// `2·FHaus` — [`bucketrank_metrics::prepared::fhaus_x2_prepared`].
    FhausX2,
}

impl MetricKind {
    /// All metric kinds, in wire-code order.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::KprofX2,
        MetricKind::FprofX2,
        MetricKind::KhausX2,
        MetricKind::FhausX2,
    ];

    fn code(self) -> u8 {
        match self {
            MetricKind::KprofX2 => 0,
            MetricKind::FprofX2 => 1,
            MetricKind::KhausX2 => 2,
            MetricKind::FhausX2 => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, ProtoError> {
        match c {
            0 => Ok(MetricKind::KprofX2),
            1 => Ok(MetricKind::FprofX2),
            2 => Ok(MetricKind::KhausX2),
            3 => Ok(MetricKind::FhausX2),
            _ => Err(ProtoError::BadValue { what: "metric kind" }),
        }
    }
}

/// One class-constraint rule on the wire (mirrors
/// [`bucketrank_aggregate::minmax::WindowRule`] without a dependency
/// edge in the encoding layer): among the first `window` positions of
/// the aggregate, candidates labeled `class` must number `min..=max`.
/// Semantic validation (window bounds, class existence, feasibility)
/// happens server-side in the aggregation layer and comes back as a
/// typed [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireRule {
    /// Prefix length the rule applies to.
    pub window: u32,
    /// The class label the rule counts.
    pub class: u32,
    /// Minimum occurrences of `class` within the window.
    pub min: u32,
    /// Maximum occurrences of `class` within the window.
    pub max: u32,
}

/// Median policy on the wire (mirrors
/// [`bucketrank_aggregate::MedianPolicy`] without a dependency edge in
/// the encoding layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePolicy {
    /// Lower median.
    Lower,
    /// Upper median.
    Upper,
}

impl WirePolicy {
    pub(crate) fn code(self) -> u8 {
        match self {
            WirePolicy::Lower => 0,
            WirePolicy::Upper => 1,
        }
    }

    pub(crate) fn from_code(c: u8) -> Result<Self, ProtoError> {
        match c {
            0 => Ok(WirePolicy::Lower),
            1 => Ok(WirePolicy::Upper),
            _ => Err(ProtoError::BadValue { what: "median policy" }),
        }
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Create a named empty session over an `n`-element domain.
    CreateSession {
        /// Session name (≤ [`MAX_NAME`] bytes).
        name: String,
        /// Domain size.
        n: u32,
        /// Median policy of the maintained median vector.
        policy: WirePolicy,
    },
    /// Drop a session and every voter in it.
    DropSession {
        /// Session name.
        name: String,
    },
    /// Push a voter into a session; answered with the issued id.
    PushVoter {
        /// Session name.
        session: String,
        /// The voter's ranking as bucket indices.
        ranking: BucketOrder,
    },
    /// Remove a live voter.
    RemoveVoter {
        /// Session name.
        session: String,
        /// The raw voter id issued at push.
        voter: u64,
    },
    /// Replace a live voter's ranking in place.
    ReplaceVoter {
        /// Session name.
        session: String,
        /// The raw voter id issued at push.
        voter: u64,
        /// The replacement ranking.
        ranking: BucketOrder,
    },
    /// Read the session's median order (served from a snapshot).
    MedianOrder {
        /// Session name.
        session: String,
    },
    /// Read the session's median top-`k` (served from a snapshot).
    TopK {
        /// Session name.
        session: String,
        /// How many leading elements to keep.
        k: u32,
    },
    /// Kemeny cost (×2) of a candidate against the session's live
    /// profile (served from a snapshot's tally).
    KemenyCost {
        /// Session name.
        session: String,
        /// The candidate ranking.
        candidate: BucketOrder,
    },
    /// A pairwise metric between two **stored** voter rankings,
    /// evaluated with the prepared kernels.
    PairMetric {
        /// Session name.
        session: String,
        /// Which metric.
        metric: MetricKind,
        /// First stored voter.
        voter_a: u64,
        /// Second stored voter.
        voter_b: u64,
    },
    /// Weighted footrule (×2) between two **stored** voter rankings
    /// under a per-position weight vector carried in the frame,
    /// evaluated with the prepared weighted kernel.
    WeightedDist {
        /// Session name.
        session: String,
        /// First stored voter.
        voter_a: u64,
        /// Second stored voter.
        voter_b: u64,
        /// Per-position weights in integer units, `weights[p]` for
        /// 1-based rank `p + 1`; validated server-side by
        /// [`bucketrank_metrics::weighted::Weights::from_units`].
        weights: Vec<u64>,
    },
    /// Top-difference distance between two **stored** voter rankings
    /// under a per-position weight vector carried in the frame.
    TopDiff {
        /// Session name.
        session: String,
        /// First stored voter.
        voter_a: u64,
        /// Second stored voter.
        voter_b: u64,
        /// Per-position weights, as on
        /// [`WeightedDist`](Request::WeightedDist).
        weights: Vec<u64>,
    },
    /// Minmax aggregation over the session's live voters: the full
    /// ranking minimizing the **maximum** per-voter `Kprof ×2`
    /// distance, optionally under class constraints (candidate labels
    /// plus prefix-window rules). Runs the deterministic heuristic
    /// pipeline (`bucketrank_aggregate::minmax::minmax_aggregate` at
    /// its fixed wire seed); answered with [`Response::RankingCost`].
    MinMaxAgg {
        /// Session name.
        session: String,
        /// Per-candidate class labels (`labels[e]` for element `e`);
        /// empty means unconstrained, otherwise the length must equal
        /// the session's domain size.
        labels: Vec<u32>,
        /// Prefix-window rules over the labels.
        rules: Vec<WireRule>,
    },
    /// Read the per-shard durability and occupancy counters; answered
    /// with [`Response::Stats`].
    Stats,
    /// Ask the server to shut down gracefully (drain in-flight
    /// requests, then stop). Answered with [`Response::ShutdownAck`]
    /// before the drain begins.
    Shutdown,
}

/// One shard's counters, as carried in [`Response::Stats`]. All values
/// are monotonic except the two occupancy gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Sessions resident in memory right now (gauge).
    pub sessions: u64,
    /// Sessions evicted to disk, faultable on next touch (gauge).
    pub evicted: u64,
    /// WAL records appended since startup.
    pub wal_records: u64,
    /// WAL bytes appended since startup.
    pub wal_bytes: u64,
    /// Checkpoints written (compaction, eviction and recovery).
    pub checkpoints: u64,
    /// Sessions evicted by the LRU cap.
    pub evictions: u64,
    /// Sessions recovered — replayed at startup or faulted back in.
    pub recoveries: u64,
}

/// The server's typed failure codes, carried in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// No session has the requested name.
    UnknownSession,
    /// A session with the requested name already exists.
    SessionExists,
    /// The voter id is not live in the session.
    UnknownVoter,
    /// A ranking's domain size differs from the session's.
    DomainMismatch,
    /// `k` exceeds the domain size.
    InvalidK,
    /// The session is at its voter-capacity limit.
    TooManyVoters,
    /// A read was issued against a session with no live voters.
    NoVoters,
    /// The request was structurally valid but semantically rejected
    /// (bad name, domain bound, server at session capacity).
    BadRequest,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::UnknownSession => 1,
            ErrorCode::SessionExists => 2,
            ErrorCode::UnknownVoter => 3,
            ErrorCode::DomainMismatch => 4,
            ErrorCode::InvalidK => 5,
            ErrorCode::TooManyVoters => 6,
            ErrorCode::NoVoters => 7,
            ErrorCode::BadRequest => 8,
            ErrorCode::ShuttingDown => 9,
        }
    }

    fn from_code(c: u8) -> Result<Self, ProtoError> {
        Ok(match c {
            1 => ErrorCode::UnknownSession,
            2 => ErrorCode::SessionExists,
            3 => ErrorCode::UnknownVoter,
            4 => ErrorCode::DomainMismatch,
            5 => ErrorCode::InvalidK,
            6 => ErrorCode::TooManyVoters,
            7 => ErrorCode::NoVoters,
            8 => ErrorCode::BadRequest,
            9 => ErrorCode::ShuttingDown,
            _ => return Err(ProtoError::BadValue { what: "error code" }),
        })
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// The session was created.
    SessionCreated,
    /// The session was dropped.
    SessionDropped,
    /// The voter was pushed; carries the issued raw id.
    VoterPushed {
        /// The issued raw voter id.
        voter: u64,
    },
    /// The voter was removed.
    VoterRemoved,
    /// The voter was replaced.
    VoterReplaced,
    /// A ranking result (median order, top-`k`).
    Ranking {
        /// The ranking as bucket indices.
        order: BucketOrder,
    },
    /// An exact integer cost on the `_x2` scale.
    CostX2 {
        /// The cost value.
        value: u64,
    },
    /// A ranking plus its objective value, as answered to
    /// [`Request::MinMaxAgg`].
    RankingCost {
        /// The aggregated ranking.
        order: BucketOrder,
        /// Its objective value (maximum per-voter `Kprof ×2`).
        cost_x2: u64,
    },
    /// The request was rejected for backpressure: the job queue or the
    /// connection table is full. Retry later.
    Busy,
    /// A typed failure.
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Per-shard counters, one row per shard in shard order.
    Stats {
        /// One row per shard.
        shards: Vec<ShardStats>,
    },
    /// Graceful-shutdown acknowledgement.
    ShutdownAck,
}

// ---------------------------------------------------------------------
// Opcodes.

const OP_PING: u8 = 0x01;
const OP_CREATE: u8 = 0x02;
const OP_DROP: u8 = 0x03;
const OP_PUSH: u8 = 0x04;
const OP_REMOVE: u8 = 0x05;
const OP_REPLACE: u8 = 0x06;
const OP_MEDIAN: u8 = 0x07;
const OP_TOPK: u8 = 0x08;
const OP_KEMENY: u8 = 0x09;
const OP_PAIR: u8 = 0x0a;
const OP_SHUTDOWN: u8 = 0x0b;
const OP_STATS: u8 = 0x0c;
const OP_WEIGHTED: u8 = 0x0d;
const OP_TOPDIFF: u8 = 0x0e;
const OP_MINMAX: u8 = 0x0f;

// v2 opcodes: one request kind (a batch of v1 sub-requests) and its
// one reply kind (the matching sub-replies, in order).
const OP_BATCH: u8 = 0x20;
const OP_BATCH_REPLY: u8 = 0xa0;

const OP_PONG: u8 = 0x81;
const OP_CREATED: u8 = 0x82;
const OP_DROPPED: u8 = 0x83;
const OP_PUSHED: u8 = 0x84;
const OP_REMOVED: u8 = 0x85;
const OP_REPLACED: u8 = 0x86;
const OP_RANKING: u8 = 0x87;
const OP_COST: u8 = 0x88;
const OP_BUSY: u8 = 0x89;
const OP_ERROR: u8 = 0x8a;
const OP_SHUTDOWN_ACK: u8 = 0x8b;
const OP_STATS_REPLY: u8 = 0x8c;
const OP_RANKING_COST: u8 = 0x8d;

// ---------------------------------------------------------------------
// Primitive encoding.

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_name(out: &mut Vec<u8>, s: &str) {
    // Encoding is infallible, so a name beyond MAX_NAME is truncated at
    // a char boundary: the length prefix always matches the bytes
    // written and the frame stays well-formed. Callers that want a
    // typed rejection instead check `Request::validate` first (the
    // in-crate `Client` does).
    let mut len = s.len().min(MAX_NAME);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    out.push(len as u8);
    out.extend_from_slice(&s.as_bytes()[..len]);
}

pub(crate) fn put_text(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

pub(crate) fn put_weights(out: &mut Vec<u8>, units: &[u64]) {
    put_u32(out, units.len() as u32);
    for &w in units {
        put_u64(out, w);
    }
}

pub(crate) fn put_labels(out: &mut Vec<u8>, labels: &[u32]) {
    put_u32(out, labels.len() as u32);
    for &l in labels {
        put_u32(out, l);
    }
}

pub(crate) fn put_rules(out: &mut Vec<u8>, rules: &[WireRule]) {
    put_u32(out, rules.len() as u32);
    for r in rules {
        put_u32(out, r.window);
        put_u32(out, r.class);
        put_u32(out, r.min);
        put_u32(out, r.max);
    }
}

pub(crate) fn put_ranking(out: &mut Vec<u8>, r: &BucketOrder) {
    put_u32(out, r.len() as u32);
    for &b in r.bucket_indices() {
        put_u32(out, b);
    }
}

/// A bounds-checked read cursor over one frame body.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let have = self.buf.len() - self.at;
        if have < n {
            return Err(ProtoError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn name(&mut self) -> Result<String, ProtoError> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| ProtoError::BadUtf8)
    }

    pub(crate) fn text(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| ProtoError::BadUtf8)
    }

    pub(crate) fn weights(&mut self) -> Result<Vec<u64>, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMENTS {
            return Err(ProtoError::WeightsTooLarge { len: n });
        }
        // Bound the reservation by what the body can actually hold.
        let have = (self.buf.len() - self.at) / 8;
        let mut units = Vec::with_capacity(n.min(have));
        for _ in 0..n {
            units.push(self.u64()?);
        }
        Ok(units)
    }

    pub(crate) fn labels(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMENTS {
            return Err(ProtoError::LabelsTooLarge { len: n });
        }
        // Bound the reservation by what the body can actually hold.
        let have = (self.buf.len() - self.at) / 4;
        let mut labels = Vec::with_capacity(n.min(have));
        for _ in 0..n {
            labels.push(self.u32()?);
        }
        Ok(labels)
    }

    pub(crate) fn rules(&mut self) -> Result<Vec<WireRule>, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_RULES {
            return Err(ProtoError::RulesTooLarge { len: n });
        }
        // Bound the reservation by what the body can actually hold:
        // each rule is 4 × 4 bytes.
        let have = (self.buf.len() - self.at) / 16;
        let mut rules = Vec::with_capacity(n.min(have));
        for _ in 0..n {
            rules.push(WireRule {
                window: self.u32()?,
                class: self.u32()?,
                min: self.u32()?,
                max: self.u32()?,
            });
        }
        Ok(rules)
    }

    pub(crate) fn ranking(&mut self) -> Result<BucketOrder, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_ELEMENTS {
            return Err(ProtoError::RankingTooLarge { len: n });
        }
        // Bound the reservation by what the body can actually hold.
        let have = (self.buf.len() - self.at) / 4;
        let mut keys = Vec::with_capacity(n.min(have));
        for _ in 0..n {
            keys.push(self.u32()?);
        }
        Ok(BucketOrder::from_keys(&keys))
    }

    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        let extra = self.buf.len() - self.at;
        if extra != 0 {
            return Err(ProtoError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn header(opcode: u8) -> Vec<u8> {
    vec![PROTO_VERSION, opcode]
}

fn check_header(c: &mut Cursor<'_>) -> Result<u8, ProtoError> {
    let version = c.u8()?;
    if version != PROTO_VERSION {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    c.u8()
}

impl Request {
    /// Checks the bounds that [`encode`](Request::encode) cannot carry
    /// exactly — a session name beyond [`MAX_NAME`] (which `encode`
    /// would truncate) or a ranking beyond [`MAX_ELEMENTS`] (which the
    /// server would reject at decode). The in-crate
    /// [`Client`](crate::Client) runs this before every send so an
    /// over-long name fails with a typed error instead of silently
    /// naming a different session.
    ///
    /// # Errors
    /// [`ProtoError::NameTooLong`] / [`ProtoError::RankingTooLarge`].
    pub fn validate(&self) -> Result<(), ProtoError> {
        let (name, ranking) = match self {
            Request::Ping | Request::Stats | Request::Shutdown => return Ok(()),
            Request::CreateSession { name, .. } | Request::DropSession { name } => (name, None),
            Request::PushVoter { session, ranking }
            | Request::ReplaceVoter { session, ranking, .. } => (session, Some(ranking)),
            Request::KemenyCost { session, candidate } => (session, Some(candidate)),
            Request::RemoveVoter { session, .. }
            | Request::MedianOrder { session }
            | Request::TopK { session, .. }
            | Request::PairMetric { session, .. } => (session, None),
            Request::WeightedDist { session, weights, .. }
            | Request::TopDiff { session, weights, .. } => {
                if weights.len() > MAX_ELEMENTS {
                    return Err(ProtoError::WeightsTooLarge { len: weights.len() });
                }
                (session, None)
            }
            Request::MinMaxAgg {
                session,
                labels,
                rules,
            } => {
                if labels.len() > MAX_ELEMENTS {
                    return Err(ProtoError::LabelsTooLarge { len: labels.len() });
                }
                if rules.len() > MAX_RULES {
                    return Err(ProtoError::RulesTooLarge { len: rules.len() });
                }
                (session, None)
            }
        };
        if name.len() > MAX_NAME {
            return Err(ProtoError::NameTooLong { len: name.len() });
        }
        if let Some(r) = ranking {
            if r.len() > MAX_ELEMENTS {
                return Err(ProtoError::RankingTooLarge { len: r.len() });
            }
        }
        Ok(())
    }

    /// Encodes the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => header(OP_PING),
            Request::CreateSession { name, n, policy } => {
                let mut out = header(OP_CREATE);
                put_name(&mut out, name);
                put_u32(&mut out, *n);
                out.push(policy.code());
                out
            }
            Request::DropSession { name } => {
                let mut out = header(OP_DROP);
                put_name(&mut out, name);
                out
            }
            Request::PushVoter { session, ranking } => {
                let mut out = header(OP_PUSH);
                put_name(&mut out, session);
                put_ranking(&mut out, ranking);
                out
            }
            Request::RemoveVoter { session, voter } => {
                let mut out = header(OP_REMOVE);
                put_name(&mut out, session);
                put_u64(&mut out, *voter);
                out
            }
            Request::ReplaceVoter {
                session,
                voter,
                ranking,
            } => {
                let mut out = header(OP_REPLACE);
                put_name(&mut out, session);
                put_u64(&mut out, *voter);
                put_ranking(&mut out, ranking);
                out
            }
            Request::MedianOrder { session } => {
                let mut out = header(OP_MEDIAN);
                put_name(&mut out, session);
                out
            }
            Request::TopK { session, k } => {
                let mut out = header(OP_TOPK);
                put_name(&mut out, session);
                put_u32(&mut out, *k);
                out
            }
            Request::KemenyCost { session, candidate } => {
                let mut out = header(OP_KEMENY);
                put_name(&mut out, session);
                put_ranking(&mut out, candidate);
                out
            }
            Request::PairMetric {
                session,
                metric,
                voter_a,
                voter_b,
            } => {
                let mut out = header(OP_PAIR);
                put_name(&mut out, session);
                out.push(metric.code());
                put_u64(&mut out, *voter_a);
                put_u64(&mut out, *voter_b);
                out
            }
            Request::WeightedDist {
                session,
                voter_a,
                voter_b,
                weights,
            } => {
                let mut out = header(OP_WEIGHTED);
                put_name(&mut out, session);
                put_u64(&mut out, *voter_a);
                put_u64(&mut out, *voter_b);
                put_weights(&mut out, weights);
                out
            }
            Request::TopDiff {
                session,
                voter_a,
                voter_b,
                weights,
            } => {
                let mut out = header(OP_TOPDIFF);
                put_name(&mut out, session);
                put_u64(&mut out, *voter_a);
                put_u64(&mut out, *voter_b);
                put_weights(&mut out, weights);
                out
            }
            Request::MinMaxAgg {
                session,
                labels,
                rules,
            } => {
                let mut out = header(OP_MINMAX);
                put_name(&mut out, session);
                put_labels(&mut out, labels);
                put_rules(&mut out, rules);
                out
            }
            Request::Stats => header(OP_STATS),
            Request::Shutdown => header(OP_SHUTDOWN),
        }
    }

    /// Decodes a frame body into a request. Never panics.
    ///
    /// # Errors
    /// A typed [`ProtoError`] on any malformed input.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(body);
        let opcode = check_header(&mut c)?;
        let req = match opcode {
            OP_PING => Request::Ping,
            OP_CREATE => {
                let name = c.name()?;
                let n = c.u32()?;
                let policy = WirePolicy::from_code(c.u8()?)?;
                Request::CreateSession { name, n, policy }
            }
            OP_DROP => Request::DropSession { name: c.name()? },
            OP_PUSH => {
                let session = c.name()?;
                let ranking = c.ranking()?;
                Request::PushVoter { session, ranking }
            }
            OP_REMOVE => {
                let session = c.name()?;
                let voter = c.u64()?;
                Request::RemoveVoter { session, voter }
            }
            OP_REPLACE => {
                let session = c.name()?;
                let voter = c.u64()?;
                let ranking = c.ranking()?;
                Request::ReplaceVoter {
                    session,
                    voter,
                    ranking,
                }
            }
            OP_MEDIAN => Request::MedianOrder { session: c.name()? },
            OP_TOPK => {
                let session = c.name()?;
                let k = c.u32()?;
                Request::TopK { session, k }
            }
            OP_KEMENY => {
                let session = c.name()?;
                let candidate = c.ranking()?;
                Request::KemenyCost { session, candidate }
            }
            OP_PAIR => {
                let session = c.name()?;
                let metric = MetricKind::from_code(c.u8()?)?;
                let voter_a = c.u64()?;
                let voter_b = c.u64()?;
                Request::PairMetric {
                    session,
                    metric,
                    voter_a,
                    voter_b,
                }
            }
            OP_WEIGHTED => {
                let session = c.name()?;
                let voter_a = c.u64()?;
                let voter_b = c.u64()?;
                let weights = c.weights()?;
                Request::WeightedDist {
                    session,
                    voter_a,
                    voter_b,
                    weights,
                }
            }
            OP_TOPDIFF => {
                let session = c.name()?;
                let voter_a = c.u64()?;
                let voter_b = c.u64()?;
                let weights = c.weights()?;
                Request::TopDiff {
                    session,
                    voter_a,
                    voter_b,
                    weights,
                }
            }
            OP_MINMAX => {
                let session = c.name()?;
                let labels = c.labels()?;
                let rules = c.rules()?;
                Request::MinMaxAgg {
                    session,
                    labels,
                    rules,
                }
            }
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError::UnknownOpcode { opcode: other }),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => header(OP_PONG),
            Response::SessionCreated => header(OP_CREATED),
            Response::SessionDropped => header(OP_DROPPED),
            Response::VoterPushed { voter } => {
                let mut out = header(OP_PUSHED);
                put_u64(&mut out, *voter);
                out
            }
            Response::VoterRemoved => header(OP_REMOVED),
            Response::VoterReplaced => header(OP_REPLACED),
            Response::Ranking { order } => {
                let mut out = header(OP_RANKING);
                put_ranking(&mut out, order);
                out
            }
            Response::CostX2 { value } => {
                let mut out = header(OP_COST);
                put_u64(&mut out, *value);
                out
            }
            Response::RankingCost { order, cost_x2 } => {
                let mut out = header(OP_RANKING_COST);
                put_ranking(&mut out, order);
                put_u64(&mut out, *cost_x2);
                out
            }
            Response::Busy => header(OP_BUSY),
            Response::Error { code, message } => {
                let mut out = header(OP_ERROR);
                out.push(code.code());
                put_text(&mut out, message);
                out
            }
            Response::Stats { shards } => {
                // Encoding is infallible, so a row vector beyond
                // MAX_SHARDS is truncated to the bound (a live service
                // can never produce one — ServiceConfig validates the
                // shard count at construction).
                let shards = &shards[..shards.len().min(MAX_SHARDS)];
                let mut out = header(OP_STATS_REPLY);
                put_u16(&mut out, shards.len() as u16);
                for s in shards {
                    put_u64(&mut out, s.sessions);
                    put_u64(&mut out, s.evicted);
                    put_u64(&mut out, s.wal_records);
                    put_u64(&mut out, s.wal_bytes);
                    put_u64(&mut out, s.checkpoints);
                    put_u64(&mut out, s.evictions);
                    put_u64(&mut out, s.recoveries);
                }
                out
            }
            Response::ShutdownAck => header(OP_SHUTDOWN_ACK),
        }
    }

    /// Decodes a frame body into a response. Never panics.
    ///
    /// # Errors
    /// A typed [`ProtoError`] on any malformed input.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(body);
        let opcode = check_header(&mut c)?;
        let resp = match opcode {
            OP_PONG => Response::Pong,
            OP_CREATED => Response::SessionCreated,
            OP_DROPPED => Response::SessionDropped,
            OP_PUSHED => Response::VoterPushed { voter: c.u64()? },
            OP_REMOVED => Response::VoterRemoved,
            OP_REPLACED => Response::VoterReplaced,
            OP_RANKING => Response::Ranking { order: c.ranking()? },
            OP_COST => Response::CostX2 { value: c.u64()? },
            OP_RANKING_COST => {
                let order = c.ranking()?;
                let cost_x2 = c.u64()?;
                Response::RankingCost { order, cost_x2 }
            }
            OP_BUSY => Response::Busy,
            OP_ERROR => {
                let code = ErrorCode::from_code(c.u8()?)?;
                let message = c.text()?;
                Response::Error { code, message }
            }
            OP_STATS_REPLY => {
                let count = c.u16()? as usize;
                if count > MAX_SHARDS {
                    return Err(ProtoError::BadValue { what: "shard count" });
                }
                // Bound the reservation by what the body can hold: each
                // row is 7 × 8 bytes.
                let have = (body.len() - 2) / 56;
                let mut shards = Vec::with_capacity(count.min(have));
                for _ in 0..count {
                    shards.push(ShardStats {
                        sessions: c.u64()?,
                        evicted: c.u64()?,
                        wal_records: c.u64()?,
                        wal_bytes: c.u64()?,
                        checkpoints: c.u64()?,
                        evictions: c.u64()?,
                        recoveries: c.u64()?,
                    });
                }
                Response::Stats { shards }
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            other => return Err(ProtoError::UnknownOpcode { opcode: other }),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Protocol v2: batch frames.

/// Encodes up to [`MAX_BATCH`] requests into one v2 batch-frame body:
/// `[2 | 0x20 | u16 count | count × (u32 len | v1 request body)]`.
///
/// Encoding is infallible, so a slice beyond [`MAX_BATCH`] is truncated
/// to the bound (the frame stays well-formed); callers that want a
/// typed rejection instead check [`validate_batch`] first (the in-crate
/// [`Client`](crate::Client) does).
pub fn encode_batch(reqs: &[Request]) -> Vec<u8> {
    let reqs = &reqs[..reqs.len().min(MAX_BATCH)];
    let mut out = vec![PROTO_VERSION_2, OP_BATCH];
    put_u16(&mut out, reqs.len() as u16);
    for req in reqs {
        let sub = req.encode();
        put_u32(&mut out, sub.len() as u32);
        out.extend_from_slice(&sub);
    }
    out
}

/// The bounds [`encode_batch`] cannot carry exactly: a non-empty batch
/// within [`MAX_BATCH`], every sub-request passing
/// [`Request::validate`].
///
/// # Errors
/// [`ProtoError::EmptyBatch`] / [`ProtoError::BatchTooLarge`] /
/// whatever a sub-request's `validate` reports.
pub fn validate_batch(reqs: &[Request]) -> Result<(), ProtoError> {
    if reqs.is_empty() {
        return Err(ProtoError::EmptyBatch);
    }
    if reqs.len() > MAX_BATCH {
        return Err(ProtoError::BatchTooLarge { len: reqs.len() });
    }
    reqs.iter().try_for_each(Request::validate)
}

/// Decodes a v2 batch-frame body into its sub-requests. Total, like
/// every decoder here: the count is bounded **before** any
/// per-request allocation, each sub-request must be a complete v1
/// request body (a nested v2 frame is a typed
/// [`ProtoError::UnsupportedVersion`]), and the outer body must be
/// exact to the byte.
///
/// # Errors
/// A typed [`ProtoError`] on any malformed input.
pub fn decode_batch(body: &[u8]) -> Result<Vec<Request>, ProtoError> {
    let mut c = Cursor::new(body);
    let version = c.u8()?;
    if version != PROTO_VERSION_2 {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    let opcode = c.u8()?;
    if opcode != OP_BATCH {
        return Err(ProtoError::UnknownOpcode { opcode });
    }
    let count = c.u16()? as usize;
    if count == 0 {
        return Err(ProtoError::EmptyBatch);
    }
    if count > MAX_BATCH {
        return Err(ProtoError::BatchTooLarge { len: count });
    }
    // Bound the reservation by what the body can actually hold: each
    // sub-request costs at least 4 length bytes + a 2-byte header.
    let have = (body.len() - 4) / 6;
    let mut reqs = Vec::with_capacity(count.min(have));
    for _ in 0..count {
        let len = c.u32()? as usize;
        let sub = c.take(len)?;
        reqs.push(Request::decode(sub)?);
    }
    c.finish()?;
    Ok(reqs)
}

/// Encodes already-encoded v1 response bodies into one v2 batch-reply
/// body: `[2 | 0xa0 | u16 count | count × (u32 len | v1 response
/// body)]`. The server's workers call this with the per-op replies
/// they just produced, in request order.
pub fn encode_batch_reply_bodies(bodies: &[Vec<u8>]) -> Vec<u8> {
    let bodies = &bodies[..bodies.len().min(MAX_BATCH)];
    let total: usize = 4 + bodies.iter().map(|b| 4 + b.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.push(PROTO_VERSION_2);
    out.push(OP_BATCH_REPLY);
    put_u16(&mut out, bodies.len() as u16);
    for body in bodies {
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(body);
    }
    out
}

/// [`encode_batch_reply_bodies`] over typed responses.
pub fn encode_batch_reply(resps: &[Response]) -> Vec<u8> {
    let bodies: Vec<Vec<u8>> = resps.iter().map(Response::encode).collect();
    encode_batch_reply_bodies(&bodies)
}

/// Decodes a v2 batch-reply body into the **raw sub-reply bodies**, in
/// order. Raw so the differential suites can compare the exact bytes;
/// decode each with [`Response::decode`] for the typed view.
///
/// # Errors
/// A typed [`ProtoError`] on any malformed input.
pub fn decode_batch_reply(body: &[u8]) -> Result<Vec<Vec<u8>>, ProtoError> {
    let mut c = Cursor::new(body);
    let version = c.u8()?;
    if version != PROTO_VERSION_2 {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    let opcode = c.u8()?;
    if opcode != OP_BATCH_REPLY {
        return Err(ProtoError::UnknownOpcode { opcode });
    }
    let count = c.u16()? as usize;
    if count == 0 {
        return Err(ProtoError::EmptyBatch);
    }
    if count > MAX_BATCH {
        return Err(ProtoError::BatchTooLarge { len: count });
    }
    let have = (body.len() - 4) / 6;
    let mut bodies = Vec::with_capacity(count.min(have));
    for _ in 0..count {
        let len = c.u32()? as usize;
        bodies.push(c.take(len)?.to_vec());
    }
    c.finish()?;
    Ok(bodies)
}

/// One decoded request frame of either protocol version — what the
/// server's connection loop dispatches on after reading a frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// A v1 frame: one request, answered by one response frame.
    Single(Request),
    /// A v2 batch frame: N sub-requests, answered by one batch-reply
    /// frame carrying N sub-replies in the same order.
    Batch(Vec<Request>),
}

impl WireRequest {
    /// Version-dispatched decode of one frame body. Never panics.
    ///
    /// # Errors
    /// A typed [`ProtoError`] on any malformed input of either version,
    /// or [`ProtoError::UnsupportedVersion`] for versions this build
    /// does not speak.
    pub fn decode(body: &[u8]) -> Result<WireRequest, ProtoError> {
        match body.first() {
            None => Err(ProtoError::Truncated { needed: 2, have: 0 }),
            Some(&PROTO_VERSION) => Request::decode(body).map(WireRequest::Single),
            Some(&PROTO_VERSION_2) => decode_batch(body).map(WireRequest::Batch),
            Some(&found) => Err(ProtoError::UnsupportedVersion { found }),
        }
    }

    /// Number of operations this frame carries.
    pub fn ops(&self) -> usize {
        match self {
            WireRequest::Single(_) => 1,
            WireRequest::Batch(reqs) => reqs.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Framed transport.

/// Why reading a frame off a stream stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// A transport failure (includes read timeouts).
    Io(io::Error),
    /// The frame header violated the protocol (declared length beyond
    /// the bound).
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A resumable frame reader: bytes already consumed from the current
/// frame survive a transient read failure (`WouldBlock` / `TimedOut`
/// from a socket read timeout), so a frame that spans several poll
/// intervals is reassembled instead of silently desyncing the stream.
///
/// Call [`read_frame`](FrameReader::read_frame) repeatedly with the
/// same reader; each successful call yields one body and resets the
/// state for the next frame. [`mid_frame`](FrameReader::mid_frame)
/// tells a caller whether a transient error interrupted a frame in
/// progress (not idle) or landed between frames (idle).
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    body: Option<Vec<u8>>,
    body_got: usize,
}

impl FrameReader {
    /// A reader positioned between frames.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// True when part of the current frame (header or body) has been
    /// consumed but the frame is not yet complete.
    pub fn mid_frame(&self) -> bool {
        self.header_got > 0 || self.body.is_some()
    }

    /// Reads (or resumes reading) one length-prefixed frame body. A
    /// declared length above `max_frame` is rejected **before**
    /// allocating; EOF exactly between frames is the clean
    /// [`FrameError::Closed`], EOF mid-frame is an
    /// [`io::ErrorKind::UnexpectedEof`] transport error. On a
    /// transient [`FrameError::Io`] (e.g. a read timeout) the partial
    /// frame stays buffered and the next call picks up where this one
    /// stopped.
    ///
    /// # Errors
    /// [`FrameError`] as described above.
    pub fn read_frame(&mut self, r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
        while self.body.is_none() {
            match r.read(&mut self.header[self.header_got..]) {
                Ok(0) => {
                    if self.header_got == 0 {
                        return Err(FrameError::Closed);
                    }
                    return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                Ok(k) => {
                    self.header_got += k;
                    if self.header_got == 4 {
                        let len = u32::from_be_bytes(self.header) as usize;
                        if len > max_frame {
                            return Err(FrameError::Proto(ProtoError::FrameTooLarge {
                                len,
                                max: max_frame,
                            }));
                        }
                        self.body = Some(vec![0u8; len]);
                        self.body_got = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        loop {
            let body = self.body.as_mut().expect("body allocated above");
            if self.body_got == body.len() {
                break;
            }
            match r.read(&mut body[self.body_got..]) {
                Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into())),
                Ok(k) => self.body_got += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        self.header_got = 0;
        self.body_got = 0;
        Ok(self.body.take().expect("body allocated above"))
    }
}

/// One-shot [`FrameReader::read_frame`] for blocking streams where a
/// transient failure mid-frame is fatal anyway (the client, tests).
/// Transports that poll with a read timeout must hold a [`FrameReader`]
/// across calls instead, or a timeout mid-frame loses the bytes already
/// consumed.
///
/// # Errors
/// [`FrameError`] as on [`FrameReader::read_frame`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    FrameReader::new().read_frame(r, max_frame)
}

/// Writes one length-prefixed frame.
///
/// # Errors
/// The underlying [`io::Error`]; [`io::ErrorKind::InvalidInput`] if the
/// body exceeds `max_frame` (the writer refuses to emit a frame its
/// peer must reject).
pub fn write_frame(w: &mut impl Write, body: &[u8], max_frame: usize) -> io::Result<()> {
    if body.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds the {max_frame}-byte bound", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        let r = BucketOrder::from_keys(&[1, 2, 2, 3]);
        vec![
            Request::Ping,
            Request::CreateSession {
                name: "s".into(),
                n: 4,
                policy: WirePolicy::Lower,
            },
            Request::CreateSession {
                name: "t".into(),
                n: 9,
                policy: WirePolicy::Upper,
            },
            Request::DropSession { name: "s".into() },
            Request::PushVoter {
                session: "s".into(),
                ranking: r.clone(),
            },
            Request::RemoveVoter {
                session: "s".into(),
                voter: 7,
            },
            Request::ReplaceVoter {
                session: "s".into(),
                voter: 7,
                ranking: r.clone(),
            },
            Request::MedianOrder { session: "s".into() },
            Request::TopK {
                session: "s".into(),
                k: 2,
            },
            Request::KemenyCost {
                session: "s".into(),
                candidate: r.clone(),
            },
            Request::PairMetric {
                session: "s".into(),
                metric: MetricKind::FhausX2,
                voter_a: 0,
                voter_b: 1,
            },
            Request::WeightedDist {
                session: "s".into(),
                voter_a: 0,
                voter_b: 1,
                weights: vec![4, 3, 2, 1],
            },
            Request::TopDiff {
                session: "s".into(),
                voter_a: 2,
                voter_b: 5,
                weights: vec![1, 1, 0, 0],
            },
            Request::MinMaxAgg {
                session: "s".into(),
                labels: vec![],
                rules: vec![],
            },
            Request::MinMaxAgg {
                session: "s".into(),
                labels: vec![0, 1, 1, 0],
                rules: vec![
                    WireRule {
                        window: 2,
                        class: 0,
                        min: 1,
                        max: 2,
                    },
                    WireRule {
                        window: 4,
                        class: 1,
                        min: 0,
                        max: 2,
                    },
                ],
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::SessionCreated,
            Response::SessionDropped,
            Response::VoterPushed { voter: u64::MAX },
            Response::VoterRemoved,
            Response::VoterReplaced,
            Response::Ranking {
                order: BucketOrder::from_keys(&[3, 1, 1]),
            },
            Response::CostX2 { value: 12345 },
            Response::RankingCost {
                order: BucketOrder::from_keys(&[2, 1, 3]),
                cost_x2: 42,
            },
            Response::Busy,
            Response::Error {
                code: ErrorCode::UnknownVoter,
                message: "voter#9 is not live".into(),
            },
            Response::Stats { shards: vec![] },
            Response::Stats {
                shards: vec![
                    ShardStats {
                        sessions: 3,
                        evicted: 1,
                        wal_records: 40,
                        wal_bytes: 2048,
                        checkpoints: 2,
                        evictions: 1,
                        recoveries: 4,
                    },
                    ShardStats::default(),
                ],
            },
            Response::ShutdownAck,
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        for req in sample_requests() {
            let body = req.encode();
            for cut in 0..body.len() {
                assert!(
                    Request::decode(&body[..cut]).is_err(),
                    "{req:?} prefix {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        for req in sample_requests() {
            let mut body = req.encode();
            body.push(0);
            assert_eq!(
                Request::decode(&body),
                Err(ProtoError::TrailingBytes { extra: 1 }),
                "{req:?}"
            );
        }
    }

    #[test]
    fn bad_version_and_opcode() {
        assert_eq!(
            Request::decode(&[9, OP_PING]),
            Err(ProtoError::UnsupportedVersion { found: 9 })
        );
        assert_eq!(
            Request::decode(&[PROTO_VERSION, 0x7f]),
            Err(ProtoError::UnknownOpcode { opcode: 0x7f })
        );
        assert_eq!(
            Response::decode(&[PROTO_VERSION, 0x02]),
            Err(ProtoError::UnknownOpcode { opcode: 0x02 })
        );
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn bad_values_are_typed() {
        // Policy code 7.
        let mut body = header(OP_CREATE);
        put_name(&mut body, "s");
        put_u32(&mut body, 3);
        body.push(7);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::BadValue { what: "median policy" })
        );
        // Metric code 9.
        let mut body = header(OP_PAIR);
        put_name(&mut body, "s");
        body.push(9);
        put_u64(&mut body, 0);
        put_u64(&mut body, 1);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::BadValue { what: "metric kind" })
        );
        // Bad UTF-8 name.
        let body = vec![PROTO_VERSION, OP_DROP, 2, 0xff, 0xfe];
        assert_eq!(Request::decode(&body), Err(ProtoError::BadUtf8));
        // Oversized ranking claim cannot force an allocation.
        let mut body = header(OP_PUSH);
        put_name(&mut body, "s");
        put_u32(&mut body, u32::MAX);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::RankingTooLarge { len: u32::MAX as usize })
        );
        // Same for an oversized weight-count claim.
        for op in [OP_WEIGHTED, OP_TOPDIFF] {
            let mut body = header(op);
            put_name(&mut body, "s");
            put_u64(&mut body, 0);
            put_u64(&mut body, 1);
            put_u32(&mut body, u32::MAX);
            assert_eq!(
                Request::decode(&body),
                Err(ProtoError::WeightsTooLarge { len: u32::MAX as usize })
            );
        }
        // Same for oversized label- and rule-count claims.
        let mut body = header(OP_MINMAX);
        put_name(&mut body, "s");
        put_u32(&mut body, u32::MAX);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::LabelsTooLarge { len: u32::MAX as usize })
        );
        let mut body = header(OP_MINMAX);
        put_name(&mut body, "s");
        put_u32(&mut body, 0);
        put_u32(&mut body, u32::MAX);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::RulesTooLarge { len: u32::MAX as usize })
        );
        // validate() mirrors the decoder's weight-count bound.
        let req = Request::TopDiff {
            session: "s".into(),
            voter_a: 0,
            voter_b: 1,
            weights: vec![0; MAX_ELEMENTS + 1],
        };
        assert_eq!(
            req.validate(),
            Err(ProtoError::WeightsTooLarge { len: MAX_ELEMENTS + 1 })
        );
        // ... and the label-/rule-count bounds.
        let req = Request::MinMaxAgg {
            session: "s".into(),
            labels: vec![0; MAX_ELEMENTS + 1],
            rules: vec![],
        };
        assert_eq!(
            req.validate(),
            Err(ProtoError::LabelsTooLarge { len: MAX_ELEMENTS + 1 })
        );
        let rule = WireRule {
            window: 1,
            class: 0,
            min: 0,
            max: 1,
        };
        let req = Request::MinMaxAgg {
            session: "s".into(),
            labels: vec![],
            rules: vec![rule; MAX_RULES + 1],
        };
        assert_eq!(
            req.validate(),
            Err(ProtoError::RulesTooLarge { len: MAX_RULES + 1 })
        );
    }

    #[test]
    fn ranking_wire_form_is_canonical() {
        // Non-contiguous keys decode to the same order as their
        // canonical bucket indices, so encode∘decode is idempotent.
        let mut body = header(OP_PUSH);
        put_name(&mut body, "s");
        put_u32(&mut body, 3);
        for k in [7u32, 1000, 7] {
            put_u32(&mut body, k);
        }
        let Request::PushVoter { ranking, .. } = Request::decode(&body).unwrap() else {
            panic!("wrong request")
        };
        assert_eq!(ranking, BucketOrder::from_keys(&[0, 1, 0]));
        let re = Request::PushVoter {
            session: "s".into(),
            ranking,
        }
        .encode();
        assert_eq!(Request::decode(&re).unwrap(), Request::decode(&re).unwrap());
    }

    /// A `Read` that replays a script of chunks and transient errors,
    /// standing in for a socket whose read timeout fires mid-frame.
    struct ScriptedRead {
        script: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedRead {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop_front() {
                Some(Ok(chunk)) => {
                    assert!(chunk.len() <= buf.len(), "scripted chunk too large");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                Some(Err(kind)) => Err(kind.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts() {
        // One frame delivered as: 2 header bytes, timeout, 2 header
        // bytes, timeout, half the body, timeout, the rest. Every
        // consumed byte must survive each timeout.
        let mut frame = Vec::new();
        write_frame(&mut frame, b"resumable", 64).unwrap();
        let mut r = ScriptedRead {
            script: [
                Ok(frame[..2].to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Ok(frame[2..4].to_vec()),
                Err(io::ErrorKind::TimedOut),
                Ok(frame[4..8].to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Ok(frame[8..].to_vec()),
            ]
            .into_iter()
            .collect(),
        };
        let mut reader = FrameReader::new();
        assert!(!reader.mid_frame());
        let mut timeouts = 0;
        let body = loop {
            match reader.read_frame(&mut r, 64) {
                Ok(body) => break body,
                Err(FrameError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    assert!(reader.mid_frame());
                    timeouts += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(body, b"resumable");
        assert_eq!(timeouts, 3);
        assert!(!reader.mid_frame(), "state resets after a full frame");
    }

    #[test]
    fn long_names_validate_and_encode_well_formed() {
        // 'é' is 2 bytes; 130 of them exceed MAX_NAME by 5 bytes and
        // put a char boundary astride the 255-byte cut.
        let long: String = "é".repeat(130);
        assert_eq!(long.len(), 260);
        let req = Request::DropSession { name: long.clone() };
        assert_eq!(req.validate(), Err(ProtoError::NameTooLong { len: 260 }));
        // Unvalidated encode still yields a well-formed frame: the
        // length prefix matches the bytes written, truncated at a char
        // boundary, so the stream cannot desync.
        let decoded = Request::decode(&req.encode()).unwrap();
        let Request::DropSession { name } = decoded else {
            panic!("wrong request")
        };
        assert_eq!(name.len(), 254);
        assert!(long.starts_with(&name));
        // In-bounds names pass and round-trip untouched.
        let ok = Request::DropSession { name: "x".repeat(MAX_NAME) };
        assert_eq!(ok.validate(), Ok(()));
        assert_eq!(Request::decode(&ok.encode()).unwrap(), ok);
    }

    #[test]
    fn batch_roundtrip_and_dispatch() {
        let reqs = sample_requests();
        let body = encode_batch(&reqs);
        assert_eq!(decode_batch(&body).unwrap(), reqs);
        match WireRequest::decode(&body).unwrap() {
            WireRequest::Batch(got) => assert_eq!(got, reqs),
            other => panic!("batch dispatched as {other:?}"),
        }
        assert_eq!(WireRequest::decode(&body).unwrap().ops(), reqs.len());
        // v1 bodies dispatch to Single through the same entry point.
        for req in &reqs {
            assert_eq!(
                WireRequest::decode(&req.encode()).unwrap(),
                WireRequest::Single(req.clone())
            );
        }
        // Unknown versions are typed.
        assert_eq!(
            WireRequest::decode(&[7, OP_PING]),
            Err(ProtoError::UnsupportedVersion { found: 7 })
        );
        assert_eq!(
            WireRequest::decode(&[]),
            Err(ProtoError::Truncated { needed: 2, have: 0 })
        );
    }

    #[test]
    fn batch_reply_roundtrip_is_byte_exact() {
        let resps = sample_responses();
        let body = encode_batch_reply(&resps);
        let bodies = decode_batch_reply(&body).unwrap();
        assert_eq!(bodies.len(), resps.len());
        for (raw, resp) in bodies.iter().zip(&resps) {
            assert_eq!(raw, &resp.encode());
            assert_eq!(&Response::decode(raw).unwrap(), resp);
        }
    }

    #[test]
    fn batch_bounds_are_typed_and_checked_before_allocation() {
        // Empty batches are rejected.
        assert_eq!(
            decode_batch(&[PROTO_VERSION_2, OP_BATCH, 0, 0]),
            Err(ProtoError::EmptyBatch)
        );
        assert_eq!(validate_batch(&[]), Err(ProtoError::EmptyBatch));
        // A count beyond MAX_BATCH is rejected from the 4-byte prefix
        // alone — no sub-request is parsed or allocated.
        let mut huge = vec![PROTO_VERSION_2, OP_BATCH];
        put_u16(&mut huge, u16::MAX);
        assert_eq!(
            decode_batch(&huge),
            Err(ProtoError::BatchTooLarge { len: u16::MAX as usize })
        );
        let many = vec![Request::Ping; MAX_BATCH + 1];
        assert_eq!(
            validate_batch(&many),
            Err(ProtoError::BatchTooLarge { len: MAX_BATCH + 1 })
        );
        // Encode stays well-formed even unvalidated: truncated to the
        // bound, the count prefix matching the bodies written.
        let wire = encode_batch(&many);
        assert_eq!(decode_batch(&wire).unwrap().len(), MAX_BATCH);
        // A sub-length pointing past the body is a typed truncation.
        let mut torn = vec![PROTO_VERSION_2, OP_BATCH];
        put_u16(&mut torn, 1);
        put_u32(&mut torn, 99);
        torn.extend_from_slice(&Request::Ping.encode());
        assert!(matches!(
            decode_batch(&torn),
            Err(ProtoError::Truncated { .. })
        ));
        // Every strict prefix of a valid batch is a typed error.
        let body = encode_batch(&sample_requests());
        for cut in 0..body.len() {
            assert!(decode_batch(&body[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Trailing bytes are rejected.
        let mut extra = body.clone();
        extra.push(0);
        assert_eq!(
            decode_batch(&extra),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn nested_batches_are_rejected() {
        // A batch whose sub-body is itself a v2 batch: the sub-decoder
        // speaks v1 only, so the version byte is a typed error — there
        // is no recursive descent for an attacker to wind up.
        let inner = encode_batch(&[Request::Ping]);
        let mut outer = vec![PROTO_VERSION_2, OP_BATCH];
        put_u16(&mut outer, 1);
        put_u32(&mut outer, inner.len() as u32);
        outer.extend_from_slice(&inner);
        assert_eq!(
            decode_batch(&outer),
            Err(ProtoError::UnsupportedVersion { found: PROTO_VERSION_2 })
        );
    }

    #[test]
    fn frame_roundtrip_and_bounds() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 64).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur, 64).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut cur, 64), Err(FrameError::Closed)));

        // Oversized declared length: typed, no allocation attempted.
        let huge = (u32::MAX).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..], 1024),
            Err(FrameError::Proto(ProtoError::FrameTooLarge { .. }))
        ));
        // Torn header and torn body are transport errors, not panics.
        assert!(matches!(
            read_frame(&mut &buf[..2], 64),
            Err(FrameError::Io(_))
        ));
        assert!(matches!(
            read_frame(&mut &buf[..6], 64),
            Err(FrameError::Io(_))
        ));
        // The writer refuses bodies beyond the bound.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 100], 64).is_err());
    }
}
